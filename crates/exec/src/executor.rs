//! The plan interpreter.

use std::sync::Arc;

use hylite_common::{Chunk, Result};
use hylite_planner::LogicalPlan;
use rayon::prelude::*;

use crate::aggregate;
use crate::context::ExecContext;
use crate::join;
use crate::scan;
use crate::sort;

/// Executes bound, optimized logical plans against an [`ExecContext`].
pub struct Executor {
    /// The execution context (catalog handle, working tables, stats).
    pub ctx: ExecContext,
}

impl Executor {
    /// Executor over a context.
    pub fn new(ctx: ExecContext) -> Executor {
        Executor { ctx }
    }

    /// Execute a plan to a materialized chunk stream.
    ///
    /// Every (sub)plan execution is a governor check point: a cancelled,
    /// timed-out, or over-budget statement aborts before the node runs.
    /// When the statement has a memory budget, each node's materialized
    /// output is charged against it and released once the parent operator
    /// has produced its own output (the children's intermediates are dead
    /// by then) — see [`ExecContext::reserve_output`].
    ///
    /// When profiling is enabled on the context, every (sub)plan
    /// execution is additionally bracketed by a span recording output
    /// rows/chunks, wall time and an estimate of the materialized output
    /// size. Repeated executions of the same node (loop bodies) fold into
    /// one span — see [`hylite_common::telemetry::ProfileBuilder`].
    pub fn execute(&mut self, plan: &LogicalPlan) -> Result<Vec<Chunk>> {
        self.ctx.check_governor()?;
        let profiling = self.ctx.profiling();
        if profiling {
            self.ctx.profile_enter(plan.node_id(), plan.op_name());
        }
        let budgeted = self.ctx.governor().budget().limit() != u64::MAX;
        if budgeted {
            self.ctx.push_mem_frame();
        }
        let mut result = self.execute_node(plan);
        if budgeted {
            self.ctx.pop_mem_frame();
            if let Ok(chunks) = &result {
                let bytes = crate::util::heap_bytes(chunks);
                if let Err(e) = self.ctx.reserve_output(bytes) {
                    result = Err(e);
                }
            }
        }
        if profiling {
            match &result {
                Ok(chunks) => {
                    self.ctx.profile_mem(crate::util::heap_bytes(chunks));
                    self.ctx
                        .profile_exit(crate::util::total_rows(chunks) as u64, chunks.len() as u64);
                }
                Err(_) => self.ctx.profile_exit(0, 0),
            }
        }
        result
    }

    /// Single-operator dispatch (no profiling bookkeeping).
    fn execute_node(&mut self, plan: &LogicalPlan) -> Result<Vec<Chunk>> {
        match plan {
            LogicalPlan::TableScan {
                table,
                projection,
                filter,
                ..
            } => {
                let snapshot = self.ctx.snapshot(table)?;
                let governor = Arc::clone(self.ctx.governor());
                let (chunks, pruning) = scan::scan_pruned(
                    &snapshot,
                    projection.as_deref(),
                    filter.as_ref(),
                    &governor,
                )?;
                if self.ctx.profiling() {
                    self.ctx
                        .profile_note("blocks_scanned", pruning.blocks_scanned);
                    self.ctx
                        .profile_note("blocks_pruned", pruning.blocks_pruned);
                }
                {
                    let m = self.ctx.metrics();
                    m.counter("scan.blocks_scanned")
                        .add(pruning.blocks_scanned as u64);
                    m.counter("scan.blocks_pruned")
                        .add(pruning.blocks_pruned as u64);
                }
                Ok(chunks)
            }
            LogicalPlan::Values { schema, rows } => {
                let types = schema.types();
                Ok(vec![Chunk::from_rows(&types, rows)?])
            }
            LogicalPlan::SystemScan { view, schema } => {
                let rows = self.ctx.scan_system_view(*view);
                let types = schema.types();
                Ok(vec![Chunk::from_rows(&types, &rows)?])
            }
            LogicalPlan::Empty { .. } => Ok(vec![Chunk::zero_column(1)]),
            LogicalPlan::WorkingTable { name, .. } => {
                let rel = self.ctx.read_working(name)?;
                Ok(rel.as_ref().clone())
            }
            LogicalPlan::Filter { input, predicate } => {
                let chunks = self.execute(input)?;
                let out: Vec<Result<Chunk>> = chunks
                    .par_iter()
                    .map(|c| crate::util::apply_predicate(c, predicate))
                    .collect();
                out.into_iter()
                    .filter(|r| !matches!(r, Ok(c) if c.is_empty()))
                    .collect()
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let chunks = self.execute(input)?;
                let out: Vec<Result<Chunk>> = chunks
                    .par_iter()
                    .map(|c| {
                        let cols = exprs
                            .iter()
                            .map(|e| match e {
                                // Plain column references share the input
                                // column instead of copying it.
                                hylite_expr::ScalarExpr::Column { index, .. } => {
                                    Ok(c.column_arc(*index))
                                }
                                other => other.eval(c).map(Arc::new),
                            })
                            .collect::<Result<Vec<_>>>()?;
                        // Zero-column projection keeps the row count.
                        if cols.is_empty() {
                            Ok(Chunk::zero_column(c.len()))
                        } else {
                            Ok(Chunk::from_arc_columns(cols))
                        }
                    })
                    .collect();
                out.into_iter().collect()
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                condition,
                ..
            } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                join::join(
                    &l,
                    &r,
                    *kind,
                    condition.as_ref(),
                    &left.schema().types(),
                    &right.schema().types(),
                )
            }
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggregates,
                schema,
            } => {
                let chunks = self.execute(input)?;
                let governor = Arc::clone(self.ctx.governor());
                aggregate::aggregate(&chunks, group_exprs, aggregates, &schema.types(), &governor)
            }
            LogicalPlan::Sort { input, keys } => {
                let chunks = self.execute(input)?;
                sort::sort(&chunks, keys, &input.schema().types())
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let chunks = self.execute(input)?;
                Ok(sort::limit(chunks, *limit, *offset))
            }
            LogicalPlan::Union {
                inputs,
                all,
                schema,
            } => {
                let mut chunks = Vec::new();
                for i in inputs {
                    chunks.extend(self.execute(i)?);
                }
                if *all {
                    Ok(chunks)
                } else {
                    let governor = Arc::clone(self.ctx.governor());
                    aggregate::distinct(&chunks, &schema.types(), &governor)
                }
            }
            LogicalPlan::Distinct { input } => {
                let chunks = self.execute(input)?;
                let governor = Arc::clone(self.ctx.governor());
                aggregate::distinct(&chunks, &input.schema().types(), &governor)
            }
            LogicalPlan::RecursiveCte {
                name,
                init,
                step,
                all,
                ..
            } => self.exec_recursive_cte(name, init, step, *all),
            LogicalPlan::Iterate {
                init,
                step,
                stop,
                max_iterations,
                ..
            } => self.exec_iterate(init, step, stop, *max_iterations),
            LogicalPlan::KMeans {
                data,
                centers,
                lambda,
                max_iterations,
                ..
            } => self.exec_kmeans(data, centers, lambda.as_ref(), *max_iterations),
            LogicalPlan::KMeansAssign {
                data,
                centers,
                lambda,
                ..
            } => self.exec_kmeans_assign(data, centers, lambda.as_ref()),
            LogicalPlan::PageRank {
                edges,
                weighted,
                damping,
                epsilon,
                max_iterations,
                ..
            } => self.exec_pagerank(edges, *weighted, *damping, *epsilon, *max_iterations),
            LogicalPlan::NaiveBayesTrain {
                data,
                feature_names,
                schema,
            } => self.exec_nb_train(data, feature_names, &schema.types()),
            LogicalPlan::NaiveBayesPredict {
                model,
                data,
                feature_names,
                ..
            } => self.exec_nb_predict(model, data, feature_names),
            LogicalPlan::ClassStats {
                data,
                feature_names,
                schema,
            } => self.exec_class_stats(data, feature_names, &schema.types()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field, Schema, Value};
    use hylite_expr::{BinaryOp, ScalarExpr};
    use hylite_planner::logical::SortKey;
    use hylite_planner::JoinKind;
    use hylite_storage::Catalog;

    fn setup() -> (Arc<Catalog>, Arc<Schema>) {
        let catalog = Arc::new(Catalog::new());
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let t = catalog.create_table("t", schema.clone()).unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
            .collect();
        t.write().insert_rows(&rows).unwrap();
        t.write().commit();
        (catalog, Arc::new(schema))
    }

    fn scan_plan(schema: &Arc<Schema>) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: Arc::clone(schema),
            projection: None,
            filter: None,
            schema: Arc::clone(schema),
        }
    }

    fn exec(catalog: &Arc<Catalog>, plan: &LogicalPlan) -> Vec<Chunk> {
        let mut e = Executor::new(ExecContext::new(Arc::clone(catalog)));
        e.execute(plan).unwrap()
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let (catalog, schema) = setup();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan_plan(&schema)),
                predicate: ScalarExpr::binary(
                    BinaryOp::Lt,
                    ScalarExpr::column(0, DataType::Int64),
                    ScalarExpr::literal(5i64),
                )
                .unwrap(),
            }),
            exprs: vec![ScalarExpr::binary(
                BinaryOp::Mul,
                ScalarExpr::column(1, DataType::Float64),
                ScalarExpr::literal(2.0f64),
            )
            .unwrap()],
            schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Float64)])),
        };
        let out = exec(&catalog, &plan);
        let total = Chunk::concat(&[DataType::Float64], &out).unwrap();
        assert_eq!(
            total.column(0).as_f64().unwrap(),
            &[0.0, 2.0, 4.0, 6.0, 8.0]
        );
    }

    #[test]
    fn empty_produces_one_row() {
        let (catalog, _) = setup();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Empty {
                schema: Arc::new(Schema::empty()),
            }),
            exprs: vec![ScalarExpr::literal(42i64)],
            schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)])),
        };
        let out = exec(&catalog, &plan);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0].column(0).value(0), Value::Int(42));
    }

    #[test]
    fn sort_limit() {
        let (catalog, schema) = setup();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan_plan(&schema)),
                keys: vec![SortKey {
                    expr: ScalarExpr::column(0, DataType::Int64),
                    asc: false,
                }],
            }),
            limit: Some(3),
            offset: 1,
        };
        let out = exec(&catalog, &plan);
        let total = Chunk::concat(&schema.types(), &out).unwrap();
        assert_eq!(total.column(0).as_i64().unwrap(), &[98, 97, 96]);
    }

    #[test]
    fn self_join() {
        let (catalog, schema) = setup();
        let join_schema = Arc::new(schema.join(&schema));
        let plan = LogicalPlan::Join {
            left: Box::new(scan_plan(&schema)),
            right: Box::new(scan_plan(&schema)),
            kind: JoinKind::Inner,
            condition: Some(
                ScalarExpr::binary(
                    BinaryOp::Eq,
                    ScalarExpr::column(0, DataType::Int64),
                    ScalarExpr::column(2, DataType::Int64),
                )
                .unwrap(),
            ),
            schema: join_schema,
        };
        let out = exec(&catalog, &plan);
        assert_eq!(crate::util::total_rows(&out), 100);
    }

    #[test]
    fn iterate_paper_listing_1() {
        // ITERATE((SELECT 7), (SELECT x+7), (SELECT x WHERE x >= 100))
        let (catalog, _) = setup();
        let int_schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let init = LogicalPlan::Values {
            schema: Arc::clone(&int_schema),
            rows: vec![vec![Value::Int(7)]],
        };
        let working = LogicalPlan::WorkingTable {
            name: "iterate".into(),
            schema: Arc::clone(&int_schema),
        };
        let step = LogicalPlan::Project {
            input: Box::new(working.clone()),
            exprs: vec![ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::column(0, DataType::Int64),
                ScalarExpr::literal(7i64),
            )
            .unwrap()],
            schema: Arc::clone(&int_schema),
        };
        let stop = LogicalPlan::Filter {
            input: Box::new(working),
            predicate: ScalarExpr::binary(
                BinaryOp::GtEq,
                ScalarExpr::column(0, DataType::Int64),
                ScalarExpr::literal(100i64),
            )
            .unwrap(),
        };
        let plan = LogicalPlan::Iterate {
            init: Box::new(init),
            step: Box::new(step),
            stop: Box::new(stop),
            max_iterations: 1000,
            schema: int_schema,
        };
        let out = exec(&catalog, &plan);
        let total = Chunk::concat(&[DataType::Int64], &out).unwrap();
        // Smallest three-digit multiple of seven.
        assert_eq!(total.column(0).as_i64().unwrap(), &[105]);
    }

    #[test]
    fn iterate_memory_is_non_appending() {
        let (catalog, _) = setup();
        let int_schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let init = LogicalPlan::Values {
            schema: Arc::clone(&int_schema),
            rows: (0..50).map(|i| vec![Value::Int(i)]).collect(),
        };
        let working = LogicalPlan::WorkingTable {
            name: "iterate".into(),
            schema: Arc::clone(&int_schema),
        };
        let step = LogicalPlan::Project {
            input: Box::new(working.clone()),
            exprs: vec![ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::column(0, DataType::Int64),
                ScalarExpr::literal(1i64),
            )
            .unwrap()],
            schema: Arc::clone(&int_schema),
        };
        let stop = LogicalPlan::Filter {
            input: Box::new(working),
            predicate: ScalarExpr::binary(
                BinaryOp::GtEq,
                ScalarExpr::column(0, DataType::Int64),
                ScalarExpr::literal(1000i64),
            )
            .unwrap(),
        };
        let plan = LogicalPlan::Iterate {
            init: Box::new(init),
            step: Box::new(step),
            stop: Box::new(stop),
            max_iterations: 10_000,
            schema: int_schema,
        };
        let mut e = Executor::new(ExecContext::new(catalog));
        let out = e.execute(&plan).unwrap();
        assert_eq!(crate::util::total_rows(&out), 50);
        // §5.1: at most 2·n live tuples regardless of iteration count.
        assert!(
            e.ctx.stats.peak_working_rows <= 100,
            "peak {} exceeds 2n",
            e.ctx.stats.peak_working_rows
        );
        assert!(e.ctx.stats.iterations > 900);
    }

    #[test]
    fn recursive_cte_union_all_counts() {
        // WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n+1 WHERE n<10)
        let (catalog, _) = setup();
        let int_schema = Arc::new(Schema::new(vec![Field::new("n", DataType::Int64)]));
        let init = LogicalPlan::Values {
            schema: Arc::clone(&int_schema),
            rows: vec![vec![Value::Int(1)]],
        };
        let step = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::WorkingTable {
                    name: "r".into(),
                    schema: Arc::clone(&int_schema),
                }),
                predicate: ScalarExpr::binary(
                    BinaryOp::Lt,
                    ScalarExpr::column(0, DataType::Int64),
                    ScalarExpr::literal(10i64),
                )
                .unwrap(),
            }),
            exprs: vec![ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::column(0, DataType::Int64),
                ScalarExpr::literal(1i64),
            )
            .unwrap()],
            schema: Arc::clone(&int_schema),
        };
        let plan = LogicalPlan::RecursiveCte {
            name: "r".into(),
            init: Box::new(init),
            step: Box::new(step),
            all: true,
            schema: int_schema,
        };
        let mut e = Executor::new(ExecContext::new(catalog));
        let out = e.execute(&plan).unwrap();
        let total = Chunk::concat(&[DataType::Int64], &out).unwrap();
        let mut got: Vec<i64> = total.column(0).as_i64().unwrap().to_vec();
        got.sort_unstable();
        assert_eq!(got, (1..=10).collect::<Vec<i64>>());
        // Appending semantics: the peak intermediate is the full result.
        assert!(e.ctx.stats.peak_working_rows >= 10);
    }

    #[test]
    fn recursive_cte_union_dedups_to_fixpoint() {
        // Step produces an already-seen value → fixpoint terminates even
        // though the step never returns empty on its own.
        let (catalog, _) = setup();
        let int_schema = Arc::new(Schema::new(vec![Field::new("n", DataType::Int64)]));
        let init = LogicalPlan::Values {
            schema: Arc::clone(&int_schema),
            rows: vec![vec![Value::Int(0)]],
        };
        // step: SELECT (n+1) % 5 FROM r
        let step = LogicalPlan::Project {
            input: Box::new(LogicalPlan::WorkingTable {
                name: "r".into(),
                schema: Arc::clone(&int_schema),
            }),
            exprs: vec![ScalarExpr::binary(
                BinaryOp::Mod,
                ScalarExpr::binary(
                    BinaryOp::Add,
                    ScalarExpr::column(0, DataType::Int64),
                    ScalarExpr::literal(1i64),
                )
                .unwrap(),
                ScalarExpr::literal(5i64),
            )
            .unwrap()],
            schema: Arc::clone(&int_schema),
        };
        let plan = LogicalPlan::RecursiveCte {
            name: "r".into(),
            init: Box::new(init),
            step: Box::new(step),
            all: false,
            schema: int_schema,
        };
        let (catalog2, _) = (catalog, ());
        let mut e = Executor::new(ExecContext::new(catalog2));
        let out = e.execute(&plan).unwrap();
        assert_eq!(crate::util::total_rows(&out), 5);
    }

    #[test]
    fn kmeans_operator_end_to_end() {
        let catalog = Arc::new(Catalog::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("x", DataType::Float64),
            Field::new("y", DataType::Float64),
        ]));
        let data = LogicalPlan::Values {
            schema: Arc::clone(&schema),
            rows: vec![
                vec![Value::Float(0.0), Value::Float(0.0)],
                vec![Value::Float(0.2), Value::Float(0.1)],
                vec![Value::Float(9.0), Value::Float(9.0)],
                vec![Value::Float(9.2), Value::Float(9.1)],
            ],
        };
        let centers = LogicalPlan::Values {
            schema: Arc::clone(&schema),
            rows: vec![
                vec![Value::Float(1.0), Value::Float(1.0)],
                vec![Value::Float(8.0), Value::Float(8.0)],
            ],
        };
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("cluster_id", DataType::Int64),
            Field::new("x", DataType::Float64),
            Field::new("y", DataType::Float64),
            Field::new("size", DataType::Int64),
        ]));
        let plan = LogicalPlan::KMeans {
            data: Box::new(data),
            centers: Box::new(centers),
            lambda: None,
            max_iterations: 10,
            schema: out_schema,
        };
        let mut e = Executor::new(ExecContext::new(catalog));
        let out = e.execute(&plan).unwrap();
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[0].column(3).as_i64().unwrap(), &[2, 2]);
    }

    #[test]
    fn pagerank_operator_end_to_end() {
        let catalog = Arc::new(Catalog::new());
        let edge_schema = Arc::new(Schema::new(vec![
            Field::new("src", DataType::Int64),
            Field::new("dest", DataType::Int64),
        ]));
        // 4-cycle.
        let edges = LogicalPlan::Values {
            schema: Arc::clone(&edge_schema),
            rows: vec![
                vec![Value::Int(10), Value::Int(20)],
                vec![Value::Int(20), Value::Int(30)],
                vec![Value::Int(30), Value::Int(40)],
                vec![Value::Int(40), Value::Int(10)],
            ],
        };
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("vertex", DataType::Int64),
            Field::new("rank", DataType::Float64),
        ]));
        let plan = LogicalPlan::PageRank {
            edges: Box::new(edges),
            weighted: false,
            damping: 0.85,
            epsilon: 1e-9,
            max_iterations: 100,
            schema: out_schema,
        };
        let mut e = Executor::new(ExecContext::new(catalog));
        let out = e.execute(&plan).unwrap();
        assert_eq!(out[0].len(), 4);
        let mut vertices: Vec<i64> = out[0].column(0).as_i64().unwrap().to_vec();
        vertices.sort_unstable();
        assert_eq!(vertices, vec![10, 20, 30, 40], "reverse mapping works");
        for &r in out[0].column(1).as_f64().unwrap() {
            assert!((r - 0.25).abs() < 1e-6);
        }
    }
}
