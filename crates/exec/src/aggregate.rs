//! Hash aggregation with parallel partial states.
//!
//! Each rayon task folds its chunks into a thread-local hash table of
//! per-group accumulators; tables are merged once at the end — the same
//! "local work, single merge" pattern the paper's analytics operators
//! use.

use std::collections::HashMap;

use hylite_common::governor::Governor;
#[cfg(test)]
use hylite_common::Value;
use hylite_common::{Chunk, ColumnVector, DataType, Result};
use hylite_expr::AggregateState;
use hylite_expr::ScalarExpr;
use hylite_planner::logical::AggExpr;
use rayon::prelude::*;

use crate::util::{key_at, key_columns, HashableRow};

type GroupTable = HashMap<HashableRow, Vec<AggregateState>>;

/// Releases transient hash-table reservations when the aggregation
/// finishes (or aborts), so a failed statement leaves the budget clean.
struct BudgetGuard<'a> {
    governor: &'a Governor,
    bytes: u64,
}

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        self.governor.release(self.bytes);
    }
}

/// Rough per-group hash-table footprint: entry overhead plus the key
/// values and one accumulator per aggregate.
fn group_entry_bytes(num_keys: usize, num_aggs: usize) -> u64 {
    48 + 32 * num_keys as u64 + 48 * num_aggs as u64
}

/// Execute a grouped aggregation. Output columns: group keys in order,
/// then one column per aggregate. With no group keys the result is a
/// single row (aggregates over the whole input, even when empty).
///
/// Every parallel partial fold starts with a governor check, and each
/// thread-local hash table is charged against the statement's memory
/// budget (released once the output chunk is built).
pub fn aggregate(
    chunks: &[Chunk],
    group_exprs: &[ScalarExpr],
    aggregates: &[AggExpr],
    output_types: &[DataType],
    governor: &Governor,
) -> Result<Vec<Chunk>> {
    let locals: Vec<Result<(GroupTable, u64)>> = chunks
        .par_iter()
        .map(|chunk| fold_chunk(chunk, group_exprs, aggregates, governor))
        .collect();
    // Collect every successful fold's reservation before propagating any
    // error, so an aborted statement still releases all partials.
    let mut guard = BudgetGuard { governor, bytes: 0 };
    let mut tables = Vec::with_capacity(locals.len());
    let mut first_err = None;
    for local in locals {
        match local {
            Ok((table, reserved)) => {
                guard.bytes += reserved;
                tables.push(table);
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut merged: GroupTable = HashMap::new();
    for local in tables {
        for (key, states) in local {
            match merged.get_mut(&key) {
                Some(existing) => {
                    for (a, b) in existing.iter_mut().zip(&states) {
                        a.merge(b)?;
                    }
                }
                None => {
                    merged.insert(key, states);
                }
            }
        }
    }
    // Global aggregate over empty input still yields one row.
    if merged.is_empty() && group_exprs.is_empty() {
        merged.insert(
            HashableRow(vec![]),
            aggregates.iter().map(|a| a.func.init()).collect(),
        );
    }
    // Deterministic output order: sort groups by key.
    let mut groups: Vec<(HashableRow, Vec<AggregateState>)> = merged.into_iter().collect();
    groups.sort_by(|(a, _), (b, _)| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.sort_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut cols: Vec<ColumnVector> = output_types
        .iter()
        .map(|&t| ColumnVector::empty(t))
        .collect();
    for (key, states) in groups {
        for (c, v) in key.0.iter().enumerate() {
            cols[c].push_value(v)?;
        }
        for (a, state) in states.iter().enumerate() {
            let v = state.finalize();
            let target = output_types[group_exprs.len() + a];
            let v = if v.is_null() { v } else { v.cast_to(target)? };
            cols[group_exprs.len() + a].push_value(&v)?;
        }
    }
    Ok(vec![Chunk::new(cols)])
}

fn fold_chunk(
    chunk: &Chunk,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggExpr],
    governor: &Governor,
) -> Result<(GroupTable, u64)> {
    governor.check()?;
    let mut table = GroupTable::new();
    let key_cols = key_columns(group_exprs, chunk)?;
    let arg_cols: Vec<Option<ColumnVector>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval(chunk)).transpose())
        .collect::<Result<_>>()?;
    if group_exprs.is_empty() {
        // Single group: use the vectorized column fold.
        let states = table
            .entry(HashableRow(vec![]))
            .or_insert_with(|| aggregates.iter().map(|a| a.func.init()).collect());
        for (a, state) in states.iter_mut().enumerate() {
            match &arg_cols[a] {
                Some(col) => state.update_column(col)?,
                None => state.update_count_star(chunk.len() as i64),
            }
        }
        let reserved = group_entry_bytes(0, aggregates.len());
        governor.reserve(reserved)?;
        return Ok((table, reserved));
    }
    for i in 0..chunk.len() {
        let key = key_at(&key_cols, i);
        let states = table
            .entry(key)
            .or_insert_with(|| aggregates.iter().map(|a| a.func.init()).collect());
        for (a, state) in states.iter_mut().enumerate() {
            match &arg_cols[a] {
                Some(col) => state.update(&col.value(i))?,
                None => state.update_count_star(1),
            }
        }
    }
    let reserved = table.len() as u64 * group_entry_bytes(group_exprs.len(), aggregates.len());
    governor.reserve(reserved)?;
    Ok((table, reserved))
}

/// DISTINCT: keep the first occurrence of every row. Checks the governor
/// once per input chunk and charges the dedup hash set against the
/// statement's memory budget.
pub fn distinct(chunks: &[Chunk], types: &[DataType], governor: &Governor) -> Result<Vec<Chunk>> {
    let mut seen = std::collections::HashSet::new();
    let mut guard = BudgetGuard { governor, bytes: 0 };
    let mut cols: Vec<ColumnVector> = types.iter().map(|&t| ColumnVector::empty(t)).collect();
    for chunk in chunks {
        governor.check()?;
        let before = seen.len();
        for i in 0..chunk.len() {
            let row = HashableRow(chunk.row(i).into_values());
            if seen.insert(row.clone()) {
                for (c, v) in row.0.iter().enumerate() {
                    cols[c].push_value(v)?;
                }
            }
        }
        let added = (seen.len() - before) as u64;
        let reserved = added * group_entry_bytes(types.len(), 0);
        governor.reserve(reserved)?;
        guard.bytes += reserved;
    }
    Ok(vec![Chunk::new(cols)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_expr::AggregateFunction;

    fn data() -> Vec<Chunk> {
        vec![Chunk::new(vec![
            ColumnVector::from_i64(vec![1, 2, 1, 2, 1]),
            ColumnVector::from_f64(vec![10.0, 20.0, 30.0, 40.0, 50.0]),
        ])]
    }

    fn agg(func: AggregateFunction, arg: Option<ScalarExpr>) -> AggExpr {
        AggExpr {
            func,
            arg,
            name: func.name().into(),
        }
    }

    #[test]
    fn grouped_sum_and_count() {
        let out = aggregate(
            &data(),
            &[ScalarExpr::column(0, DataType::Int64)],
            &[
                agg(
                    AggregateFunction::Sum,
                    Some(ScalarExpr::column(1, DataType::Float64)),
                ),
                agg(AggregateFunction::CountStar, None),
            ],
            &[DataType::Int64, DataType::Float64, DataType::Int64],
            &Governor::unlimited(),
        )
        .unwrap();
        let c = &out[0];
        assert_eq!(c.len(), 2);
        // Sorted by key: group 1 then group 2.
        assert_eq!(c.column(0).as_i64().unwrap(), &[1, 2]);
        assert_eq!(c.column(1).as_f64().unwrap(), &[90.0, 60.0]);
        assert_eq!(c.column(2).as_i64().unwrap(), &[3, 2]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let out = aggregate(
            &[],
            &[],
            &[
                agg(AggregateFunction::CountStar, None),
                agg(
                    AggregateFunction::Sum,
                    Some(ScalarExpr::column(0, DataType::Int64)),
                ),
            ],
            &[DataType::Int64, DataType::Int64],
            &Governor::unlimited(),
        )
        .unwrap();
        let c = &out[0];
        assert_eq!(c.len(), 1);
        assert_eq!(c.column(0).value(0), Value::Int(0));
        assert!(c.column(1).value(0).is_null(), "SUM of nothing is NULL");
    }

    #[test]
    fn grouped_over_empty_input_is_empty() {
        let out = aggregate(
            &[],
            &[ScalarExpr::column(0, DataType::Int64)],
            &[agg(AggregateFunction::CountStar, None)],
            &[DataType::Int64, DataType::Int64],
            &Governor::unlimited(),
        )
        .unwrap();
        assert_eq!(out[0].len(), 0);
    }

    #[test]
    fn parallel_chunks_merge() {
        let big = data()[0].clone();
        let chunks: Vec<Chunk> = vec![big.slice(0, 2), big.slice(2, 2), big.slice(4, 1)];
        let whole = aggregate(
            &data(),
            &[ScalarExpr::column(0, DataType::Int64)],
            &[agg(
                AggregateFunction::Avg,
                Some(ScalarExpr::column(1, DataType::Float64)),
            )],
            &[DataType::Int64, DataType::Float64],
            &Governor::unlimited(),
        )
        .unwrap();
        let split = aggregate(
            &chunks,
            &[ScalarExpr::column(0, DataType::Int64)],
            &[agg(
                AggregateFunction::Avg,
                Some(ScalarExpr::column(1, DataType::Float64)),
            )],
            &[DataType::Int64, DataType::Float64],
            &Governor::unlimited(),
        )
        .unwrap();
        assert_eq!(whole, split);
    }

    #[test]
    fn null_keys_form_one_group() {
        let mut key = ColumnVector::from_i64(vec![1]);
        key.push_null();
        key.push_null();
        let chunk = Chunk::new(vec![key]);
        let out = aggregate(
            &[chunk],
            &[ScalarExpr::column(0, DataType::Int64)],
            &[agg(AggregateFunction::CountStar, None)],
            &[DataType::Int64, DataType::Int64],
            &Governor::unlimited(),
        )
        .unwrap();
        assert_eq!(out[0].len(), 2, "NULL group + value group");
        // NULL sorts first.
        assert!(out[0].column(0).value(0).is_null());
        assert_eq!(out[0].column(1).value(0), Value::Int(2));
    }

    #[test]
    fn distinct_dedups() {
        let chunk = Chunk::new(vec![ColumnVector::from_i64(vec![1, 2, 1, 3, 2])]);
        let out = distinct(&[chunk], &[DataType::Int64], &Governor::unlimited()).unwrap();
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[1, 2, 3]);
    }
}
