//! Execution context: catalog access, working tables, runtime statistics.

use std::collections::HashMap;
use std::sync::Arc;

use hylite_common::telemetry::{MetricsRegistry, ProfileBuilder, QueryProfile};
use hylite_common::{Chunk, HyError, Result};
use hylite_storage::{Catalog, TableSnapshot};

/// Runtime statistics of one query execution, used by EXPLAIN-style
/// diagnostics and the memory-ablation experiment (ITERATE vs recursive
/// CTE intermediate sizes, §5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Largest number of intermediate working-table rows alive at once
    /// across all iteration constructs in the query.
    pub peak_working_rows: usize,
    /// Total iterations executed by ITERATE / recursive CTE operators
    /// and iterative analytics operators (k-Means, PageRank).
    pub iterations: usize,
}

impl ExecStats {
    /// Record a working-set size observation.
    pub fn observe_working_rows(&mut self, rows: usize) {
        self.peak_working_rows = self.peak_working_rows.max(rows);
    }
}

/// Shared, immutable result of a subplan used as a working table.
pub type WorkingRelation = Arc<Vec<Chunk>>;

/// Context threaded through execution.
pub struct ExecContext {
    catalog: Arc<Catalog>,
    /// Working tables by name; a stack per name supports nesting (an
    /// ITERATE inside a recursive CTE, etc.).
    working: HashMap<String, Vec<WorkingRelation>>,
    /// Tables mutated by the session's open transaction: the session
    /// reads its *own* uncommitted changes from these, and the committed
    /// state of everything else — snapshot isolation.
    own_tables: std::collections::HashSet<String>,
    /// Runtime statistics.
    pub stats: ExecStats,
    /// Engine-wide metrics; shared with the owning database so operator
    /// counters and histograms survive across statements.
    metrics: Arc<MetricsRegistry>,
    /// Per-operator span profile, recorded only when explicitly enabled
    /// (EXPLAIN ANALYZE) so plain queries pay nothing.
    profile: Option<ProfileBuilder>,
}

impl ExecContext {
    /// Context over a catalog, with a private metrics registry.
    pub fn new(catalog: Arc<Catalog>) -> ExecContext {
        ExecContext {
            catalog,
            working: HashMap::new(),
            own_tables: std::collections::HashSet::new(),
            stats: ExecStats::default(),
            metrics: Arc::new(MetricsRegistry::new()),
            profile: None,
        }
    }

    /// Mark tables whose uncommitted (working) state this session reads.
    pub fn with_own_tables(mut self, tables: impl IntoIterator<Item = String>) -> ExecContext {
        self.own_tables = tables.into_iter().collect();
        self
    }

    /// Share an engine-wide metrics registry instead of the private one.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> ExecContext {
        self.metrics = metrics;
        self
    }

    /// The metrics registry this execution reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Start recording a per-operator span profile for this execution.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(ProfileBuilder::new());
    }

    /// True when a profile is being recorded.
    pub fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// Open a profile span for plan node `node_id` (no-op unless
    /// profiling is enabled).
    pub fn profile_enter(&mut self, node_id: usize, op_name: &str) {
        if let Some(p) = &mut self.profile {
            p.enter(node_id, op_name);
        }
    }

    /// Close the innermost profile span with its output totals.
    pub fn profile_exit(&mut self, rows_out: u64, chunks_out: u64) {
        if let Some(p) = &mut self.profile {
            p.exit(rows_out, chunks_out);
        }
    }

    /// Annotate the innermost open profile span.
    pub fn profile_note(&mut self, key: &str, value: impl ToString) {
        if let Some(p) = &mut self.profile {
            p.note(key, value);
        }
    }

    /// Raise the innermost open span's peak memory observation.
    pub fn profile_mem(&mut self, bytes: u64) {
        if let Some(p) = &mut self.profile {
            p.observe_mem(bytes);
        }
    }

    /// Finish profiling and return the assembled profile, if any.
    pub fn take_profile(&mut self) -> Option<QueryProfile> {
        self.profile.take().map(ProfileBuilder::finish)
    }

    /// Snapshot a base table: the session's own working state for tables
    /// it has mutated in its open transaction, the committed state
    /// otherwise.
    pub fn snapshot(&self, table: &str) -> Result<TableSnapshot> {
        let t = self.catalog.get_table(table)?;
        let guard = t.read();
        let snap = if self.own_tables.contains(&table.to_ascii_lowercase()) {
            guard.snapshot()
        } else {
            guard.committed_snapshot()
        };
        Ok(snap)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Push a working relation for `name`.
    pub fn push_working(&mut self, name: &str, chunks: WorkingRelation) {
        let rows: usize = chunks.iter().map(Chunk::len).sum();
        self.stats.observe_working_rows(rows);
        if self.profile.is_some() {
            let bytes: usize = chunks.iter().map(Chunk::heap_bytes).sum();
            self.profile_mem(bytes as u64);
        }
        self.working
            .entry(name.to_owned())
            .or_default()
            .push(chunks);
    }

    /// Pop the innermost working relation for `name`.
    pub fn pop_working(&mut self, name: &str) {
        if let Some(stack) = self.working.get_mut(name) {
            stack.pop();
            if stack.is_empty() {
                self.working.remove(name);
            }
        }
    }

    /// Read the innermost working relation for `name`.
    pub fn read_working(&self, name: &str) -> Result<WorkingRelation> {
        self.working
            .get(name)
            .and_then(|s| s.last())
            .cloned()
            .ok_or_else(|| {
                HyError::Execution(format!(
                    "working table '{name}' referenced outside its iteration construct"
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector;

    #[test]
    fn working_table_stack() {
        let mut ctx = ExecContext::new(Arc::new(Catalog::new()));
        assert!(ctx.read_working("iterate").is_err());
        let a = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![1])])]);
        let b = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![2, 3])])]);
        ctx.push_working("iterate", a);
        ctx.push_working("iterate", Arc::clone(&b));
        assert_eq!(ctx.read_working("iterate").unwrap()[0].len(), 2);
        ctx.pop_working("iterate");
        assert_eq!(ctx.read_working("iterate").unwrap()[0].len(), 1);
        ctx.pop_working("iterate");
        assert!(ctx.read_working("iterate").is_err());
    }

    #[test]
    fn stats_track_peak() {
        let mut ctx = ExecContext::new(Arc::new(Catalog::new()));
        let big = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![0; 100])])]);
        let small = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![0; 5])])]);
        ctx.push_working("w", big);
        ctx.pop_working("w");
        ctx.push_working("w", small);
        assert_eq!(ctx.stats.peak_working_rows, 100);
    }
}
