//! Execution context: catalog access, working tables, runtime statistics.

use std::collections::HashMap;
use std::sync::Arc;

use hylite_common::governor::Governor;
use hylite_common::sysview::{SystemView, SystemViewHub};
use hylite_common::telemetry::{MetricsRegistry, ProfileBuilder, QueryProfile};
use hylite_common::{Chunk, HyError, Result, Value};
use hylite_storage::{Catalog, TableSnapshot};

/// Runtime statistics of one query execution, used by EXPLAIN-style
/// diagnostics and the memory-ablation experiment (ITERATE vs recursive
/// CTE intermediate sizes, §5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Largest number of intermediate working-table rows alive at once
    /// across all iteration constructs in the query.
    pub peak_working_rows: usize,
    /// Total iterations executed by ITERATE / recursive CTE operators
    /// and iterative analytics operators (k-Means, PageRank).
    pub iterations: usize,
}

impl ExecStats {
    /// Record a working-set size observation.
    pub fn observe_working_rows(&mut self, rows: usize) {
        self.peak_working_rows = self.peak_working_rows.max(rows);
    }
}

/// Shared, immutable result of a subplan used as a working table.
pub type WorkingRelation = Arc<Vec<Chunk>>;

/// Context threaded through execution.
pub struct ExecContext {
    catalog: Arc<Catalog>,
    /// Working tables by name; a stack per name supports nesting (an
    /// ITERATE inside a recursive CTE, etc.).
    working: HashMap<String, Vec<WorkingRelation>>,
    /// Tables mutated by the session's open transaction: the session
    /// reads its *own* uncommitted changes from these, and the committed
    /// state of everything else — snapshot isolation.
    own_tables: std::collections::HashSet<String>,
    /// Runtime statistics.
    pub stats: ExecStats,
    /// Engine-wide metrics; shared with the owning database so operator
    /// counters and histograms survive across statements.
    metrics: Arc<MetricsRegistry>,
    /// Per-operator span profile, recorded only when explicitly enabled
    /// (EXPLAIN ANALYZE) so plain queries pay nothing.
    profile: Option<ProfileBuilder>,
    /// The statement's resource governor (cancellation, deadline, memory
    /// budget). Defaults to an unlimited one so execution outside a
    /// session (tests, benches) is unaffected.
    governor: Arc<Governor>,
    /// Scoped memory accounting: one frame per open [`Executor::execute`]
    /// call, tracking bytes reserved for that subtree's child outputs.
    /// When a node finishes, its children's outputs are dead and the
    /// frame's bytes are released back to the budget.
    ///
    /// [`Executor::execute`]: crate::Executor::execute
    mem_frames: Vec<u64>,
    /// System-view hub for `hylite.*` scans. `None` outside a database
    /// session (bare contexts in tests); scans then return no rows.
    sysviews: Option<Arc<SystemViewHub>>,
}

impl ExecContext {
    /// Context over a catalog, with a private metrics registry.
    pub fn new(catalog: Arc<Catalog>) -> ExecContext {
        ExecContext {
            catalog,
            working: HashMap::new(),
            own_tables: std::collections::HashSet::new(),
            stats: ExecStats::default(),
            metrics: Arc::new(MetricsRegistry::new()),
            profile: None,
            governor: Arc::new(Governor::unlimited()),
            mem_frames: Vec::new(),
            sysviews: None,
        }
    }

    /// Attach the database's system-view hub so `hylite.*` scans see
    /// live engine state.
    pub fn with_system_views(mut self, hub: Arc<SystemViewHub>) -> ExecContext {
        self.sysviews = Some(hub);
        self
    }

    /// Materialize a system view's rows from every registered provider
    /// (empty without a hub).
    pub fn scan_system_view(&self, view: SystemView) -> Vec<Vec<Value>> {
        match &self.sysviews {
            Some(hub) => hub.scan(view),
            None => Vec::new(),
        }
    }

    /// Attach the statement's resource governor.
    pub fn with_governor(mut self, governor: Arc<Governor>) -> ExecContext {
        self.governor = governor;
        self
    }

    /// The statement's resource governor.
    pub fn governor(&self) -> &Arc<Governor> {
        &self.governor
    }

    /// Cooperative cancellation/deadline check — called at every operator
    /// dispatch (and, via shared governor handles, in every scan morsel
    /// and analytics iteration).
    pub fn check_governor(&self) -> Result<()> {
        self.governor.check()
    }

    /// Open a memory-accounting frame for one operator execution.
    pub fn push_mem_frame(&mut self) {
        self.mem_frames.push(0);
    }

    /// Close the current frame, releasing every byte its children
    /// reserved (their outputs are dead once the parent has produced its
    /// own output).
    pub fn pop_mem_frame(&mut self) {
        if let Some(bytes) = self.mem_frames.pop() {
            self.governor.release(bytes);
        }
    }

    /// Charge one operator's materialized output against the budget and
    /// remember it in the *parent's* frame so it is released when the
    /// parent finishes. Top-level outputs (no parent frame) stay charged
    /// until the statement's governor is dropped.
    pub fn reserve_output(&mut self, bytes: u64) -> Result<()> {
        self.governor.reserve(bytes)?;
        if let Some(frame) = self.mem_frames.last_mut() {
            *frame += bytes;
        }
        Ok(())
    }

    /// Release bytes that were charged to the current frame before the
    /// frame closes — used by ITERATE when it drops an old generation of
    /// the working table mid-loop, so long iterations don't accumulate
    /// phantom charges.
    pub fn release_scoped(&mut self, bytes: u64) {
        self.governor.release(bytes);
        if let Some(frame) = self.mem_frames.last_mut() {
            *frame = frame.saturating_sub(bytes);
        }
    }

    /// Mark tables whose uncommitted (working) state this session reads.
    pub fn with_own_tables(mut self, tables: impl IntoIterator<Item = String>) -> ExecContext {
        self.own_tables = tables.into_iter().collect();
        self
    }

    /// Share an engine-wide metrics registry instead of the private one.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> ExecContext {
        self.metrics = metrics;
        self
    }

    /// The metrics registry this execution reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Start recording a per-operator span profile for this execution.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(ProfileBuilder::new());
    }

    /// True when a profile is being recorded.
    pub fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// Open a profile span for plan node `node_id` (no-op unless
    /// profiling is enabled).
    pub fn profile_enter(&mut self, node_id: usize, op_name: &str) {
        if let Some(p) = &mut self.profile {
            p.enter(node_id, op_name);
        }
    }

    /// Close the innermost profile span with its output totals.
    pub fn profile_exit(&mut self, rows_out: u64, chunks_out: u64) {
        if let Some(p) = &mut self.profile {
            p.exit(rows_out, chunks_out);
        }
    }

    /// Annotate the innermost open profile span.
    pub fn profile_note(&mut self, key: &str, value: impl ToString) {
        if let Some(p) = &mut self.profile {
            p.note(key, value);
        }
    }

    /// Raise the innermost open span's peak memory observation.
    pub fn profile_mem(&mut self, bytes: u64) {
        if let Some(p) = &mut self.profile {
            p.observe_mem(bytes);
        }
    }

    /// Finish profiling and return the assembled profile, if any.
    pub fn take_profile(&mut self) -> Option<QueryProfile> {
        self.profile.take().map(ProfileBuilder::finish)
    }

    /// Snapshot a base table: the session's own working state for tables
    /// it has mutated in its open transaction, the committed state
    /// otherwise.
    pub fn snapshot(&self, table: &str) -> Result<TableSnapshot> {
        let t = self.catalog.get_table(table)?;
        let guard = t.read();
        let snap = if self.own_tables.contains(&table.to_ascii_lowercase()) {
            guard.snapshot()
        } else {
            guard.committed_snapshot()
        };
        Ok(snap)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Push a working relation for `name`.
    pub fn push_working(&mut self, name: &str, chunks: WorkingRelation) {
        let rows: usize = chunks.iter().map(Chunk::len).sum();
        self.stats.observe_working_rows(rows);
        if self.profile.is_some() {
            let bytes: usize = chunks.iter().map(Chunk::heap_bytes).sum();
            self.profile_mem(bytes as u64);
        }
        self.working
            .entry(name.to_owned())
            .or_default()
            .push(chunks);
    }

    /// Pop the innermost working relation for `name`.
    pub fn pop_working(&mut self, name: &str) {
        if let Some(stack) = self.working.get_mut(name) {
            stack.pop();
            if stack.is_empty() {
                self.working.remove(name);
            }
        }
    }

    /// Read the innermost working relation for `name`.
    pub fn read_working(&self, name: &str) -> Result<WorkingRelation> {
        self.working
            .get(name)
            .and_then(|s| s.last())
            .cloned()
            .ok_or_else(|| {
                HyError::Execution(format!(
                    "working table '{name}' referenced outside its iteration construct"
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector;

    #[test]
    fn working_table_stack() {
        let mut ctx = ExecContext::new(Arc::new(Catalog::new()));
        assert!(ctx.read_working("iterate").is_err());
        let a = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![1])])]);
        let b = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![2, 3])])]);
        ctx.push_working("iterate", a);
        ctx.push_working("iterate", Arc::clone(&b));
        assert_eq!(ctx.read_working("iterate").unwrap()[0].len(), 2);
        ctx.pop_working("iterate");
        assert_eq!(ctx.read_working("iterate").unwrap()[0].len(), 1);
        ctx.pop_working("iterate");
        assert!(ctx.read_working("iterate").is_err());
    }

    #[test]
    fn stats_track_peak() {
        let mut ctx = ExecContext::new(Arc::new(Catalog::new()));
        let big = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![0; 100])])]);
        let small = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![0; 5])])]);
        ctx.push_working("w", big);
        ctx.pop_working("w");
        ctx.push_working("w", small);
        assert_eq!(ctx.stats.peak_working_rows, 100);
    }
}
