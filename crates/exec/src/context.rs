//! Execution context: catalog access, working tables, runtime statistics.

use std::collections::HashMap;
use std::sync::Arc;

use hylite_common::{Chunk, HyError, Result};
use hylite_storage::{Catalog, TableSnapshot};

/// Runtime statistics of one query execution, used by EXPLAIN-style
/// diagnostics and the memory-ablation experiment (ITERATE vs recursive
/// CTE intermediate sizes, §5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Largest number of intermediate working-table rows alive at once
    /// across all iteration constructs in the query.
    pub peak_working_rows: usize,
    /// Total iterations executed by ITERATE / recursive CTE operators.
    pub iterations: usize,
}

impl ExecStats {
    /// Record a working-set size observation.
    pub fn observe_working_rows(&mut self, rows: usize) {
        self.peak_working_rows = self.peak_working_rows.max(rows);
    }
}

/// Shared, immutable result of a subplan used as a working table.
pub type WorkingRelation = Arc<Vec<Chunk>>;

/// Context threaded through execution.
pub struct ExecContext {
    catalog: Arc<Catalog>,
    /// Working tables by name; a stack per name supports nesting (an
    /// ITERATE inside a recursive CTE, etc.).
    working: HashMap<String, Vec<WorkingRelation>>,
    /// Tables mutated by the session's open transaction: the session
    /// reads its *own* uncommitted changes from these, and the committed
    /// state of everything else — snapshot isolation.
    own_tables: std::collections::HashSet<String>,
    /// Runtime statistics.
    pub stats: ExecStats,
}

impl ExecContext {
    /// Context over a catalog.
    pub fn new(catalog: Arc<Catalog>) -> ExecContext {
        ExecContext {
            catalog,
            working: HashMap::new(),
            own_tables: std::collections::HashSet::new(),
            stats: ExecStats::default(),
        }
    }

    /// Mark tables whose uncommitted (working) state this session reads.
    pub fn with_own_tables(
        mut self,
        tables: impl IntoIterator<Item = String>,
    ) -> ExecContext {
        self.own_tables = tables.into_iter().collect();
        self
    }

    /// Snapshot a base table: the session's own working state for tables
    /// it has mutated in its open transaction, the committed state
    /// otherwise.
    pub fn snapshot(&self, table: &str) -> Result<TableSnapshot> {
        let t = self.catalog.get_table(table)?;
        let guard = t.read();
        let snap = if self.own_tables.contains(&table.to_ascii_lowercase()) {
            guard.snapshot()
        } else {
            guard.committed_snapshot()
        };
        Ok(snap)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Push a working relation for `name`.
    pub fn push_working(&mut self, name: &str, chunks: WorkingRelation) {
        let rows: usize = chunks.iter().map(Chunk::len).sum();
        self.stats.observe_working_rows(rows);
        self.working.entry(name.to_owned()).or_default().push(chunks);
    }

    /// Pop the innermost working relation for `name`.
    pub fn pop_working(&mut self, name: &str) {
        if let Some(stack) = self.working.get_mut(name) {
            stack.pop();
            if stack.is_empty() {
                self.working.remove(name);
            }
        }
    }

    /// Read the innermost working relation for `name`.
    pub fn read_working(&self, name: &str) -> Result<WorkingRelation> {
        self.working
            .get(name)
            .and_then(|s| s.last())
            .cloned()
            .ok_or_else(|| {
                HyError::Execution(format!(
                    "working table '{name}' referenced outside its iteration construct"
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector;

    #[test]
    fn working_table_stack() {
        let mut ctx = ExecContext::new(Arc::new(Catalog::new()));
        assert!(ctx.read_working("iterate").is_err());
        let a = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![1])])]);
        let b = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![2, 3])])]);
        ctx.push_working("iterate", a);
        ctx.push_working("iterate", Arc::clone(&b));
        assert_eq!(ctx.read_working("iterate").unwrap()[0].len(), 2);
        ctx.pop_working("iterate");
        assert_eq!(ctx.read_working("iterate").unwrap()[0].len(), 1);
        ctx.pop_working("iterate");
        assert!(ctx.read_working("iterate").is_err());
    }

    #[test]
    fn stats_track_peak() {
        let mut ctx = ExecContext::new(Arc::new(Catalog::new()));
        let big = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![0; 100])])]);
        let small = Arc::new(vec![Chunk::new(vec![ColumnVector::from_i64(vec![0; 5])])]);
        ctx.push_working("w", big);
        ctx.pop_working("w");
        ctx.push_working("w", small);
        assert_eq!(ctx.stats.peak_working_rows, 100);
    }
}
