//! Join execution: hash join for equi-conditions, nested-loop fallback.

use std::collections::HashMap;

use hylite_common::{Chunk, ColumnVector, DataType, Result};
use hylite_expr::{BinaryOp, ScalarExpr};
use hylite_planner::JoinKind;
use rayon::prelude::*;

use crate::util::HashableRow;
#[cfg(test)]
use hylite_common::Value;

/// Join two materialized inputs.
///
/// `condition` is over the concatenated (left ++ right) schema. Equi
/// conjuncts (`left_col_expr = right_col_expr`) become hash-join keys;
/// the rest is applied as a residual predicate. Without any equi
/// conjunct the join degrades to a filtered cross product.
pub fn join(
    left: &[Chunk],
    right: &[Chunk],
    kind: JoinKind,
    condition: Option<&ScalarExpr>,
    left_types: &[DataType],
    right_types: &[DataType],
) -> Result<Vec<Chunk>> {
    let left_width = left_types.len();
    // Materialize the right side once (the build side).
    let right_all = Chunk::concat(right_types, right)?;

    let (keys, residual) = match condition {
        None => (vec![], None),
        Some(c) => extract_equi_keys(c, left_width),
    };

    if keys.is_empty() {
        return nested_loop(left, &right_all, kind, residual.as_ref(), right_types);
    }

    // Build: hash the right side on its key expressions.
    let right_keys: Vec<ScalarExpr> = keys.iter().map(|(_, r)| r.clone()).collect();
    let mut table: HashMap<HashableRow, Vec<usize>> = HashMap::new();
    if !right_all.is_empty() {
        let key_cols = crate::util::key_columns(&right_keys, &right_all)?;
        'row: for i in 0..right_all.len() {
            // SQL: NULL keys never join.
            for c in &key_cols {
                if !c.is_valid(i) {
                    continue 'row;
                }
            }
            table
                .entry(crate::util::key_at(&key_cols, i))
                .or_default()
                .push(i);
        }
    }

    let left_keys: Vec<ScalarExpr> = keys.iter().map(|(l, _)| l.clone()).collect();
    // Probe in parallel over left chunks.
    let results: Vec<Result<Vec<Chunk>>> = left
        .par_iter()
        .map(|chunk| {
            probe_chunk(
                chunk,
                &left_keys,
                &table,
                &right_all,
                kind,
                residual.as_ref(),
                right_types,
            )
        })
        .collect();
    let mut out = Vec::new();
    for r in results {
        out.extend(r?.into_iter().filter(|c| !c.is_empty()));
    }
    Ok(out)
}

/// Probe one left chunk against the build table.
fn probe_chunk(
    chunk: &Chunk,
    left_keys: &[ScalarExpr],
    table: &HashMap<HashableRow, Vec<usize>>,
    right_all: &Chunk,
    kind: JoinKind,
    residual: Option<&ScalarExpr>,
    right_types: &[DataType],
) -> Result<Vec<Chunk>> {
    let n = chunk.len();
    let key_cols = crate::util::key_columns(left_keys, chunk)?;
    let mut l_idx: Vec<usize> = Vec::new();
    let mut r_idx: Vec<usize> = Vec::new();
    'row: for i in 0..n {
        for c in &key_cols {
            if !c.is_valid(i) {
                continue 'row;
            }
        }
        if let Some(matches) = table.get(&crate::util::key_at(&key_cols, i)) {
            for &m in matches {
                l_idx.push(i);
                r_idx.push(m);
            }
        }
    }
    // Candidate pairs → combined chunk.
    let mut combined = combine(chunk, &l_idx, right_all, &r_idx);
    let mut matched_left = vec![false; n];
    if let Some(pred) = residual {
        let col = pred.eval(&combined)?;
        let sel = col.to_selection()?;
        for i in sel.iter_ones() {
            matched_left[l_idx[i]] = true;
        }
        combined = combined.filter(&sel);
    } else {
        for &i in &l_idx {
            matched_left[i] = true;
        }
    }
    let mut out = vec![combined];
    if kind == JoinKind::Left {
        let unmatched: Vec<usize> = (0..n).filter(|&i| !matched_left[i]).collect();
        if !unmatched.is_empty() {
            let left_part = chunk.take(&unmatched);
            let null_right = null_chunk(right_types, unmatched.len());
            let mut cols = left_part.columns().to_vec();
            cols.extend(null_right.columns().iter().cloned());
            out.push(Chunk::from_arc_columns(cols));
        }
    }
    Ok(out)
}

/// Cross product with optional residual filter; supports LEFT semantics.
fn nested_loop(
    left: &[Chunk],
    right_all: &Chunk,
    kind: JoinKind,
    residual: Option<&ScalarExpr>,
    right_types: &[DataType],
) -> Result<Vec<Chunk>> {
    let m = right_all.len();
    let results: Vec<Result<Vec<Chunk>>> = left
        .par_iter()
        .map(|chunk| {
            let n = chunk.len();
            let mut out = Vec::new();
            let mut matched_left = vec![false; n];
            if m > 0 {
                // Process in left×right blocks to bound pair-chunk size.
                const LBLOCK: usize = 512;
                const RBLOCK: usize = 1024;
                let mut lstart = 0;
                while lstart < n {
                    let llen = LBLOCK.min(n - lstart);
                    let mut start = 0;
                    while start < m {
                        let len = RBLOCK.min(m - start);
                        let l_idx: Vec<usize> = (lstart..lstart + llen)
                            .flat_map(|i| std::iter::repeat_n(i, len))
                            .collect();
                        let r_idx: Vec<usize> =
                            (0..llen).flat_map(|_| start..start + len).collect();
                        let mut combined = combine(chunk, &l_idx, right_all, &r_idx);
                        if let Some(pred) = residual {
                            let col = pred.eval(&combined)?;
                            let sel = col.to_selection()?;
                            for i in sel.iter_ones() {
                                matched_left[l_idx[i]] = true;
                            }
                            combined = combined.filter(&sel);
                        } else {
                            matched_left[lstart..lstart + llen]
                                .iter_mut()
                                .for_each(|b| *b = true);
                        }
                        if !combined.is_empty() {
                            out.push(combined);
                        }
                        start += len;
                    }
                    lstart += llen;
                }
            }
            if kind == JoinKind::Left {
                let unmatched: Vec<usize> = (0..n).filter(|&i| !matched_left[i]).collect();
                if !unmatched.is_empty() {
                    let left_part = chunk.take(&unmatched);
                    let null_right = null_chunk(right_types, unmatched.len());
                    let mut cols = left_part.columns().to_vec();
                    cols.extend(null_right.columns().iter().cloned());
                    out.push(Chunk::from_arc_columns(cols));
                }
            }
            Ok(out)
        })
        .collect();
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Glue `left.take(l_idx)` and `right.take(r_idx)` side by side.
fn combine(left: &Chunk, l_idx: &[usize], right: &Chunk, r_idx: &[usize]) -> Chunk {
    let l = left.take(l_idx);
    let r = right.take(r_idx);
    let mut cols = l.columns().to_vec();
    cols.extend(r.columns().iter().cloned());
    Chunk::from_arc_columns(cols)
}

/// An all-NULL chunk of the given types.
fn null_chunk(types: &[DataType], rows: usize) -> Chunk {
    let cols: Vec<ColumnVector> = types
        .iter()
        .map(|&t| {
            let mut c = ColumnVector::empty(t);
            for _ in 0..rows {
                c.push_null();
            }
            c
        })
        .collect();
    Chunk::new(cols)
}

/// Split a join condition into hash keys and a residual predicate.
///
/// Returns `(pairs of (left_key_expr, right_key_expr), residual)`; the
/// right key expressions are remapped to right-local column indices.
fn extract_equi_keys(
    condition: &ScalarExpr,
    left_width: usize,
) -> (Vec<(ScalarExpr, ScalarExpr)>, Option<ScalarExpr>) {
    let mut conjuncts = Vec::new();
    collect_conjuncts(condition, &mut conjuncts);
    let mut keys = Vec::new();
    let mut residual: Vec<ScalarExpr> = Vec::new();
    for c in conjuncts {
        if let ScalarExpr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
            ..
        } = &c
        {
            let side = |e: &ScalarExpr| -> Option<bool> {
                // Some(true) = all-left, Some(false) = all-right.
                let mut refs = Vec::new();
                e.referenced_columns(&mut refs);
                if refs.is_empty() {
                    return None;
                }
                if refs.iter().all(|&i| i < left_width) {
                    Some(true)
                } else if refs.iter().all(|&i| i >= left_width) {
                    Some(false)
                } else {
                    None
                }
            };
            match (side(left), side(right)) {
                (Some(true), Some(false)) => {
                    let mut r = (**right).clone();
                    remap_to_right(&mut r, left_width);
                    keys.push(((**left).clone(), r));
                    continue;
                }
                (Some(false), Some(true)) => {
                    let mut l = (**left).clone();
                    remap_to_right(&mut l, left_width);
                    keys.push(((**right).clone(), l));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(c);
    }
    let residual = residual
        .into_iter()
        .reduce(|a, b| ScalarExpr::binary(BinaryOp::And, a, b).expect("boolean conjunction"));
    (keys, residual)
}

fn collect_conjuncts(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    if let ScalarExpr::Binary {
        op: BinaryOp::And,
        left,
        right,
        ..
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

fn remap_to_right(e: &mut ScalarExpr, left_width: usize) {
    // Indices ≥ left_width become right-local.
    let mut refs = Vec::new();
    e.referenced_columns(&mut refs);
    let max = refs.iter().max().copied().unwrap_or(0);
    let mapping: Vec<usize> = (0..=max).map(|i| i.saturating_sub(left_width)).collect();
    e.remap_columns(&mapping);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_i64(vals: Vec<i64>) -> Chunk {
        Chunk::new(vec![ColumnVector::from_i64(vals)])
    }

    fn two_col(ids: Vec<i64>, names: Vec<&str>) -> Chunk {
        Chunk::new(vec![
            ColumnVector::from_i64(ids),
            ColumnVector::from_str(names),
        ])
    }

    fn eq_cond(l: usize, r: usize) -> ScalarExpr {
        ScalarExpr::binary(
            BinaryOp::Eq,
            ScalarExpr::column(l, DataType::Int64),
            ScalarExpr::column(r, DataType::Int64),
        )
        .unwrap()
    }

    #[test]
    fn inner_hash_join() {
        let left = vec![two_col(vec![1, 2, 3], vec!["a", "b", "c"])];
        let right = vec![two_col(vec![2, 3, 4], vec!["x", "y", "z"])];
        let out = join(
            &left,
            &right,
            JoinKind::Inner,
            Some(&eq_cond(0, 2)),
            &[DataType::Int64, DataType::Varchar],
            &[DataType::Int64, DataType::Varchar],
        )
        .unwrap();
        let total = Chunk::concat(
            &[
                DataType::Int64,
                DataType::Varchar,
                DataType::Int64,
                DataType::Varchar,
            ],
            &out,
        )
        .unwrap();
        assert_eq!(total.len(), 2);
        let mut ids: Vec<i64> = total.column(0).as_i64().unwrap().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn duplicate_keys_multiply() {
        let left = vec![chunk_i64(vec![1, 1])];
        let right = vec![chunk_i64(vec![1, 1, 1])];
        let out = join(
            &left,
            &right,
            JoinKind::Inner,
            Some(&eq_cond(0, 1)),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        assert_eq!(crate::util::total_rows(&out), 6);
    }

    #[test]
    fn null_keys_never_match() {
        let mut col = ColumnVector::from_i64(vec![1]);
        col.push_null();
        let left = vec![Chunk::new(vec![col.clone()])];
        let right = vec![Chunk::new(vec![col])];
        let out = join(
            &left,
            &right,
            JoinKind::Inner,
            Some(&eq_cond(0, 1)),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        assert_eq!(crate::util::total_rows(&out), 1, "only 1=1 matches");
    }

    #[test]
    fn left_join_pads_nulls() {
        let left = vec![chunk_i64(vec![1, 2])];
        let right = vec![two_col(vec![2], vec!["hit"])];
        let out = join(
            &left,
            &right,
            JoinKind::Left,
            Some(&eq_cond(0, 1)),
            &[DataType::Int64],
            &[DataType::Int64, DataType::Varchar],
        )
        .unwrap();
        let total =
            Chunk::concat(&[DataType::Int64, DataType::Int64, DataType::Varchar], &out).unwrap();
        assert_eq!(total.len(), 2);
        // Find the row with id=1: right columns must be NULL.
        for i in 0..2 {
            let id = total.column(0).value(i).as_int().unwrap();
            if id == 1 {
                assert!(total.column(1).value(i).is_null());
                assert!(total.column(2).value(i).is_null());
            } else {
                assert_eq!(total.column(2).value(i), Value::from("hit"));
            }
        }
    }

    #[test]
    fn residual_predicate_applies() {
        // JOIN ON l.id = r.id AND r.id > 1
        let left = vec![chunk_i64(vec![1, 2])];
        let right = vec![chunk_i64(vec![1, 2])];
        let cond = ScalarExpr::binary(
            BinaryOp::And,
            eq_cond(0, 1),
            ScalarExpr::binary(
                BinaryOp::Gt,
                ScalarExpr::column(1, DataType::Int64),
                ScalarExpr::literal(1i64),
            )
            .unwrap(),
        )
        .unwrap();
        let out = join(
            &left,
            &right,
            JoinKind::Inner,
            Some(&cond),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        assert_eq!(crate::util::total_rows(&out), 1);
    }

    #[test]
    fn left_join_residual_counts_as_unmatched() {
        // LEFT JOIN ON l.id = r.id AND r.id > 1: row 1 equi-matches but
        // fails the residual → NULL-padded.
        let left = vec![chunk_i64(vec![1, 2])];
        let right = vec![chunk_i64(vec![1, 2])];
        let cond = ScalarExpr::binary(
            BinaryOp::And,
            eq_cond(0, 1),
            ScalarExpr::binary(
                BinaryOp::Gt,
                ScalarExpr::column(1, DataType::Int64),
                ScalarExpr::literal(1i64),
            )
            .unwrap(),
        )
        .unwrap();
        let out = join(
            &left,
            &right,
            JoinKind::Left,
            Some(&cond),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        let total = Chunk::concat(&[DataType::Int64, DataType::Int64], &out).unwrap();
        assert_eq!(total.len(), 2);
        for i in 0..2 {
            let id = total.column(0).value(i).as_int().unwrap();
            if id == 1 {
                assert!(total.column(1).value(i).is_null());
            }
        }
    }

    #[test]
    fn cross_join_without_condition() {
        let left = vec![chunk_i64(vec![1, 2, 3])];
        let right = vec![chunk_i64(vec![10, 20])];
        let out = join(
            &left,
            &right,
            JoinKind::Cross,
            None,
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        assert_eq!(crate::util::total_rows(&out), 6);
    }

    #[test]
    fn non_equi_condition_falls_back() {
        // l.v < r.v — nested loop.
        let left = vec![chunk_i64(vec![1, 5])];
        let right = vec![chunk_i64(vec![3, 6])];
        let cond = ScalarExpr::binary(
            BinaryOp::Lt,
            ScalarExpr::column(0, DataType::Int64),
            ScalarExpr::column(1, DataType::Int64),
        )
        .unwrap();
        let out = join(
            &left,
            &right,
            JoinKind::Inner,
            Some(&cond),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        // (1,3), (1,6), (5,6)
        assert_eq!(crate::util::total_rows(&out), 3);
    }

    #[test]
    fn empty_sides() {
        let left: Vec<Chunk> = vec![];
        let right = vec![chunk_i64(vec![1])];
        let out = join(
            &left,
            &right,
            JoinKind::Inner,
            Some(&eq_cond(0, 1)),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        assert_eq!(crate::util::total_rows(&out), 0);

        let left = vec![chunk_i64(vec![1])];
        let right: Vec<Chunk> = vec![];
        let out = join(
            &left,
            &right,
            JoinKind::Left,
            Some(&eq_cond(0, 1)),
            &[DataType::Int64],
            &[DataType::Int64],
        )
        .unwrap();
        assert_eq!(crate::util::total_rows(&out), 1, "left row NULL-padded");
    }
}
