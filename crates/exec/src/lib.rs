//! Morsel-driven vectorized execution engine.
//!
//! The [`Executor`] interprets a bound, optimized
//! [`LogicalPlan`](hylite_planner::LogicalPlan) against the storage
//! catalog. Leaf scans split table snapshots into morsels executed on a
//! rayon pool with scan-local filters and projections fused in (the
//! vectorized stand-in for HyPer's data-centric pipelines); pipeline
//! breakers (joins, aggregates, sorts, the analytics operators) merge
//! thread-local state once.
//!
//! Iteration constructs live in [`iterate`]: the SQL:1999 appending
//! recursive CTE and the paper's non-appending ITERATE operator (§5.1),
//! which keeps at most two generations of the working table alive.

pub mod aggregate;
pub mod context;
pub mod executor;
pub mod iterate;
pub mod join;
pub mod operators;
pub mod scan;
pub mod sort;
pub mod util;

pub use context::{ExecContext, ExecStats};
pub use executor::Executor;
