//! Query planning: binder, logical plans and the rule-based optimizer.
//!
//! The pipeline mirrors Figure 3 of the paper: the parsed AST is *bound*
//! (names resolved, types inferred, lambdas attached to their operators)
//! into a [`LogicalPlan`] in which relational and analytical operators are
//! first-class peers, then optimized by rewrite rules that understand both
//! kinds of operators — in particular, selections are *not* pushed through
//! analytical operators (§5.2: their results depend on the whole input).

pub mod binder;
pub mod expr_binder;
pub mod logical;
pub mod optimizer;
pub mod stats;

pub use binder::Binder;
pub use logical::{AggExpr, JoinKind, LogicalPlan, SortKey};
pub use optimizer::Optimizer;
