//! The bound logical plan.

use std::fmt;
use std::sync::Arc;

use hylite_common::{DataType, Field, Schema, SchemaRef, SystemView, Value};
use hylite_expr::{AggregateFunction, BoundLambda, ScalarExpr};

/// Join kinds supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Cross product.
    Cross,
}

/// One aggregate in an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggregateFunction,
    /// Argument (absent for `COUNT(*)`).
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub name: String,
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression over the input.
    pub expr: ScalarExpr,
    /// Ascending?
    pub asc: bool,
}

/// A bound, typed logical query plan.
///
/// Every node knows its output schema. Analytical operators (k-Means,
/// PageRank, Naive Bayes, Iterate) are ordinary plan nodes — they can be
/// freely composed with relational operators, which is the paper's layer-4
/// integration story.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base table, with optional column pruning and a pushed
    /// filter evaluated during the scan.
    TableScan {
        /// Table name in the catalog.
        table: String,
        /// Full table schema (pre-projection).
        table_schema: SchemaRef,
        /// Retained column indices (None = all).
        projection: Option<Vec<usize>>,
        /// Filter over the *projected* columns, applied inside the scan.
        filter: Option<ScalarExpr>,
        /// Output schema (projected, requalified).
        schema: SchemaRef,
    },
    /// Scan of a read-only `hylite.*` system view (virtual relation
    /// materialized at execution time from live engine state).
    SystemScan {
        /// Which system view.
        view: SystemView,
        /// Output schema (qualified).
        schema: SchemaRef,
    },
    /// Literal rows.
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// The rows.
        rows: Vec<Vec<Value>>,
    },
    /// A one-row, zero-column relation (`SELECT` without `FROM`).
    Empty {
        /// Output schema (zero columns).
        schema: SchemaRef,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// Projection / computation of derived columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<ScalarExpr>,
        /// Output schema (names for the expressions).
        schema: SchemaRef,
    },
    /// Join of two inputs.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join kind.
        kind: JoinKind,
        /// Condition over the concatenated schema (None for cross).
        condition: Option<ScalarExpr>,
        /// Output schema (left ++ right).
        schema: SchemaRef,
    },
    /// Grouped aggregation. Output = group keys, then aggregates.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by key expressions over the input.
        group_exprs: Vec<ScalarExpr>,
        /// Aggregates.
        aggregates: Vec<AggExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// LIMIT/OFFSET.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows (None = unbounded).
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
    /// UNION (optionally de-duplicating).
    Union {
        /// Inputs (≥ 2), all type-compatible.
        inputs: Vec<LogicalPlan>,
        /// Keep duplicates?
        all: bool,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Reference to a named working relation: a CTE body, the recursive
    /// CTE's working table, or the `iterate` table inside ITERATE.
    WorkingTable {
        /// Relation name (`iterate`, or the CTE's name).
        name: String,
        /// Schema of the working relation.
        schema: SchemaRef,
    },
    /// SQL:1999 recursive CTE: appending semantics (§5.1's comparison
    /// baseline). `step` references the working table by `name`.
    RecursiveCte {
        /// Working-table name.
        name: String,
        /// Non-recursive term.
        init: Box<LogicalPlan>,
        /// Recursive term (references `WorkingTable(name)`).
        step: Box<LogicalPlan>,
        /// UNION ALL (true) vs UNION with dedup fixpoint (false).
        all: bool,
        /// Output schema.
        schema: SchemaRef,
    },
    /// The paper's non-appending ITERATE operator (§5.1).
    Iterate {
        /// Initialization plan; seeds the working table `iterate`.
        init: Box<LogicalPlan>,
        /// Step plan; replaces the working table each round.
        step: Box<LogicalPlan>,
        /// Stop plan; iteration ends when it produces ≥ 1 row.
        stop: Box<LogicalPlan>,
        /// Iteration cap (infinite-loop guard).
        max_iterations: usize,
        /// Output schema (same as init/step).
        schema: SchemaRef,
    },
    /// k-Means physical operator (§6.1), lambda-parameterized (§7).
    KMeans {
        /// Data subplan (all columns DOUBLE after binding).
        data: Box<LogicalPlan>,
        /// Initial centers subplan (same width).
        centers: Box<LogicalPlan>,
        /// Distance lambda; None = default squared L2.
        lambda: Option<BoundLambda>,
        /// Maximum iterations.
        max_iterations: usize,
        /// Output schema: cluster_id, dims..., size.
        schema: SchemaRef,
    },
    /// k-Means assignment operator (model application).
    KMeansAssign {
        /// Data subplan.
        data: Box<LogicalPlan>,
        /// Centers subplan.
        centers: Box<LogicalPlan>,
        /// Distance lambda; None = default squared L2.
        lambda: Option<BoundLambda>,
        /// Output schema: dims..., cluster_id.
        schema: SchemaRef,
    },
    /// PageRank physical operator (§6.3).
    PageRank {
        /// Edge list subplan: (src BIGINT, dest BIGINT [, weight DOUBLE]).
        edges: Box<LogicalPlan>,
        /// Whether a third edge column supplies per-edge weights.
        weighted: bool,
        /// Damping factor.
        damping: f64,
        /// Convergence epsilon.
        epsilon: f64,
        /// Maximum iterations.
        max_iterations: usize,
        /// Output schema: vertex, rank.
        schema: SchemaRef,
    },
    /// Naive Bayes training operator (§6.2).
    NaiveBayesTrain {
        /// Input: feature columns (DOUBLE) then the label column last.
        data: Box<LogicalPlan>,
        /// Feature names (for the model's attribute column).
        feature_names: Vec<String>,
        /// Output schema: class, attribute, prior, mean, stddev.
        schema: SchemaRef,
    },
    /// Naive Bayes prediction operator.
    NaiveBayesPredict {
        /// Model subplan (shape of NaiveBayesTrain's output).
        model: Box<LogicalPlan>,
        /// Data subplan: feature columns (DOUBLE).
        data: Box<LogicalPlan>,
        /// Feature names, aligned with data columns.
        feature_names: Vec<String>,
        /// Output schema: features..., predicted label.
        schema: SchemaRef,
    },
    /// Per-class statistics building block.
    ClassStats {
        /// Input: feature columns (DOUBLE) then the label column last.
        data: Box<LogicalPlan>,
        /// Feature names.
        feature_names: Vec<String>,
        /// Output schema: class, attribute, count, mean, stddev, min, max.
        schema: SchemaRef,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            LogicalPlan::TableScan { schema, .. }
            | LogicalPlan::SystemScan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Empty { schema }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Union { schema, .. }
            | LogicalPlan::WorkingTable { schema, .. }
            | LogicalPlan::RecursiveCte { schema, .. }
            | LogicalPlan::Iterate { schema, .. }
            | LogicalPlan::KMeans { schema, .. }
            | LogicalPlan::KMeansAssign { schema, .. }
            | LogicalPlan::PageRank { schema, .. }
            | LogicalPlan::NaiveBayesTrain { schema, .. }
            | LogicalPlan::NaiveBayesPredict { schema, .. }
            | LogicalPlan::ClassStats { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// Opaque identity of this plan node, used to correlate executor
    /// profile spans with plan-tree positions. Plans are immutable while
    /// a statement executes, so the node's address is a stable key.
    pub fn node_id(&self) -> usize {
        self as *const LogicalPlan as usize
    }

    /// Short operator name for EXPLAIN output.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::TableScan { .. } => "TableScan",
            LogicalPlan::SystemScan { .. } => "SystemScan",
            LogicalPlan::Values { .. } => "Values",
            LogicalPlan::Empty { .. } => "Empty",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Union { .. } => "Union",
            LogicalPlan::Distinct { .. } => "Distinct",
            LogicalPlan::WorkingTable { .. } => "WorkingTable",
            LogicalPlan::RecursiveCte { .. } => "RecursiveCte",
            LogicalPlan::Iterate { .. } => "Iterate",
            LogicalPlan::KMeans { .. } => "KMeans",
            LogicalPlan::KMeansAssign { .. } => "KMeansAssign",
            LogicalPlan::PageRank { .. } => "PageRank",
            LogicalPlan::NaiveBayesTrain { .. } => "NaiveBayesTrain",
            LogicalPlan::NaiveBayesPredict { .. } => "NaiveBayesPredict",
            LogicalPlan::ClassStats { .. } => "ClassStats",
        }
    }

    /// Direct children, in order.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. }
            | LogicalPlan::SystemScan { .. }
            | LogicalPlan::Values { .. }
            | LogicalPlan::Empty { .. }
            | LogicalPlan::WorkingTable { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs, .. } => inputs.iter().collect(),
            LogicalPlan::RecursiveCte { init, step, .. } => vec![init, step],
            LogicalPlan::Iterate {
                init, step, stop, ..
            } => vec![init, step, stop],
            LogicalPlan::KMeans { data, centers, .. }
            | LogicalPlan::KMeansAssign { data, centers, .. } => vec![data, centers],
            LogicalPlan::PageRank { edges, .. } => vec![edges],
            LogicalPlan::NaiveBayesTrain { data, .. } | LogicalPlan::ClassStats { data, .. } => {
                vec![data]
            }
            LogicalPlan::NaiveBayesPredict { model, data, .. } => vec![model, data],
        }
    }

    /// Render an indented EXPLAIN tree.
    pub fn explain(&self) -> String {
        self.explain_annotated(&|_| String::new())
    }

    /// Render an indented EXPLAIN tree with `annotate(node)` appended to
    /// each operator line — estimated cardinalities for plain EXPLAIN,
    /// actual execution statistics for EXPLAIN ANALYZE.
    pub fn explain_annotated(&self, annotate: &dyn Fn(&LogicalPlan) -> String) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out, annotate);
        out
    }

    fn explain_into(
        &self,
        depth: usize,
        out: &mut String,
        annotate: &dyn Fn(&LogicalPlan) -> String,
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.op_name());
        match self {
            LogicalPlan::TableScan {
                table,
                projection,
                filter,
                ..
            } => {
                out.push_str(&format!(" table={table}"));
                if let Some(p) = projection {
                    out.push_str(&format!(" cols={p:?}"));
                }
                if let Some(f) = filter {
                    out.push_str(&format!(" filter={f}"));
                }
            }
            LogicalPlan::Filter { predicate, .. } => {
                out.push_str(&format!(" predicate={predicate}"));
            }
            LogicalPlan::Project { exprs, .. } => {
                let rendered: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                out.push_str(&format!(" [{}]", rendered.join(", ")));
            }
            LogicalPlan::Join {
                kind, condition, ..
            } => {
                out.push_str(&format!(" kind={kind:?}"));
                if let Some(c) = condition {
                    out.push_str(&format!(" on={c}"));
                }
            }
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => {
                out.push_str(&format!(
                    " groups={} aggs=[{}]",
                    group_exprs.len(),
                    aggregates
                        .iter()
                        .map(|a| a.func.name().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            LogicalPlan::Limit { limit, offset, .. } => {
                out.push_str(&format!(" limit={limit:?} offset={offset}"));
            }
            LogicalPlan::Iterate { max_iterations, .. } => {
                out.push_str(&format!(" max_iter={max_iterations}"));
            }
            LogicalPlan::KMeans {
                lambda,
                max_iterations,
                ..
            } => {
                out.push_str(&format!(
                    " lambda={} max_iter={max_iterations}",
                    if lambda.is_some() {
                        "custom"
                    } else {
                        "default-L2"
                    }
                ));
            }
            LogicalPlan::PageRank {
                damping,
                epsilon,
                max_iterations,
                ..
            } => {
                out.push_str(&format!(
                    " d={damping} eps={epsilon} max_iter={max_iterations}"
                ));
            }
            LogicalPlan::WorkingTable { name, .. } => {
                out.push_str(&format!(" name={name}"));
            }
            LogicalPlan::SystemScan { view, .. } => {
                out.push_str(&format!(" view={}", view.name()));
            }
            _ => {}
        }
        out.push_str(&annotate(self));
        out.push('\n');
        for c in self.children() {
            c.explain_into(depth + 1, out, annotate);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Build the output schema for a projection from expressions and names.
pub fn project_schema(names: &[String], exprs: &[ScalarExpr]) -> Schema {
    Schema::new(
        names
            .iter()
            .zip(exprs)
            .map(|(n, e)| Field::new(n.clone(), e.data_type()))
            .collect(),
    )
}

/// Schema helper: all-DOUBLE fields with the given names.
pub fn f64_schema(names: &[String]) -> Schema {
    Schema::new(
        names
            .iter()
            .map(|n| Field::new(n.clone(), DataType::Float64))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
        ]));
        LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: Arc::clone(&schema),
            projection: None,
            filter: None,
            schema,
        }
    }

    #[test]
    fn schema_propagates_through_filter() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: ScalarExpr::literal(true),
        };
        assert_eq!(plan.schema().len(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: ScalarExpr::literal(true),
            }),
            limit: Some(10),
            offset: 0,
        };
        let text = plan.explain();
        assert!(text.contains("Limit"));
        assert!(text.contains("  Filter"));
        assert!(text.contains("    TableScan table=t"));
    }

    #[test]
    fn children_counts() {
        assert_eq!(scan().children().len(), 0);
        let j = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: JoinKind::Inner,
            condition: None,
            schema: Arc::new(Schema::empty()),
        };
        assert_eq!(j.children().len(), 2);
    }
}
