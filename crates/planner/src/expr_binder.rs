//! Expression binding: unbound AST expressions → typed [`ScalarExpr`]s.

use hylite_common::{DataType, HyError, Result, Schema, Value};
use hylite_expr::{AggregateFunction, BinaryOp, ScalarExpr, ScalarFunc, UnaryOp};
use hylite_sql::ast::{BinOp, Expr};

use crate::logical::AggExpr;

/// Binds expressions against one input schema. Rejects aggregates — those
/// are handled by [`AggRewriter`] in grouped contexts.
pub struct ExprBinder<'a> {
    schema: &'a Schema,
}

impl<'a> ExprBinder<'a> {
    /// Binder over `schema`.
    pub fn new(schema: &'a Schema) -> ExprBinder<'a> {
        ExprBinder { schema }
    }

    /// Bind an expression; aggregate calls are an error here.
    pub fn bind(&self, e: &Expr) -> Result<ScalarExpr> {
        match e {
            Expr::Column { qualifier, name } => {
                let idx = self.schema.resolve(qualifier.as_deref(), name)?;
                Ok(ScalarExpr::column(idx, self.schema.field(idx).data_type))
            }
            Expr::Literal(v) => Ok(ScalarExpr::Literal(v.clone())),
            Expr::Binary { op, left, right } => {
                let l = self.bind(left)?;
                let r = self.bind(right)?;
                ScalarExpr::binary(map_binop(*op), l, r)
            }
            Expr::Neg(inner) => ScalarExpr::unary(UnaryOp::Neg, self.bind(inner)?),
            Expr::Not(inner) => ScalarExpr::unary(UnaryOp::Not, self.bind(inner)?),
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                if AggregateFunction::from_name(name).is_some() || (*star && name == "count") {
                    return Err(HyError::Bind(format!(
                        "aggregate function {name}() is not allowed here"
                    )));
                }
                if *star || *distinct {
                    return Err(HyError::Bind(format!(
                        "{name}() does not accept * or DISTINCT"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| HyError::Bind(format!("unknown function '{name}'")))?;
                let bound: Vec<ScalarExpr> =
                    args.iter().map(|a| self.bind(a)).collect::<Result<_>>()?;
                ScalarExpr::func(func, bound)
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                let b: Vec<(ScalarExpr, ScalarExpr)> = branches
                    .iter()
                    .map(|(c, r)| Ok((self.bind(c)?, self.bind(r)?)))
                    .collect::<Result<_>>()?;
                let e = match else_expr {
                    Some(e) => Some(self.bind(e)?),
                    None => None,
                };
                ScalarExpr::case(b, e)
            }
            Expr::Cast { expr, target } => Ok(ScalarExpr::Cast {
                input: Box::new(self.bind(expr)?),
                target: *target,
            }),
            Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                input: Box::new(self.bind(expr)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let input = self.bind(expr)?;
                let values: Vec<Value> = list
                    .iter()
                    .map(|item| {
                        let bound = self.bind(item)?;
                        match bound {
                            ScalarExpr::Literal(v) => Ok(v),
                            other if other.is_constant() => {
                                other.eval_row(&hylite_common::Row::default())
                            }
                            _ => Err(HyError::Bind(
                                "IN list items must be constant expressions".into(),
                            )),
                        }
                    })
                    .collect::<Result<_>>()?;
                Ok(ScalarExpr::InList {
                    input: Box::new(input),
                    list: values,
                    negated: *negated,
                })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // e BETWEEN a AND b  ⇒  e >= a AND e <= b (negated: OR of
                // complements), binding `e` once per side.
                let ge = ScalarExpr::binary(BinaryOp::GtEq, self.bind(expr)?, self.bind(low)?)?;
                let le = ScalarExpr::binary(BinaryOp::LtEq, self.bind(expr)?, self.bind(high)?)?;
                let both = ScalarExpr::binary(BinaryOp::And, ge, le)?;
                if *negated {
                    ScalarExpr::unary(UnaryOp::Not, both)
                } else {
                    Ok(both)
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let input = self.bind(expr)?;
                let pattern = match self.bind(pattern)? {
                    ScalarExpr::Literal(Value::Str(s)) => s,
                    other => {
                        return Err(HyError::Bind(format!(
                            "LIKE pattern must be a string literal, got {other}"
                        )))
                    }
                };
                if input.data_type() != DataType::Varchar && input.data_type() != DataType::Null {
                    return Err(HyError::Type(format!(
                        "LIKE requires VARCHAR, got {}",
                        input.data_type()
                    )));
                }
                Ok(ScalarExpr::Like {
                    input: Box::new(input),
                    pattern,
                    negated: *negated,
                })
            }
        }
    }
}

/// Map an AST operator to the bound operator.
pub fn map_binop(op: BinOp) -> BinaryOp {
    match op {
        BinOp::Add => BinaryOp::Add,
        BinOp::Sub => BinaryOp::Sub,
        BinOp::Mul => BinaryOp::Mul,
        BinOp::Div => BinaryOp::Div,
        BinOp::Mod => BinaryOp::Mod,
        BinOp::Pow => BinaryOp::Pow,
        BinOp::Eq => BinaryOp::Eq,
        BinOp::NotEq => BinaryOp::NotEq,
        BinOp::Lt => BinaryOp::Lt,
        BinOp::LtEq => BinaryOp::LtEq,
        BinOp::Gt => BinaryOp::Gt,
        BinOp::GtEq => BinaryOp::GtEq,
        BinOp::And => BinaryOp::And,
        BinOp::Or => BinaryOp::Or,
    }
}

/// Whether the AST expression contains any aggregate function call.
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, star, .. } => {
            AggregateFunction::from_name(name).is_some() || (*star && name == "count")
        }
        Expr::Column { .. } | Expr::Literal(_) => false,
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Neg(i) | Expr::Not(i) => contains_aggregate(i),
        Expr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, r)| contains_aggregate(c) || contains_aggregate(r))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
    }
}

/// Rewrites expressions in a grouped query: group-key sub-expressions
/// become references to the aggregate node's key columns, aggregate calls
/// become references to its aggregate columns. Everything else must
/// decompose into those — otherwise the query is invalid SQL.
pub struct AggRewriter<'a> {
    /// Schema below the Aggregate node.
    input_schema: &'a Schema,
    /// Bound group keys (output columns `0..group_bound.len()`).
    pub group_bound: Vec<ScalarExpr>,
    /// Collected aggregates (output columns after the keys).
    pub aggs: Vec<AggExpr>,
}

impl<'a> AggRewriter<'a> {
    /// Rewriter over `input_schema` with pre-bound group keys.
    pub fn new(input_schema: &'a Schema, group_bound: Vec<ScalarExpr>) -> AggRewriter<'a> {
        AggRewriter {
            input_schema,
            group_bound,
            aggs: Vec::new(),
        }
    }

    /// Register (or reuse) an aggregate, returning its output column index.
    fn add_agg(&mut self, func: AggregateFunction, arg: Option<ScalarExpr>) -> Result<usize> {
        // Reuse identical aggregates so `HAVING count(*) > 2` and
        // `SELECT count(*)` share one accumulator.
        for (i, existing) in self.aggs.iter().enumerate() {
            if existing.func == func && existing.arg == arg {
                return Ok(self.group_bound.len() + i);
            }
        }
        let name = func.name().replace("(*)", "_star");
        self.aggs.push(AggExpr { func, arg, name });
        Ok(self.group_bound.len() + self.aggs.len() - 1)
    }

    fn output_type(&self, idx: usize) -> Result<DataType> {
        let ng = self.group_bound.len();
        if idx < ng {
            Ok(self.group_bound[idx].data_type())
        } else {
            let agg = &self.aggs[idx - ng];
            let input_type = agg
                .arg
                .as_ref()
                .map_or(DataType::Int64, ScalarExpr::data_type);
            agg.func.result_type(input_type)
        }
    }

    /// Rewrite an expression to refer to the aggregate node's output.
    pub fn rewrite(&mut self, e: &Expr) -> Result<ScalarExpr> {
        // A sub-expression that exactly matches a group key becomes a key
        // column reference.
        if !contains_aggregate(e) {
            if let Ok(bound) = ExprBinder::new(self.input_schema).bind(e) {
                if let Some(i) = self.group_bound.iter().position(|g| *g == bound) {
                    return Ok(ScalarExpr::column(i, self.output_type(i)?));
                }
                // Constants are fine even when not grouped.
                if bound.is_constant() {
                    return Ok(bound);
                }
            }
        }
        match e {
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } if AggregateFunction::from_name(name).is_some() || (*star && name == "count") => {
                if *distinct {
                    return Err(HyError::Bind(
                        "DISTINCT aggregates are not supported".into(),
                    ));
                }
                let (func, arg) = if *star {
                    (AggregateFunction::CountStar, None)
                } else {
                    let func = AggregateFunction::from_name(name).expect("checked above");
                    if args.len() != 1 {
                        return Err(HyError::Bind(format!(
                            "{name}() expects exactly one argument"
                        )));
                    }
                    let arg = ExprBinder::new(self.input_schema).bind(&args[0])?;
                    if contains_aggregate(&args[0]) {
                        return Err(HyError::Bind("nested aggregates are not allowed".into()));
                    }
                    (func, Some(arg))
                };
                let idx = self.add_agg(func, arg)?;
                Ok(ScalarExpr::column(idx, self.output_type(idx)?))
            }
            Expr::Binary { op, left, right } => {
                let l = self.rewrite(left)?;
                let r = self.rewrite(right)?;
                ScalarExpr::binary(map_binop(*op), l, r)
            }
            Expr::Neg(i) => ScalarExpr::unary(UnaryOp::Neg, self.rewrite(i)?),
            Expr::Not(i) => ScalarExpr::unary(UnaryOp::Not, self.rewrite(i)?),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let b: Vec<(ScalarExpr, ScalarExpr)> = branches
                    .iter()
                    .map(|(c, r)| Ok((self.rewrite(c)?, self.rewrite(r)?)))
                    .collect::<Result<_>>()?;
                let els = match else_expr {
                    Some(x) => Some(self.rewrite(x)?),
                    None => None,
                };
                ScalarExpr::case(b, els)
            }
            Expr::Cast { expr, target } => Ok(ScalarExpr::Cast {
                input: Box::new(self.rewrite(expr)?),
                target: *target,
            }),
            Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                input: Box::new(self.rewrite(expr)?),
                negated: *negated,
            }),
            Expr::Function { name, args, .. } => {
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| HyError::Bind(format!("unknown function '{name}'")))?;
                let bound: Vec<ScalarExpr> = args
                    .iter()
                    .map(|a| self.rewrite(a))
                    .collect::<Result<_>>()?;
                ScalarExpr::func(func, bound)
            }
            Expr::Literal(v) => Ok(ScalarExpr::Literal(v.clone())),
            Expr::Column { qualifier, name } => {
                let full = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                };
                Err(HyError::Bind(format!(
                    "column '{full}' must appear in the GROUP BY clause or be used in an aggregate"
                )))
            }
            other => Err(HyError::Bind(format!(
                "expression {other} is not valid in a grouped query"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::Field;
    use hylite_sql::parse_expression;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64).with_qualifier("t"),
            Field::new("b", DataType::Float64).with_qualifier("t"),
            Field::new("s", DataType::Varchar).with_qualifier("t"),
        ])
    }

    fn bind(sql: &str) -> Result<ScalarExpr> {
        let s = schema();
        let e = parse_expression(sql)?;
        ExprBinder::new(&s).bind(&e)
    }

    #[test]
    fn binds_columns_and_arith() {
        let e = bind("a + b * 2").unwrap();
        assert_eq!(e.data_type(), DataType::Float64);
        assert_eq!(e.to_string(), "(#0 + (#1 * 2))");
    }

    #[test]
    fn binds_qualified() {
        let e = bind("t.a").unwrap();
        assert_eq!(e.to_string(), "#0");
        assert!(bind("u.a").is_err());
    }

    #[test]
    fn between_expands() {
        let e = bind("a BETWEEN 1 AND 3").unwrap();
        assert_eq!(e.to_string(), "((#0 >= 1) AND (#0 <= 3))");
    }

    #[test]
    fn like_requires_string() {
        assert!(bind("s LIKE 'a%'").is_ok());
        assert!(bind("a LIKE 'a%'").is_err());
        assert!(bind("s LIKE s").is_err(), "pattern must be a literal");
    }

    #[test]
    fn in_list_constants_only() {
        assert!(bind("a IN (1, 2, 3)").is_ok());
        assert!(bind("a IN (1, b)").is_err());
    }

    #[test]
    fn rejects_aggregates_in_plain_context() {
        assert!(matches!(bind("sum(a)"), Err(HyError::Bind(_))));
        assert!(matches!(bind("count(*)"), Err(HyError::Bind(_))));
    }

    #[test]
    fn unknown_function() {
        assert!(bind("frobnicate(a)").is_err());
    }

    #[test]
    fn agg_rewriter_collects() {
        let s = schema();
        let group = vec![ScalarExpr::column(0, DataType::Int64)];
        let mut rw = AggRewriter::new(&s, group);
        // a, sum(b) + count(*), having-style: count(*) > 1
        let proj = rw.rewrite(&parse_expression("a").unwrap()).unwrap();
        assert_eq!(proj.to_string(), "#0");
        let e = rw
            .rewrite(&parse_expression("sum(b) + count(*)").unwrap())
            .unwrap();
        assert_eq!(rw.aggs.len(), 2);
        assert_eq!(e.to_string(), "(#1 + #2)");
        // count(*) reused, not duplicated
        let h = rw
            .rewrite(&parse_expression("count(*) > 1").unwrap())
            .unwrap();
        assert_eq!(rw.aggs.len(), 2);
        assert_eq!(h.to_string(), "(#2 > 1)");
    }

    #[test]
    fn agg_rewriter_rejects_ungrouped_column() {
        let s = schema();
        let mut rw = AggRewriter::new(&s, vec![]);
        let err = rw.rewrite(&parse_expression("a + sum(b)").unwrap());
        assert!(matches!(err, Err(HyError::Bind(_))));
    }

    #[test]
    fn group_key_expression_match() {
        let s = schema();
        let key = ExprBinder::new(&s)
            .bind(&parse_expression("a % 2").unwrap())
            .unwrap();
        let mut rw = AggRewriter::new(&s, vec![key]);
        let e = rw.rewrite(&parse_expression("a % 2").unwrap()).unwrap();
        assert_eq!(e.to_string(), "#0");
    }
}
