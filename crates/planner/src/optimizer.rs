//! Rule-based logical optimizer.
//!
//! Rules applied to fixpoint (bounded pass count):
//!
//! 1. constant folding inside scalar expressions;
//! 2. predicate simplification (`TRUE AND p` → `p`, filters on constant
//!    predicates dropped or turned into empty relations);
//! 3. filter merging (`Filter(Filter(x))` → one conjunction);
//! 4. predicate pushdown — through projections, sorts, unions, into join
//!    sides and finally into table scans. Following §5.2 of the paper,
//!    predicates are **not** pushed through aggregates or analytical
//!    operators (k-Means, PageRank, Naive Bayes, Iterate, recursive CTEs):
//!    their results depend on the whole input, so the rewrite would be
//!    unsound;
//! 5. projection merging and scan column pruning.

use std::sync::Arc;

use hylite_common::{Result, Row, Schema, Value};
use hylite_expr::{BinaryOp, ScalarExpr};

use crate::logical::{JoinKind, LogicalPlan};

/// The optimizer. Stateless; `optimize` consumes and returns plans.
#[derive(Debug, Default, Clone, Copy)]
pub struct Optimizer {
    _priv: (),
}

/// Maximum rewrite passes before we stop (each pass is a full-tree walk).
const MAX_PASSES: usize = 8;

impl Optimizer {
    /// A new optimizer.
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// Optimize a plan.
    pub fn optimize(&self, mut plan: LogicalPlan) -> Result<LogicalPlan> {
        for _ in 0..MAX_PASSES {
            let before = plan.clone();
            plan = rewrite(plan)?;
            if plan == before {
                break;
            }
        }
        Ok(plan)
    }
}

/// One bottom-up rewrite pass.
fn rewrite(plan: LogicalPlan) -> Result<LogicalPlan> {
    // First rewrite children.
    let plan = map_children(plan, rewrite)?;
    // Then apply local rules.
    let plan = fold_node_exprs(plan)?;
    match plan {
        LogicalPlan::Filter { input, predicate } => rewrite_filter(*input, predicate),
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => rewrite_project(*input, exprs, schema),
        other => Ok(other),
    }
}

/// Apply `f` to each child plan.
fn map_children(
    plan: LogicalPlan,
    f: impl Fn(LogicalPlan) -> Result<LogicalPlan> + Copy,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)?),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)?),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            kind,
            condition,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)?),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)?),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(f(*input)?),
            limit,
            offset,
        },
        LogicalPlan::Union {
            inputs,
            all,
            schema,
        } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(f).collect::<Result<_>>()?,
            all,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)?),
        },
        LogicalPlan::RecursiveCte {
            name,
            init,
            step,
            all,
            schema,
        } => LogicalPlan::RecursiveCte {
            name,
            init: Box::new(f(*init)?),
            step: Box::new(f(*step)?),
            all,
            schema,
        },
        LogicalPlan::Iterate {
            init,
            step,
            stop,
            max_iterations,
            schema,
        } => LogicalPlan::Iterate {
            init: Box::new(f(*init)?),
            step: Box::new(f(*step)?),
            stop: Box::new(f(*stop)?),
            max_iterations,
            schema,
        },
        LogicalPlan::KMeans {
            data,
            centers,
            lambda,
            max_iterations,
            schema,
        } => LogicalPlan::KMeans {
            data: Box::new(f(*data)?),
            centers: Box::new(f(*centers)?),
            lambda,
            max_iterations,
            schema,
        },
        LogicalPlan::KMeansAssign {
            data,
            centers,
            lambda,
            schema,
        } => LogicalPlan::KMeansAssign {
            data: Box::new(f(*data)?),
            centers: Box::new(f(*centers)?),
            lambda,
            schema,
        },
        LogicalPlan::PageRank {
            edges,
            weighted,
            damping,
            epsilon,
            max_iterations,
            schema,
        } => LogicalPlan::PageRank {
            edges: Box::new(f(*edges)?),
            weighted,
            damping,
            epsilon,
            max_iterations,
            schema,
        },
        LogicalPlan::NaiveBayesTrain {
            data,
            feature_names,
            schema,
        } => LogicalPlan::NaiveBayesTrain {
            data: Box::new(f(*data)?),
            feature_names,
            schema,
        },
        LogicalPlan::NaiveBayesPredict {
            model,
            data,
            feature_names,
            schema,
        } => LogicalPlan::NaiveBayesPredict {
            model: Box::new(f(*model)?),
            data: Box::new(f(*data)?),
            feature_names,
            schema,
        },
        LogicalPlan::ClassStats {
            data,
            feature_names,
            schema,
        } => LogicalPlan::ClassStats {
            data: Box::new(f(*data)?),
            feature_names,
            schema,
        },
        leaf @ (LogicalPlan::TableScan { .. }
        | LogicalPlan::SystemScan { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::Empty { .. }
        | LogicalPlan::WorkingTable { .. }) => leaf,
    })
}

// ------------------------------------------------------- constant folding

/// Fold constant sub-expressions in every expression the node carries.
fn fold_node_exprs(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: fold_expr(predicate),
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(fold_expr).collect(),
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            schema,
        } => LogicalPlan::Join {
            left,
            right,
            kind,
            condition: condition.map(fold_expr),
            schema,
        },
        LogicalPlan::TableScan {
            table,
            table_schema,
            projection,
            filter,
            schema,
        } => LogicalPlan::TableScan {
            table,
            table_schema,
            projection,
            filter: filter.map(fold_expr),
            schema,
        },
        other => other,
    })
}

/// Recursively replace constant sub-expressions with literals. Evaluation
/// errors (like division by zero) leave the expression untouched so the
/// error surfaces at run time only if the row is actually produced.
pub fn fold_expr(e: ScalarExpr) -> ScalarExpr {
    if matches!(e, ScalarExpr::Literal(_)) {
        return e;
    }
    // Fold children first.
    let e = match e {
        ScalarExpr::Binary {
            op,
            left,
            right,
            data_type,
        } => {
            let l = fold_expr(*left);
            let r = fold_expr(*right);
            // Boolean short-circuits that are sound under 3VL:
            // FALSE AND x = FALSE,  TRUE OR x = TRUE,
            // TRUE AND x = x,       FALSE OR x = x.
            match (op, &l, &r) {
                (BinaryOp::And, ScalarExpr::Literal(Value::Bool(false)), _)
                | (BinaryOp::And, _, ScalarExpr::Literal(Value::Bool(false))) => {
                    return ScalarExpr::Literal(Value::Bool(false))
                }
                (BinaryOp::Or, ScalarExpr::Literal(Value::Bool(true)), _)
                | (BinaryOp::Or, _, ScalarExpr::Literal(Value::Bool(true))) => {
                    return ScalarExpr::Literal(Value::Bool(true))
                }
                (BinaryOp::And, ScalarExpr::Literal(Value::Bool(true)), _) => return r,
                (BinaryOp::And, _, ScalarExpr::Literal(Value::Bool(true))) => return l,
                (BinaryOp::Or, ScalarExpr::Literal(Value::Bool(false)), _) => return r,
                (BinaryOp::Or, _, ScalarExpr::Literal(Value::Bool(false))) => return l,
                _ => {}
            }
            ScalarExpr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
                data_type,
            }
        }
        ScalarExpr::Unary { op, input } => ScalarExpr::Unary {
            op,
            input: Box::new(fold_expr(*input)),
        },
        ScalarExpr::Func {
            func,
            args,
            data_type,
        } => ScalarExpr::Func {
            func,
            args: args.into_iter().map(fold_expr).collect(),
            data_type,
        },
        ScalarExpr::Cast { input, target } => ScalarExpr::Cast {
            input: Box::new(fold_expr(*input)),
            target,
        },
        ScalarExpr::IsNull { input, negated } => ScalarExpr::IsNull {
            input: Box::new(fold_expr(*input)),
            negated,
        },
        ScalarExpr::Case {
            branches,
            else_expr,
            data_type,
        } => ScalarExpr::Case {
            branches: branches
                .into_iter()
                .map(|(c, r)| (fold_expr(c), fold_expr(r)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(fold_expr(*e))),
            data_type,
        },
        ScalarExpr::InList {
            input,
            list,
            negated,
        } => ScalarExpr::InList {
            input: Box::new(fold_expr(*input)),
            list,
            negated,
        },
        ScalarExpr::Like {
            input,
            pattern,
            negated,
        } => ScalarExpr::Like {
            input: Box::new(fold_expr(*input)),
            pattern,
            negated,
        },
        other => other,
    };
    // Whole-expression fold when constant.
    if e.is_constant() {
        if let Ok(v) = e.eval_row(&Row::default()) {
            // Preserve the static type: an Int result for a Float64-typed
            // expression must stay a Float literal, and a NULL result of
            // a typed expression must keep its type (as CAST(NULL AS T)).
            if v.is_null() {
                if e.data_type() == hylite_common::DataType::Null {
                    return ScalarExpr::Literal(v);
                }
                return ScalarExpr::Cast {
                    input: Box::new(ScalarExpr::Literal(Value::Null)),
                    target: e.data_type(),
                };
            }
            if v.data_type() == e.data_type() {
                return ScalarExpr::Literal(v);
            }
            if let Ok(cast) = v.cast_to(e.data_type()) {
                return ScalarExpr::Literal(cast);
            }
        }
    }
    e
}

// ------------------------------------------------------ filter pushdown

fn rewrite_filter(input: LogicalPlan, predicate: ScalarExpr) -> Result<LogicalPlan> {
    // Constant predicates.
    if let ScalarExpr::Literal(v) = &predicate {
        match v {
            Value::Bool(true) => return Ok(input),
            Value::Bool(false) | Value::Null => {
                let schema = input.schema();
                return Ok(LogicalPlan::Values {
                    schema,
                    rows: vec![],
                });
            }
            _ => {}
        }
    }
    match input {
        // Merge adjacent filters.
        LogicalPlan::Filter {
            input: inner,
            predicate: p2,
        } => {
            let merged = ScalarExpr::binary(BinaryOp::And, p2, predicate)?;
            rewrite_filter(*inner, merged)
        }
        // Push through projection by substituting the projected
        // expressions into the predicate.
        LogicalPlan::Project {
            input: inner,
            exprs,
            schema,
        } => {
            let pushed = substitute_columns(&predicate, &exprs);
            Ok(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Filter {
                    input: inner,
                    predicate: pushed,
                }),
                exprs,
                schema,
            })
        }
        // Push below sorts (safe: filtering commutes with ordering).
        LogicalPlan::Sort { input: inner, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(LogicalPlan::Filter {
                input: inner,
                predicate,
            }),
            keys,
        }),
        // Push into every UNION branch.
        LogicalPlan::Union {
            inputs,
            all,
            schema,
        } => Ok(LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(|i| LogicalPlan::Filter {
                    input: Box::new(i),
                    predicate: predicate.clone(),
                })
                .collect(),
            all,
            schema,
        }),
        // Split conjuncts across join sides.
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            schema,
        } => {
            let left_width = left.schema().len();
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            let mut push_left = Vec::new();
            let mut push_right = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let mut refs = Vec::new();
                c.referenced_columns(&mut refs);
                let all_left = refs.iter().all(|&i| i < left_width);
                let all_right = refs.iter().all(|&i| i >= left_width);
                match kind {
                    JoinKind::Inner | JoinKind::Cross => {
                        if all_left {
                            push_left.push(c);
                        } else if all_right {
                            push_right.push(c);
                        } else {
                            keep.push(c);
                        }
                    }
                    // For LEFT joins only left-side predicates commute.
                    JoinKind::Left => {
                        if all_left {
                            push_left.push(c);
                        } else {
                            keep.push(c);
                        }
                    }
                }
            }
            let left = apply_conjuncts(*left, push_left, 0)?;
            let right = apply_conjuncts(*right, push_right, left_width)?;
            let mut plan = LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                condition,
                schema,
            };
            if let Some(rest) = conjoin(keep)? {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: rest,
                };
            }
            Ok(plan)
        }
        // Push into the scan itself — evaluated during the parallel scan.
        LogicalPlan::TableScan {
            table,
            table_schema,
            projection,
            filter,
            schema,
        } => {
            let filter = match filter {
                Some(f) => Some(ScalarExpr::binary(BinaryOp::And, f, predicate)?),
                None => Some(predicate),
            };
            Ok(LogicalPlan::TableScan {
                table,
                table_schema,
                projection,
                filter,
                schema,
            })
        }
        // Everything else (Aggregate, analytics operators, Iterate,
        // RecursiveCte, Limit, Distinct, ...) is a pushdown barrier.
        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

fn split_conjuncts(e: ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match e {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
            ..
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn conjoin(mut parts: Vec<ScalarExpr>) -> Result<Option<ScalarExpr>> {
    let Some(mut acc) = parts.pop() else {
        return Ok(None);
    };
    while let Some(p) = parts.pop() {
        acc = ScalarExpr::binary(BinaryOp::And, p, acc)?;
    }
    Ok(Some(acc))
}

fn apply_conjuncts(
    plan: LogicalPlan,
    conjuncts: Vec<ScalarExpr>,
    offset: usize,
) -> Result<LogicalPlan> {
    let Some(mut pred) = conjoin(conjuncts)? else {
        return Ok(plan);
    };
    if offset > 0 {
        // Remap from join-output indices to right-input indices.
        let width = plan.schema().len() + offset;
        let mapping: Vec<usize> = (0..width).map(|i| i.saturating_sub(offset)).collect();
        pred.remap_columns(&mapping);
    }
    Ok(LogicalPlan::Filter {
        input: Box::new(plan),
        predicate: pred,
    })
}

/// Replace `Column(i)` with `replacements[i]` throughout.
fn substitute_columns(e: &ScalarExpr, replacements: &[ScalarExpr]) -> ScalarExpr {
    match e {
        ScalarExpr::Column { index, .. } => replacements[*index].clone(),
        ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
        ScalarExpr::Binary {
            op,
            left,
            right,
            data_type,
        } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(substitute_columns(left, replacements)),
            right: Box::new(substitute_columns(right, replacements)),
            data_type: *data_type,
        },
        ScalarExpr::Unary { op, input } => ScalarExpr::Unary {
            op: *op,
            input: Box::new(substitute_columns(input, replacements)),
        },
        ScalarExpr::Func {
            func,
            args,
            data_type,
        } => ScalarExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|a| substitute_columns(a, replacements))
                .collect(),
            data_type: *data_type,
        },
        ScalarExpr::Case {
            branches,
            else_expr,
            data_type,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| {
                    (
                        substitute_columns(c, replacements),
                        substitute_columns(r, replacements),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(substitute_columns(e, replacements))),
            data_type: *data_type,
        },
        ScalarExpr::Cast { input, target } => ScalarExpr::Cast {
            input: Box::new(substitute_columns(input, replacements)),
            target: *target,
        },
        ScalarExpr::IsNull { input, negated } => ScalarExpr::IsNull {
            input: Box::new(substitute_columns(input, replacements)),
            negated: *negated,
        },
        ScalarExpr::InList {
            input,
            list,
            negated,
        } => ScalarExpr::InList {
            input: Box::new(substitute_columns(input, replacements)),
            list: list.clone(),
            negated: *negated,
        },
        ScalarExpr::Like {
            input,
            pattern,
            negated,
        } => ScalarExpr::Like {
            input: Box::new(substitute_columns(input, replacements)),
            pattern: pattern.clone(),
            negated: *negated,
        },
    }
}

// ------------------------------------------------------ projection rules

fn rewrite_project(
    input: LogicalPlan,
    exprs: Vec<ScalarExpr>,
    schema: hylite_common::SchemaRef,
) -> Result<LogicalPlan> {
    match input {
        // Merge Project(Project(x)) by substitution.
        LogicalPlan::Project {
            input: inner,
            exprs: inner_exprs,
            ..
        } => {
            let merged: Vec<ScalarExpr> = exprs
                .iter()
                .map(|e| substitute_columns(e, &inner_exprs))
                .collect();
            Ok(LogicalPlan::Project {
                input: inner,
                exprs: merged,
                schema,
            })
        }
        // Prune scan columns when the projection reads a strict subset
        // (composes with an existing scan projection).
        LogicalPlan::TableScan {
            table,
            table_schema,
            projection,
            filter,
            schema: scan_schema,
        } => {
            let mut used = Vec::new();
            for e in &exprs {
                e.referenced_columns(&mut used);
            }
            if let Some(f) = &filter {
                f.referenced_columns(&mut used);
            }
            used.sort_unstable();
            used.dedup();
            if used.len() >= scan_schema.len() {
                // Nothing to prune.
                return Ok(LogicalPlan::Project {
                    input: Box::new(LogicalPlan::TableScan {
                        table,
                        table_schema,
                        projection,
                        filter,
                        schema: scan_schema,
                    }),
                    exprs,
                    schema,
                });
            }
            // Build old→new mapping over the current (projected) space.
            let mut mapping = vec![0usize; scan_schema.len()];
            for (new, &old) in used.iter().enumerate() {
                mapping[old] = new;
            }
            let mut new_exprs = exprs;
            for e in &mut new_exprs {
                e.remap_columns(&mapping);
            }
            let new_filter = filter.map(|mut f| {
                f.remap_columns(&mapping);
                f
            });
            let pruned_fields: Vec<_> =
                used.iter().map(|&i| scan_schema.field(i).clone()).collect();
            let pruned_schema = Arc::new(Schema::new(pruned_fields));
            // Compose with the existing table-level projection.
            let table_projection: Vec<usize> = match &projection {
                Some(p) => used.iter().map(|&i| p[i]).collect(),
                None => used,
            };
            Ok(LogicalPlan::Project {
                input: Box::new(LogicalPlan::TableScan {
                    table,
                    table_schema,
                    projection: Some(table_projection),
                    filter: new_filter,
                    schema: pruned_schema,
                }),
                exprs: new_exprs,
                schema,
            })
        }
        other => Ok(LogicalPlan::Project {
            input: Box::new(other),
            exprs,
            schema,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field};

    fn scan(cols: usize) -> LogicalPlan {
        let fields: Vec<Field> = (0..cols)
            .map(|i| Field::new(format!("c{i}"), DataType::Int64))
            .collect();
        let schema = Arc::new(Schema::new(fields));
        LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: Arc::clone(&schema),
            projection: None,
            filter: None,
            schema,
        }
    }

    fn col(i: usize) -> ScalarExpr {
        ScalarExpr::column(i, DataType::Int64)
    }

    fn gt(l: ScalarExpr, v: i64) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Gt, l, ScalarExpr::literal(v)).unwrap()
    }

    #[test]
    fn constant_folding() {
        let e = ScalarExpr::binary(
            BinaryOp::Add,
            ScalarExpr::literal(1i64),
            ScalarExpr::literal(2i64),
        )
        .unwrap();
        assert_eq!(fold_expr(e), ScalarExpr::literal(3i64));
        // TRUE AND p  →  p
        let p = gt(col(0), 5);
        let e = ScalarExpr::binary(BinaryOp::And, ScalarExpr::literal(true), p.clone()).unwrap();
        assert_eq!(fold_expr(e), p);
        // FALSE AND p  →  FALSE
        let e = ScalarExpr::binary(BinaryOp::And, ScalarExpr::literal(false), p.clone()).unwrap();
        assert_eq!(fold_expr(e), ScalarExpr::literal(false));
    }

    #[test]
    fn fold_preserves_type() {
        // 1 + 1 in a Float64 context (via cast) stays Float64.
        let e = ScalarExpr::Cast {
            input: Box::new(ScalarExpr::literal(2i64)),
            target: DataType::Float64,
        };
        let folded = fold_expr(e);
        assert_eq!(folded, ScalarExpr::literal(2.0f64));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = ScalarExpr::binary(
            BinaryOp::Div,
            ScalarExpr::literal(1i64),
            ScalarExpr::literal(0i64),
        )
        .unwrap();
        // Stays intact; the runtime raises the error if the row survives.
        assert!(matches!(fold_expr(e), ScalarExpr::Binary { .. }));
    }

    #[test]
    fn filter_pushed_into_scan() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(2)),
            predicate: gt(col(0), 1),
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        let LogicalPlan::TableScan { filter, .. } = opt else {
            panic!("expected scan, got {opt}");
        };
        assert!(filter.is_some());
    }

    #[test]
    fn filter_true_dropped_false_empties() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(1)),
            predicate: ScalarExpr::literal(true),
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        assert!(matches!(opt, LogicalPlan::TableScan { filter: None, .. }));

        let plan = LogicalPlan::Filter {
            input: Box::new(scan(1)),
            predicate: ScalarExpr::literal(false),
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        assert!(matches!(opt, LogicalPlan::Values { ref rows, .. } if rows.is_empty()));
    }

    #[test]
    fn filter_splits_across_join() {
        let left = scan(2);
        let right = scan(2);
        let join_schema = Arc::new(left.schema().join(&right.schema()));
        let join = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind: JoinKind::Inner,
            condition: Some(ScalarExpr::binary(BinaryOp::Eq, col(0), col(2)).unwrap()),
            schema: join_schema,
        };
        // c1 > 1 (left) AND c3 > 2 (right)
        let pred = ScalarExpr::binary(BinaryOp::And, gt(col(1), 1), gt(col(3), 2)).unwrap();
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: pred,
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        let LogicalPlan::Join { left, right, .. } = opt else {
            panic!("expected join at root, got {opt}");
        };
        let LogicalPlan::TableScan { filter: lf, .. } = *left else {
            panic!("left filter should fold into scan, got {left}");
        };
        assert!(lf.is_some());
        let LogicalPlan::TableScan { filter: rf, .. } = *right else {
            panic!("right filter should fold into scan, got {right}");
        };
        // Remapped to right-local column index 1.
        assert_eq!(rf.unwrap().to_string(), "(#1 > 2)");
    }

    #[test]
    fn left_join_keeps_right_filter_above() {
        let left = scan(1);
        let right = scan(1);
        let join_schema = Arc::new(left.schema().join(&right.schema()));
        let join = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind: JoinKind::Left,
            condition: Some(ScalarExpr::binary(BinaryOp::Eq, col(0), col(1)).unwrap()),
            schema: join_schema,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: gt(col(1), 0),
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Filter { .. }),
            "right-side predicate must stay above a LEFT join: {opt}"
        );
    }

    #[test]
    fn filter_not_pushed_through_aggregate() {
        let agg_schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan(2)),
            group_exprs: vec![col(0)],
            aggregates: vec![],
            schema: agg_schema,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(agg),
            predicate: gt(col(0), 1),
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn filter_not_pushed_through_analytics() {
        let pr_schema = Arc::new(Schema::new(vec![
            Field::new("vertex", DataType::Int64),
            Field::new("rank", DataType::Float64),
        ]));
        let pr = LogicalPlan::PageRank {
            edges: Box::new(scan(2)),
            weighted: false,
            damping: 0.85,
            epsilon: 0.0,
            max_iterations: 45,
            schema: pr_schema,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(pr),
            predicate: gt(col(0), 10),
        };
        let opt = Optimizer::new().optimize(plan).unwrap();
        // The filter must remain ABOVE PageRank (§5.2 of the paper).
        let LogicalPlan::Filter { input, .. } = opt else {
            panic!("filter must not cross the analytics operator");
        };
        assert!(matches!(*input, LogicalPlan::PageRank { .. }));
    }

    #[test]
    fn projection_merges_and_prunes_scan() {
        // SELECT c2 FROM (SELECT c0, c2 FROM t) — two stacked projections.
        let inner = LogicalPlan::Project {
            input: Box::new(scan(4)),
            exprs: vec![col(0), col(2)],
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ])),
        };
        let outer = LogicalPlan::Project {
            input: Box::new(inner),
            exprs: vec![col(1)],
            schema: Arc::new(Schema::new(vec![Field::new("b", DataType::Int64)])),
        };
        let opt = Optimizer::new().optimize(outer).unwrap();
        let LogicalPlan::Project { input, exprs, .. } = opt else {
            panic!()
        };
        assert_eq!(exprs.len(), 1);
        let LogicalPlan::TableScan { projection, .. } = *input else {
            panic!("expected pruned scan, got {input}");
        };
        assert_eq!(projection, Some(vec![2]));
        assert_eq!(exprs[0].to_string(), "#0");
    }

    #[test]
    fn optimize_reaches_fixpoint() {
        let plan = scan(1);
        let once = Optimizer::new().optimize(plan.clone()).unwrap();
        let twice = Optimizer::new().optimize(once.clone()).unwrap();
        assert_eq!(once, twice);
    }
}
