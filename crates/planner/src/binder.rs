//! The binder: resolves names, infers types, and lowers the AST into a
//! [`LogicalPlan`].
//!
//! The binder tracks a *scope schema* for each FROM subtree separately
//! from the plan's own output schema: both have identical column order
//! and types, but the scope schema carries the qualifiers (aliases) that
//! column references resolve against. This avoids re-qualification
//! projections on the hot path.

use std::collections::HashMap;
use std::sync::Arc;

use hylite_common::{DataType, Field, HyError, Result, Row, Schema, SchemaRef, Value};
use hylite_expr::{BoundLambda, ScalarExpr};
use hylite_sql::ast::{
    Cte, Expr, JoinKind as AstJoinKind, Lambda, Query, Select, SelectItem, SetExpr, Statement,
    TableFunc, TableRef,
};
use hylite_storage::Catalog;

use crate::expr_binder::{contains_aggregate, AggRewriter, ExprBinder};
use crate::logical::{AggExpr, JoinKind, LogicalPlan, SortKey};

/// Default iteration cap for ITERATE / recursive CTEs — the paper's
/// infinite-loop guard (§5.1: "those situations need to be detected and
/// aborted by the database system").
pub const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;

/// Default PageRank iteration cap when the query gives none.
pub const DEFAULT_PAGERANK_ITERATIONS: usize = 100;

/// Default k-Means iteration cap when the query gives none.
pub const DEFAULT_KMEANS_ITERATIONS: usize = 100;

/// A bound statement, ready for execution.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// A query producing a relation.
    Query(LogicalPlan),
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Schema.
        schema: Schema,
        /// IF NOT EXISTS.
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS.
        if_exists: bool,
    },
    /// INSERT with a bound source producing exactly the table's schema.
    Insert {
        /// Target table.
        table: String,
        /// Source plan (already cast/reordered to the table schema).
        source: LogicalPlan,
    },
    /// UPDATE.
    Update {
        /// Target table.
        table: String,
        /// Per-table-column new-value expressions (over the table schema);
        /// identity for unassigned columns.
        exprs: Vec<ScalarExpr>,
        /// Filter over the table schema (rows to update).
        filter: Option<ScalarExpr>,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: String,
        /// Filter over the table schema (rows to delete).
        filter: Option<ScalarExpr>,
    },
    /// BEGIN.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// `SET <setting> = <value>` — validated session knob assignment; the
    /// session layer interprets the name.
    Set {
        /// Setting name (lower-cased).
        name: String,
        /// Non-negative value (`0` disables the knob).
        value: u64,
    },
    /// `EXPLAIN [ANALYZE]` of a bound statement.
    Explain {
        /// The statement being explained.
        statement: Box<BoundStatement>,
        /// Whether to execute it and report actual operator statistics.
        analyze: bool,
    },
    /// `BACKUP TO 'dir' [FROM 'base'] [VERIFY]` — executed by the session
    /// layer against the database's durability engine.
    Backup {
        /// Destination directory.
        dir: String,
        /// Optional incremental base backup directory.
        base: Option<String>,
        /// Whether to re-read every copied file before completion.
        verify: bool,
    },
}

/// Name-resolution and lowering context.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    /// Working tables in scope (`iterate`, recursive CTE bodies),
    /// innermost last.
    working: Vec<(String, SchemaRef)>,
    /// CTE definitions in scope, innermost last.
    ctes: Vec<HashMap<String, (LogicalPlan, SchemaRef)>>,
}

impl<'a> Binder<'a> {
    /// Binder over a catalog.
    pub fn new(catalog: &'a Catalog) -> Binder<'a> {
        Binder {
            catalog,
            working: Vec::new(),
            ctes: Vec::new(),
        }
    }

    /// Bind a top-level statement.
    pub fn bind_statement(&mut self, stmt: &Statement) -> Result<BoundStatement> {
        match stmt {
            Statement::Query(q) => Ok(BoundStatement::Query(self.bind_query(q)?.0)),
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let mut seen = std::collections::HashSet::new();
                for (c, _) in columns {
                    if !seen.insert(c.clone()) {
                        return Err(HyError::Bind(format!(
                            "duplicate column '{c}' in CREATE TABLE"
                        )));
                    }
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(n, t)| Field::new(n.clone(), *t))
                        .collect(),
                );
                Ok(BoundStatement::CreateTable {
                    name: name.clone(),
                    schema,
                    if_not_exists: *if_not_exists,
                })
            }
            Statement::DropTable { name, if_exists } => Ok(BoundStatement::DropTable {
                name: name.clone(),
                if_exists: *if_exists,
            }),
            Statement::Insert {
                table,
                columns,
                source,
            } => self.bind_insert(table, columns.as_deref(), source),
            Statement::Update {
                table,
                assignments,
                filter,
            } => self.bind_update(table, assignments, filter.as_ref()),
            Statement::Delete { table, filter } => {
                let t = self.catalog.get_table(table)?;
                let schema = Arc::clone(t.read().schema());
                let filter = match filter {
                    Some(f) => Some(bind_predicate(&schema, f)?),
                    None => None,
                };
                Ok(BoundStatement::Delete {
                    table: table.clone(),
                    filter,
                })
            }
            Statement::Begin => Ok(BoundStatement::Begin),
            Statement::Commit => Ok(BoundStatement::Commit),
            Statement::Rollback => Ok(BoundStatement::Rollback),
            Statement::Set { name, value } => {
                if *value < 0 {
                    return Err(HyError::Bind(format!(
                        "SET {name}: value must be non-negative, got {value}"
                    )));
                }
                Ok(BoundStatement::Set {
                    name: name.clone(),
                    value: *value as u64,
                })
            }
            Statement::Explain { statement, analyze } => Ok(BoundStatement::Explain {
                statement: Box::new(self.bind_statement(statement)?),
                analyze: *analyze,
            }),
            Statement::Backup { dir, base, verify } => {
                if dir.is_empty() {
                    return Err(HyError::Bind(
                        "BACKUP TO: destination directory must not be empty".into(),
                    ));
                }
                Ok(BoundStatement::Backup {
                    dir: dir.clone(),
                    base: base.clone(),
                    verify: *verify,
                })
            }
        }
    }

    fn bind_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &Query,
    ) -> Result<BoundStatement> {
        let t = self.catalog.get_table(table)?;
        let table_schema = Arc::clone(t.read().schema());
        let (plan, plan_schema) = self.bind_query(source)?;
        // Map each table column to a source column (by position within the
        // explicit column list) or a NULL default.
        let provided: Vec<String> = match columns {
            Some(cols) => cols.iter().map(|c| c.to_ascii_lowercase()).collect(),
            None => table_schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect(),
        };
        if provided.len() != plan_schema.len() {
            return Err(HyError::Bind(format!(
                "INSERT provides {} columns but source has {}",
                provided.len(),
                plan_schema.len()
            )));
        }
        let mut exprs = Vec::with_capacity(table_schema.len());
        for field in table_schema.fields() {
            let expr = match provided.iter().position(|c| *c == field.name) {
                Some(src_idx) => {
                    let src = ScalarExpr::column(src_idx, plan_schema.field(src_idx).data_type);
                    cast_if_needed(src, field.data_type)?
                }
                None => ScalarExpr::Cast {
                    input: Box::new(ScalarExpr::Literal(Value::Null)),
                    target: field.data_type,
                },
            };
            exprs.push(expr);
        }
        let schema = Arc::new(table_schema.without_qualifiers());
        Ok(BoundStatement::Insert {
            table: table.to_owned(),
            source: LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema,
            },
        })
    }

    fn bind_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<BoundStatement> {
        let t = self.catalog.get_table(table)?;
        let schema = Arc::clone(t.read().schema());
        let binder = ExprBinder::new(&schema);
        let mut exprs: Vec<ScalarExpr> = schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| ScalarExpr::column(i, f.data_type))
            .collect();
        for (col, e) in assignments {
            let idx = schema.index_of(col)?;
            let bound = binder.bind(e)?;
            exprs[idx] = cast_if_needed(bound, schema.field(idx).data_type)?;
        }
        let filter = match filter {
            Some(f) => Some(bind_predicate(&schema, f)?),
            None => None,
        };
        Ok(BoundStatement::Update {
            table: table.to_owned(),
            exprs,
            filter,
        })
    }

    // ------------------------------------------------------------- queries

    /// Bind a query; returns the plan and its scope schema (same columns,
    /// qualifiers suitable for outer references).
    pub fn bind_query(&mut self, q: &Query) -> Result<(LogicalPlan, SchemaRef)> {
        self.ctes.push(HashMap::new());
        let result = self.bind_query_inner(q);
        self.ctes.pop();
        result
    }

    fn bind_query_inner(&mut self, q: &Query) -> Result<(LogicalPlan, SchemaRef)> {
        for cte in &q.ctes {
            self.bind_cte(cte, q.recursive)?;
        }
        // A SELECT body binds its own ORDER BY so that sort keys may
        // reference non-projected input columns (via hidden columns).
        let (mut plan, schema) = match &q.body {
            SetExpr::Select(s) if !q.order_by.is_empty() => {
                self.bind_select_ordered(s, &q.order_by)?
            }
            body => {
                let (mut plan, schema) = self.bind_set_expr(body)?;
                if !q.order_by.is_empty() {
                    let keys = bind_order_keys_against_output(&schema, &q.order_by)?;
                    plan = LogicalPlan::Sort {
                        input: Box::new(plan),
                        keys,
                    };
                }
                (plan, schema)
            }
        };
        if q.limit.is_some() || q.offset.is_some() {
            let limit = match &q.limit {
                Some(e) => Some(const_usize(e, "LIMIT")?),
                None => None,
            };
            let offset = match &q.offset {
                Some(e) => const_usize(e, "OFFSET")?,
                None => 0,
            };
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit,
                offset,
            };
        }
        Ok((plan, schema))
    }

    fn bind_cte(&mut self, cte: &Cte, recursive: bool) -> Result<()> {
        let is_self_recursive = recursive && query_references(&cte.query, &cte.name);
        if is_self_recursive {
            // Body must be `init UNION [ALL] step`.
            let SetExpr::Union { left, right, all } = &cte.query.body else {
                return Err(HyError::Bind(format!(
                    "recursive CTE '{}' must be 'initial UNION [ALL] recursive'",
                    cte.name
                )));
            };
            let (init, init_schema) = self.bind_set_expr(left)?;
            let cte_schema = Arc::new(apply_cte_aliases(&init_schema, cte)?);
            self.working
                .push((cte.name.clone(), Arc::clone(&cte_schema)));
            let step_result = self.bind_set_expr(right);
            self.working.pop();
            let (step, step_schema) = step_result?;
            let step = coerce_plan_to(step, &step_schema, &cte_schema)?;
            let plan = LogicalPlan::RecursiveCte {
                name: cte.name.clone(),
                init: Box::new(coerce_plan_to(init, &init_schema, &cte_schema)?),
                step: Box::new(step),
                all: *all,
                schema: Arc::clone(&cte_schema),
            };
            self.ctes
                .last_mut()
                .expect("cte scope pushed")
                .insert(cte.name.clone(), (plan, cte_schema));
        } else {
            let (plan, schema) = self.bind_query(&cte.query)?;
            let cte_schema = Arc::new(apply_cte_aliases(&schema, cte)?);
            self.ctes
                .last_mut()
                .expect("cte scope pushed")
                .insert(cte.name.clone(), (plan, cte_schema));
        }
        Ok(())
    }

    fn bind_set_expr(&mut self, body: &SetExpr) -> Result<(LogicalPlan, SchemaRef)> {
        match body {
            SetExpr::Select(s) => self.bind_select(s),
            SetExpr::Query(q) => self.bind_query(q),
            SetExpr::Values(rows) => self.bind_values(rows),
            SetExpr::Union { left, right, all } => {
                let (l, ls) = self.bind_set_expr(left)?;
                let (r, rs) = self.bind_set_expr(right)?;
                if ls.len() != rs.len() {
                    return Err(HyError::Bind(format!(
                        "UNION inputs have {} and {} columns",
                        ls.len(),
                        rs.len()
                    )));
                }
                // Coerce both sides to common types; keep left's names.
                let mut fields = Vec::with_capacity(ls.len());
                for (lf, rf) in ls.fields().iter().zip(rs.fields()) {
                    let t = lf.data_type.common_type(rf.data_type)?;
                    fields.push(Field::new(lf.name.clone(), t));
                }
                let out = Arc::new(Schema::new(fields));
                let l = coerce_plan_to(l, &ls, &out)?;
                let r = coerce_plan_to(r, &rs, &out)?;
                let plan = LogicalPlan::Union {
                    inputs: vec![l, r],
                    all: *all,
                    schema: Arc::clone(&out),
                };
                Ok((plan, out))
            }
        }
    }

    fn bind_values(&mut self, rows: &[Vec<Expr>]) -> Result<(LogicalPlan, SchemaRef)> {
        if rows.is_empty() {
            return Err(HyError::Bind("VALUES requires at least one row".into()));
        }
        let width = rows[0].len();
        let mut value_rows: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        let empty = Schema::empty();
        let binder = ExprBinder::new(&empty);
        for row in rows {
            if row.len() != width {
                return Err(HyError::Bind("VALUES rows have inconsistent arity".into()));
            }
            let vals: Vec<Value> = row
                .iter()
                .map(|e| {
                    let bound = binder.bind(e)?;
                    bound.eval_row(&Row::default())
                })
                .collect::<Result<_>>()?;
            value_rows.push(vals);
        }
        let mut types = vec![DataType::Null; width];
        for row in &value_rows {
            for (i, v) in row.iter().enumerate() {
                types[i] = types[i].common_type(v.data_type())?;
            }
        }
        let fields: Vec<Field> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                Field::new(
                    format!("column{}", i + 1),
                    if t == DataType::Null {
                        DataType::Int64
                    } else {
                        t
                    },
                )
            })
            .collect();
        let schema = Arc::new(Schema::new(fields));
        let plan = LogicalPlan::Values {
            schema: Arc::clone(&schema),
            rows: value_rows,
        };
        Ok((plan, schema))
    }

    fn bind_select(&mut self, s: &Select) -> Result<(LogicalPlan, SchemaRef)> {
        self.bind_select_ordered(s, &[])
    }

    fn bind_select_ordered(
        &mut self,
        s: &Select,
        order_by: &[hylite_sql::OrderByExpr],
    ) -> Result<(LogicalPlan, SchemaRef)> {
        // FROM
        let (mut plan, scope) = if s.from.is_empty() {
            let schema = Arc::new(Schema::empty());
            (
                LogicalPlan::Empty {
                    schema: Arc::clone(&schema),
                },
                schema,
            )
        } else {
            let mut iter = s.from.iter();
            let (mut plan, mut scope) = self.bind_table_ref(iter.next().expect("non-empty"))?;
            for item in iter {
                let (rp, rs) = self.bind_table_ref(item)?;
                let schema = Arc::new(scope.join(&rs));
                plan = LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(rp),
                    kind: JoinKind::Cross,
                    condition: None,
                    schema: Arc::clone(&schema),
                };
                scope = schema;
            }
            (plan, scope)
        };

        // WHERE
        if let Some(pred) = &s.selection {
            if contains_aggregate(pred) {
                return Err(HyError::Bind(
                    "aggregates are not allowed in WHERE (use HAVING)".into(),
                ));
            }
            let predicate = bind_predicate(&scope, pred)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let grouped = !s.group_by.is_empty()
            || s.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            })
            || s.having.as_ref().is_some_and(contains_aggregate)
            || order_by.iter().any(|ob| contains_aggregate(&ob.expr));

        let (plan, schema) = if grouped {
            self.bind_grouped(s, plan, &scope, order_by)?
        } else {
            if let Some(h) = &s.having {
                return Err(HyError::Bind(format!(
                    "HAVING without GROUP BY or aggregates: {h}"
                )));
            }
            self.bind_plain_projection(s, plan, &scope, order_by)?
        };

        let plan = if s.distinct {
            LogicalPlan::Distinct {
                input: Box::new(plan),
            }
        } else {
            plan
        };
        Ok((plan, schema))
    }

    fn bind_plain_projection(
        &mut self,
        s: &Select,
        input: LogicalPlan,
        scope: &SchemaRef,
        order_by: &[hylite_sql::OrderByExpr],
    ) -> Result<(LogicalPlan, SchemaRef)> {
        let binder = ExprBinder::new(scope);
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Wildcard => {
                    for (i, f) in scope.fields().iter().enumerate() {
                        exprs.push(ScalarExpr::column(i, f.data_type));
                        fields.push(Field::new(f.name.clone(), f.data_type));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let ql = q.to_ascii_lowercase();
                    let mut any = false;
                    for (i, f) in scope.fields().iter().enumerate() {
                        if f.qualifier.as_deref() == Some(ql.as_str()) {
                            exprs.push(ScalarExpr::column(i, f.data_type));
                            fields.push(Field::new(f.name.clone(), f.data_type));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(HyError::Bind(format!("unknown table alias '{q}' in {q}.*")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = binder.bind(expr)?;
                    let name = output_name(expr, alias.as_deref(), exprs.len());
                    fields.push(Field::new(name, bound.data_type()));
                    exprs.push(bound);
                }
            }
        }
        let schema = Arc::new(Schema::new(fields));

        // Resolve ORDER BY: output columns (by alias/name/ordinal) sort
        // the projection directly; anything else binds against the input
        // scope and rides along as a hidden column that is dropped after
        // the sort.
        let mut keys: Vec<SortKey> = Vec::new();
        let mut hidden: Vec<ScalarExpr> = Vec::new();
        for ob in order_by {
            let expr = if let Some(k) = ordinal(&ob.expr, schema.len())? {
                ScalarExpr::column(k, schema.field(k).data_type)
            } else if let Ok(e) = ExprBinder::new(&schema).bind(&ob.expr) {
                e
            } else {
                let over_input = binder.bind(&ob.expr)?;
                let idx = exprs.len() + hidden.len();
                let dt = over_input.data_type();
                hidden.push(over_input);
                ScalarExpr::column(idx, dt)
            };
            keys.push(SortKey { expr, asc: ob.asc });
        }

        if hidden.is_empty() {
            // `SELECT *` with no computation: skip the no-op projection.
            let identity = exprs.len() == scope.len()
                && exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, ScalarExpr::Column { index, .. } if *index == i));
            let mut plan = if identity {
                input
            } else {
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs,
                    schema: Arc::clone(&schema),
                }
            };
            if !keys.is_empty() {
                plan = LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
            return Ok((plan, schema));
        }
        if s.distinct {
            return Err(HyError::Bind(
                "ORDER BY expressions must appear in the select list when DISTINCT is used".into(),
            ));
        }
        let mut ext_fields = schema.fields().to_vec();
        for (i, h) in hidden.iter().enumerate() {
            ext_fields.push(Field::new(format!("__sort{i}"), h.data_type()));
        }
        let mut ext_exprs = exprs;
        ext_exprs.extend(hidden);
        let plan = LogicalPlan::Project {
            input: Box::new(input),
            exprs: ext_exprs,
            schema: Arc::new(Schema::new(ext_fields)),
        };
        let plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
        let final_exprs: Vec<ScalarExpr> = schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| ScalarExpr::column(i, f.data_type))
            .collect();
        let plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: final_exprs,
            schema: Arc::clone(&schema),
        };
        Ok((plan, schema))
    }

    fn bind_grouped(
        &mut self,
        s: &Select,
        input: LogicalPlan,
        scope: &SchemaRef,
        order_by: &[hylite_sql::OrderByExpr],
    ) -> Result<(LogicalPlan, SchemaRef)> {
        let binder = ExprBinder::new(scope);
        let group_bound: Vec<ScalarExpr> = s
            .group_by
            .iter()
            .map(|e| binder.bind(e))
            .collect::<Result<_>>()?;
        let mut rewriter = AggRewriter::new(scope, group_bound);

        let mut out_exprs = Vec::new();
        let mut out_fields = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(HyError::Bind(
                        "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = rewriter.rewrite(expr)?;
                    let name = output_name(expr, alias.as_deref(), out_exprs.len());
                    out_fields.push(Field::new(name, bound.data_type()));
                    out_exprs.push(bound);
                }
            }
        }
        let having_bound = match &s.having {
            Some(h) => {
                let b = rewriter.rewrite(h)?;
                if b.data_type() != DataType::Bool && b.data_type() != DataType::Null {
                    return Err(HyError::Type(format!(
                        "HAVING must be boolean, got {}",
                        b.data_type()
                    )));
                }
                Some(b)
            }
            None => None,
        };

        // Resolve ORDER BY before freezing the aggregate list: keys may
        // reference output columns, or group/aggregate expressions that
        // ride along as hidden columns.
        let schema = Arc::new(Schema::new(out_fields));
        let mut keys: Vec<SortKey> = Vec::new();
        let mut hidden: Vec<ScalarExpr> = Vec::new();
        for ob in order_by {
            let expr = if let Some(k) = ordinal(&ob.expr, schema.len())? {
                ScalarExpr::column(k, schema.field(k).data_type)
            } else if let Ok(e) = ExprBinder::new(&schema).bind(&ob.expr) {
                e
            } else {
                let over_agg = rewriter.rewrite(&ob.expr)?;
                let idx = out_exprs.len() + hidden.len();
                let dt = over_agg.data_type();
                hidden.push(over_agg);
                ScalarExpr::column(idx, dt)
            };
            keys.push(SortKey { expr, asc: ob.asc });
        }

        // Build the aggregate node schema: keys then aggregates.
        let group_exprs = rewriter.group_bound.clone();
        let aggregates: Vec<AggExpr> = rewriter.aggs.clone();
        let mut agg_fields = Vec::new();
        for (i, g) in group_exprs.iter().enumerate() {
            agg_fields.push(Field::new(format!("key{i}"), g.data_type()));
        }
        for a in &aggregates {
            let t = a
                .func
                .result_type(a.arg.as_ref().map_or(DataType::Int64, |e| e.data_type()))?;
            agg_fields.push(Field::new(a.name.clone(), t));
        }
        let agg_schema = Arc::new(Schema::new(agg_fields));
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs,
            aggregates,
            schema: agg_schema,
        };
        if let Some(h) = having_bound {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: h,
            };
        }
        if hidden.is_empty() {
            let mut plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: out_exprs,
                schema: Arc::clone(&schema),
            };
            if !keys.is_empty() {
                plan = LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
            return Ok((plan, schema));
        }
        if s.distinct {
            return Err(HyError::Bind(
                "ORDER BY expressions must appear in the select list when DISTINCT is used".into(),
            ));
        }
        let mut ext_fields = schema.fields().to_vec();
        for (i, h) in hidden.iter().enumerate() {
            ext_fields.push(Field::new(format!("__sort{i}"), h.data_type()));
        }
        let mut ext_exprs = out_exprs;
        ext_exprs.extend(hidden);
        let plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: ext_exprs,
            schema: Arc::new(Schema::new(ext_fields)),
        };
        let plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
        let final_exprs: Vec<ScalarExpr> = schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| ScalarExpr::column(i, f.data_type))
            .collect();
        let plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: final_exprs,
            schema: Arc::clone(&schema),
        };
        Ok((plan, schema))
    }

    // --------------------------------------------------------- FROM items

    fn bind_table_ref(&mut self, tr: &TableRef) -> Result<(LogicalPlan, SchemaRef)> {
        match tr {
            TableRef::Table { name, alias } => {
                let qualifier = alias.as_deref().unwrap_or(name);
                // Working tables shadow CTEs shadow base tables.
                if let Some((_, schema)) = self.working.iter().rev().find(|(n, _)| n == name) {
                    let scope = Arc::new(schema.with_qualifier(qualifier));
                    let plan = LogicalPlan::WorkingTable {
                        name: name.clone(),
                        schema: Arc::clone(schema),
                    };
                    return Ok((plan, scope));
                }
                for scope_map in self.ctes.iter().rev() {
                    if let Some((plan, schema)) = scope_map.get(name) {
                        let scope = Arc::new(schema.with_qualifier(qualifier));
                        return Ok((plan.clone(), scope));
                    }
                }
                // The virtual `hylite` schema of system views.
                if let Some(view) = hylite_common::SystemView::from_name(name) {
                    // Unaliased, `SELECT metrics.name FROM hylite.metrics`
                    // should work, so the default qualifier is the short
                    // view name rather than the dotted one.
                    let qualifier = alias
                        .as_deref()
                        .unwrap_or_else(|| view.name().rsplit('.').next().unwrap_or(name));
                    let scope = Arc::new(view.schema().with_qualifier(qualifier));
                    let plan = LogicalPlan::SystemScan {
                        view,
                        schema: Arc::clone(&scope),
                    };
                    return Ok((plan, scope));
                }
                let t = self.catalog.get_table(name)?;
                let table_schema = Arc::clone(t.read().schema());
                let scope = Arc::new(table_schema.with_qualifier(qualifier));
                let plan = LogicalPlan::TableScan {
                    table: name.clone(),
                    table_schema: Arc::clone(&table_schema),
                    projection: None,
                    filter: None,
                    schema: Arc::clone(&scope),
                };
                Ok((plan, scope))
            }
            TableRef::Subquery { query, alias } => {
                let (plan, schema) = self.bind_query(query)?;
                let scope = match alias {
                    Some(a) => Arc::new(schema.with_qualifier(a)),
                    None => schema,
                };
                Ok((plan, scope))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let joined = Arc::new(ls.join(&rs));
                let condition = match on {
                    Some(e) => Some(bind_predicate(&joined, e)?),
                    None => None,
                };
                let kind = match kind {
                    AstJoinKind::Inner => JoinKind::Inner,
                    AstJoinKind::Left => JoinKind::Left,
                    AstJoinKind::Cross => JoinKind::Cross,
                };
                let plan = LogicalPlan::Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    kind,
                    condition,
                    schema: Arc::clone(&joined),
                };
                Ok((plan, joined))
            }
            TableRef::TableFunction { func, alias } => {
                let (plan, schema) = self.bind_table_func(func)?;
                let scope = match alias {
                    Some(a) => Arc::new(schema.with_qualifier(a)),
                    None => schema,
                };
                Ok((plan, scope))
            }
        }
    }

    fn bind_table_func(&mut self, func: &TableFunc) -> Result<(LogicalPlan, SchemaRef)> {
        match func {
            TableFunc::Iterate {
                init,
                step,
                stop,
                max_iterations,
            } => {
                let (init_plan, init_schema) = self.bind_query(init)?;
                let working_schema = Arc::new(init_schema.without_qualifiers());
                self.working
                    .push(("iterate".into(), Arc::clone(&working_schema)));
                let step_result = self.bind_query(step);
                let stop_result = self.bind_query(stop);
                self.working.pop();
                let (step_plan, step_schema) = step_result?;
                let (stop_plan, _) = stop_result?;
                let step_plan = coerce_plan_to(step_plan, &step_schema, &working_schema)?;
                let init_plan = coerce_plan_to(init_plan, &init_schema, &working_schema)?;
                let max_iterations = match max_iterations {
                    Some(e) => const_usize(e, "ITERATE max iterations")?,
                    None => DEFAULT_MAX_ITERATIONS,
                };
                let plan = LogicalPlan::Iterate {
                    init: Box::new(init_plan),
                    step: Box::new(step_plan),
                    stop: Box::new(stop_plan),
                    max_iterations,
                    schema: Arc::clone(&working_schema),
                };
                Ok((plan, working_schema))
            }
            TableFunc::KMeans {
                data,
                centers,
                distance,
                max_iterations,
            } => {
                let (data_plan, data_schema) = self.bind_numeric_input(data, "KMEANS data")?;
                let (centers_plan, centers_schema) =
                    self.bind_numeric_input(centers, "KMEANS centers")?;
                if data_schema.len() != centers_schema.len() {
                    return Err(HyError::Bind(format!(
                        "KMEANS: data has {} dimensions but centers have {}",
                        data_schema.len(),
                        centers_schema.len()
                    )));
                }
                let lambda = self.bind_distance_lambda(distance, &data_schema, &centers_schema)?;
                let max_iterations = match max_iterations {
                    Some(e) => const_usize(e, "KMEANS max iterations")?,
                    None => DEFAULT_KMEANS_ITERATIONS,
                };
                let mut fields = vec![Field::new("cluster_id", DataType::Int64)];
                fields.extend(
                    data_schema
                        .fields()
                        .iter()
                        .map(|f| Field::new(f.name.clone(), DataType::Float64)),
                );
                fields.push(Field::new("size", DataType::Int64));
                let schema = Arc::new(Schema::new(fields));
                let plan = LogicalPlan::KMeans {
                    data: Box::new(data_plan),
                    centers: Box::new(centers_plan),
                    lambda,
                    max_iterations,
                    schema: Arc::clone(&schema),
                };
                Ok((plan, schema))
            }
            TableFunc::KMeansAssign {
                data,
                centers,
                distance,
            } => {
                let (data_plan, data_schema) =
                    self.bind_numeric_input(data, "KMEANS_ASSIGN data")?;
                let (centers_plan, centers_schema) =
                    self.bind_numeric_input(centers, "KMEANS_ASSIGN centers")?;
                if data_schema.len() != centers_schema.len() {
                    return Err(HyError::Bind(format!(
                        "KMEANS_ASSIGN: data has {} dimensions but centers have {}",
                        data_schema.len(),
                        centers_schema.len()
                    )));
                }
                let lambda = self.bind_distance_lambda(distance, &data_schema, &centers_schema)?;
                let mut fields: Vec<Field> = data_schema
                    .fields()
                    .iter()
                    .map(|f| Field::new(f.name.clone(), DataType::Float64))
                    .collect();
                fields.push(Field::new("cluster_id", DataType::Int64));
                let schema = Arc::new(Schema::new(fields));
                let plan = LogicalPlan::KMeansAssign {
                    data: Box::new(data_plan),
                    centers: Box::new(centers_plan),
                    lambda,
                    schema: Arc::clone(&schema),
                };
                Ok((plan, schema))
            }
            TableFunc::PageRank {
                edges,
                damping,
                epsilon,
                max_iterations,
            } => {
                let (edges_plan, edges_schema) = self.bind_query(edges)?;
                if edges_schema.len() < 2 {
                    return Err(HyError::Bind(
                        "PAGERANK edges input needs (src, dest) columns".into(),
                    ));
                }
                // (src, dest) cast to BIGINT; an optional third column
                // supplies per-edge weights (§4.3's weighted PageRank).
                let weighted = edges_schema.len() >= 3;
                let mut exprs = vec![
                    cast_if_needed(
                        ScalarExpr::column(0, edges_schema.field(0).data_type),
                        DataType::Int64,
                    )?,
                    cast_if_needed(
                        ScalarExpr::column(1, edges_schema.field(1).data_type),
                        DataType::Int64,
                    )?,
                ];
                let mut edge_fields = vec![
                    Field::new("src", DataType::Int64),
                    Field::new("dest", DataType::Int64),
                ];
                if weighted {
                    let wf = edges_schema.field(2);
                    if !wf.data_type.is_numeric() {
                        return Err(HyError::Type(format!(
                            "PAGERANK edge weight column '{}' must be numeric, got {}",
                            wf.name, wf.data_type
                        )));
                    }
                    exprs.push(cast_if_needed(
                        ScalarExpr::column(2, wf.data_type),
                        DataType::Float64,
                    )?);
                    edge_fields.push(Field::new("weight", DataType::Float64));
                }
                let edge_schema = Arc::new(Schema::new(edge_fields));
                let edges_plan = LogicalPlan::Project {
                    input: Box::new(edges_plan),
                    exprs,
                    schema: Arc::clone(&edge_schema),
                };
                let damping = const_f64(damping, "PAGERANK damping")?;
                if !(0.0..=1.0).contains(&damping) {
                    return Err(HyError::Bind(format!(
                        "PAGERANK damping must be in [0, 1], got {damping}"
                    )));
                }
                let epsilon = const_f64(epsilon, "PAGERANK epsilon")?;
                if epsilon < 0.0 {
                    return Err(HyError::Bind(format!(
                        "PAGERANK epsilon must be non-negative, got {epsilon}"
                    )));
                }
                let max_iterations = match max_iterations {
                    Some(e) => const_usize(e, "PAGERANK max iterations")?,
                    None => DEFAULT_PAGERANK_ITERATIONS,
                };
                let schema = Arc::new(Schema::new(vec![
                    Field::new("vertex", DataType::Int64),
                    Field::new("rank", DataType::Float64),
                ]));
                let plan = LogicalPlan::PageRank {
                    edges: Box::new(edges_plan),
                    weighted,
                    damping,
                    epsilon,
                    max_iterations,
                    schema: Arc::clone(&schema),
                };
                Ok((plan, schema))
            }
            TableFunc::NaiveBayesTrain { data, label_column } => {
                let (plan, features, label_field) =
                    self.bind_labeled_input(data, label_column.as_deref(), "NAIVE_BAYES_TRAIN")?;
                let schema = Arc::new(Schema::new(vec![
                    Field::new("class", label_field.data_type),
                    Field::new("attribute", DataType::Varchar),
                    Field::new("prior", DataType::Float64),
                    Field::new("mean", DataType::Float64),
                    Field::new("stddev", DataType::Float64),
                ]));
                let plan = LogicalPlan::NaiveBayesTrain {
                    data: Box::new(plan),
                    feature_names: features,
                    schema: Arc::clone(&schema),
                };
                Ok((plan, schema))
            }
            TableFunc::ClassStats { data, label_column } => {
                let (plan, features, label_field) =
                    self.bind_labeled_input(data, label_column.as_deref(), "CLASS_STATS")?;
                let schema = Arc::new(Schema::new(vec![
                    Field::new("class", label_field.data_type),
                    Field::new("attribute", DataType::Varchar),
                    Field::new("count", DataType::Int64),
                    Field::new("mean", DataType::Float64),
                    Field::new("stddev", DataType::Float64),
                    Field::new("min", DataType::Float64),
                    Field::new("max", DataType::Float64),
                ]));
                let plan = LogicalPlan::ClassStats {
                    data: Box::new(plan),
                    feature_names: features,
                    schema: Arc::clone(&schema),
                };
                Ok((plan, schema))
            }
            TableFunc::NaiveBayesPredict { model, data } => {
                let (model_plan, model_schema) = self.bind_query(model)?;
                if model_schema.len() != 5 {
                    return Err(HyError::Bind(format!(
                        "NAIVE_BAYES_PREDICT model must have 5 columns \
                         (class, attribute, prior, mean, stddev), got {}",
                        model_schema.len()
                    )));
                }
                let (data_plan, data_schema) =
                    self.bind_numeric_input(data, "NAIVE_BAYES_PREDICT data")?;
                let feature_names: Vec<String> = data_schema
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect();
                let mut fields: Vec<Field> = data_schema
                    .fields()
                    .iter()
                    .map(|f| Field::new(f.name.clone(), DataType::Float64))
                    .collect();
                fields.push(Field::new("label", model_schema.field(0).data_type));
                let schema = Arc::new(Schema::new(fields));
                let plan = LogicalPlan::NaiveBayesPredict {
                    model: Box::new(model_plan),
                    data: Box::new(data_plan),
                    feature_names,
                    schema: Arc::clone(&schema),
                };
                Ok((plan, schema))
            }
        }
    }

    /// Bind an analytics data subquery whose columns must all be numeric;
    /// wraps it in a cast-to-DOUBLE projection.
    fn bind_numeric_input(&mut self, q: &Query, what: &str) -> Result<(LogicalPlan, SchemaRef)> {
        let (plan, schema) = self.bind_query(q)?;
        if schema.is_empty() {
            return Err(HyError::Bind(format!(
                "{what} must have at least one column"
            )));
        }
        let mut exprs = Vec::with_capacity(schema.len());
        for (i, f) in schema.fields().iter().enumerate() {
            if !f.data_type.is_numeric() && f.data_type != DataType::Null {
                return Err(HyError::Type(format!(
                    "{what}: column '{}' must be numeric, got {}",
                    f.name, f.data_type
                )));
            }
            exprs.push(cast_if_needed(
                ScalarExpr::column(i, f.data_type),
                DataType::Float64,
            )?);
        }
        let out = Arc::new(Schema::new(
            schema
                .fields()
                .iter()
                .map(|f| Field::new(f.name.clone(), DataType::Float64))
                .collect(),
        ));
        let all_double = schema
            .fields()
            .iter()
            .all(|f| f.data_type == DataType::Float64);
        let plan = if all_double {
            plan
        } else {
            LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: Arc::clone(&out),
            }
        };
        Ok((plan, out))
    }

    /// Bind a labeled analytics input: numeric feature columns followed by
    /// the label column (moved last). Returns (plan, feature names, label).
    fn bind_labeled_input(
        &mut self,
        q: &Query,
        label_column: Option<&str>,
        what: &str,
    ) -> Result<(LogicalPlan, Vec<String>, Field)> {
        let (plan, schema) = self.bind_query(q)?;
        if schema.len() < 2 {
            return Err(HyError::Bind(format!(
                "{what} needs at least one feature column and a label column"
            )));
        }
        let label_idx = match label_column {
            Some(name) => schema.index_of(name)?,
            None => schema.len() - 1,
        };
        let label_field = schema.field(label_idx).clone();
        match label_field.data_type {
            DataType::Int64 | DataType::Varchar | DataType::Bool => {}
            other => {
                return Err(HyError::Type(format!(
                    "{what}: label column '{}' must be BIGINT, VARCHAR or BOOLEAN, got {other}",
                    label_field.name
                )))
            }
        }
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        let mut feature_names = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            if i == label_idx {
                continue;
            }
            if !f.data_type.is_numeric() && f.data_type != DataType::Null {
                return Err(HyError::Type(format!(
                    "{what}: feature column '{}' must be numeric, got {}",
                    f.name, f.data_type
                )));
            }
            exprs.push(cast_if_needed(
                ScalarExpr::column(i, f.data_type),
                DataType::Float64,
            )?);
            fields.push(Field::new(f.name.clone(), DataType::Float64));
            feature_names.push(f.name.clone());
        }
        exprs.push(ScalarExpr::column(label_idx, label_field.data_type));
        fields.push(Field::new(label_field.name.clone(), label_field.data_type));
        let out = Arc::new(Schema::new(fields));
        let plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: out,
        };
        Ok((plan, feature_names, label_field))
    }

    /// Bind the optional distance lambda against (data, centers) schemas.
    fn bind_distance_lambda(
        &self,
        lambda: &Option<Lambda>,
        data_schema: &Schema,
        centers_schema: &Schema,
    ) -> Result<Option<BoundLambda>> {
        let Some(l) = lambda else {
            return Ok(None);
        };
        if l.params.len() != 2 {
            return Err(HyError::Bind(format!(
                "distance lambda must have two parameters, got {}",
                l.params.len()
            )));
        }
        let left = data_schema.with_qualifier(&l.params[0]);
        let right = centers_schema.with_qualifier(&l.params[1]);
        let combined = left.join(&right);
        let body = ExprBinder::new(&combined).bind(&l.body)?;
        if !body.data_type().is_numeric() {
            return Err(HyError::Type(format!(
                "distance lambda must return a numeric value, got {}",
                body.data_type()
            )));
        }
        Ok(Some(BoundLambda::new(
            data_schema.len(),
            centers_schema.len(),
            body,
        )?))
    }
}

// ------------------------------------------------------------------ helpers

/// `ORDER BY <k>` ordinal: Some(zero-based index) for integer literals.
fn ordinal(e: &Expr, width: usize) -> Result<Option<usize>> {
    if let Expr::Literal(Value::Int(k)) = e {
        if *k < 1 || *k as usize > width {
            return Err(HyError::Bind(format!(
                "ORDER BY position {k} is out of range"
            )));
        }
        return Ok(Some((*k - 1) as usize));
    }
    Ok(None)
}

/// Bind ORDER BY keys against a result schema (used for UNION/VALUES
/// bodies, where only output columns can be referenced).
fn bind_order_keys_against_output(
    schema: &SchemaRef,
    order_by: &[hylite_sql::OrderByExpr],
) -> Result<Vec<SortKey>> {
    let binder = ExprBinder::new(schema);
    order_by
        .iter()
        .map(|ob| {
            let expr = match ordinal(&ob.expr, schema.len())? {
                Some(k) => ScalarExpr::column(k, schema.field(k).data_type),
                None => binder.bind(&ob.expr)?,
            };
            Ok(SortKey { expr, asc: ob.asc })
        })
        .collect()
}

/// Bind a boolean predicate against a schema.
fn bind_predicate(schema: &Schema, e: &Expr) -> Result<ScalarExpr> {
    let bound = ExprBinder::new(schema).bind(e)?;
    match bound.data_type() {
        DataType::Bool | DataType::Null => Ok(bound),
        other => Err(HyError::Type(format!(
            "predicate must be boolean, got {other}"
        ))),
    }
}

/// Wrap in a cast when types differ.
fn cast_if_needed(expr: ScalarExpr, target: DataType) -> Result<ScalarExpr> {
    if expr.data_type() == target {
        Ok(expr)
    } else {
        Ok(ScalarExpr::Cast {
            input: Box::new(expr),
            target,
        })
    }
}

/// Coerce a plan's columns to `target` types with a projection (no-op when
/// already aligned).
fn coerce_plan_to(plan: LogicalPlan, from: &Schema, target: &SchemaRef) -> Result<LogicalPlan> {
    if from.len() != target.len() {
        return Err(HyError::Bind(format!(
            "relation has {} columns, expected {}",
            from.len(),
            target.len()
        )));
    }
    let aligned = from
        .fields()
        .iter()
        .zip(target.fields())
        .all(|(a, b)| a.data_type == b.data_type);
    if aligned {
        return Ok(plan);
    }
    let exprs: Vec<ScalarExpr> = from
        .fields()
        .iter()
        .zip(target.fields())
        .enumerate()
        .map(|(i, (f, t))| {
            if !f.data_type.coercible_to(t.data_type) {
                return Err(HyError::Type(format!(
                    "cannot coerce column '{}' from {} to {}",
                    f.name, f.data_type, t.data_type
                )));
            }
            cast_if_needed(ScalarExpr::column(i, f.data_type), t.data_type)
        })
        .collect::<Result<_>>()?;
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Arc::clone(target),
    })
}

/// Apply CTE column aliases to a schema (stripping qualifiers).
fn apply_cte_aliases(schema: &Schema, cte: &Cte) -> Result<Schema> {
    let base = schema.without_qualifiers();
    match &cte.columns {
        None => Ok(base),
        Some(names) => {
            if names.len() != base.len() {
                return Err(HyError::Bind(format!(
                    "CTE '{}' declares {} columns but its query produces {}",
                    cte.name,
                    names.len(),
                    base.len()
                )));
            }
            Ok(Schema::new(
                base.fields()
                    .iter()
                    .zip(names)
                    .map(|(f, n)| Field::new(n.clone(), f.data_type))
                    .collect(),
            ))
        }
    }
}

/// Fold a constant AST expression to `usize`.
fn const_usize(e: &Expr, what: &str) -> Result<usize> {
    let v = const_value(e, what)?;
    match v {
        Value::Int(k) if k >= 0 => Ok(k as usize),
        other => Err(HyError::Bind(format!(
            "{what} must be a non-negative integer, got {other}"
        ))),
    }
}

/// Fold a constant AST expression to `f64`.
fn const_f64(e: &Expr, what: &str) -> Result<f64> {
    let v = const_value(e, what)?;
    v.as_float()
        .map_err(|_| HyError::Bind(format!("{what} must be numeric, got {v}")))
}

fn const_value(e: &Expr, what: &str) -> Result<Value> {
    let empty = Schema::empty();
    let bound = ExprBinder::new(&empty)
        .bind(e)
        .map_err(|_| HyError::Bind(format!("{what} must be a constant expression")))?;
    bound.eval_row(&Row::default())
}

/// Does the query reference `name` as a table anywhere (for detecting
/// self-recursive CTEs)?
fn query_references(q: &Query, name: &str) -> bool {
    fn set_expr_refs(s: &SetExpr, name: &str) -> bool {
        match s {
            SetExpr::Select(sel) => sel.from.iter().any(|t| table_ref_refs(t, name)),
            SetExpr::Union { left, right, .. } => {
                set_expr_refs(left, name) || set_expr_refs(right, name)
            }
            SetExpr::Values(_) => false,
            SetExpr::Query(q) => query_references(q, name),
        }
    }
    fn table_ref_refs(t: &TableRef, name: &str) -> bool {
        match t {
            TableRef::Table { name: n, .. } => n == name,
            TableRef::Subquery { query, .. } => query_references(query, name),
            TableRef::Join { left, right, .. } => {
                table_ref_refs(left, name) || table_ref_refs(right, name)
            }
            TableRef::TableFunction { .. } => false,
        }
    }
    set_expr_refs(&q.body, name)
}

/// Output column name for a projection item.
fn output_name(e: &Expr, alias: Option<&str>, position: usize) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("column{}", position + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_sql::parse_statement;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Float64),
                Field::new("s", DataType::Varchar),
            ]),
        )
        .unwrap();
        cat.create_table(
            "edges",
            Schema::new(vec![
                Field::new("src", DataType::Int64),
                Field::new("dest", DataType::Int64),
            ]),
        )
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<BoundStatement> {
        let cat = catalog();
        let stmt = parse_statement(sql)?;
        Binder::new(&cat).bind_statement(&stmt)
    }

    fn bind_plan(sql: &str) -> LogicalPlan {
        match bind(sql).unwrap() {
            BoundStatement::Query(p) => p,
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn select_star_expands() {
        let plan = bind_plan("SELECT * FROM t");
        assert_eq!(plan.schema().len(), 3);
        assert_eq!(plan.schema().field(0).name, "a");
    }

    #[test]
    fn aliases_resolve() {
        let plan = bind_plan("SELECT x.a AS renamed FROM t x WHERE x.b > 0");
        assert_eq!(plan.schema().field(0).name, "renamed");
        assert!(bind("SELECT t.a FROM t x").is_err(), "alias replaces name");
    }

    #[test]
    fn ambiguity_detected() {
        let err = bind("SELECT a FROM t, t u").unwrap_err();
        assert!(matches!(err, HyError::Bind(_)), "{err}");
    }

    #[test]
    fn grouped_plan_shape() {
        let plan = bind_plan("SELECT a, sum(b) FROM t GROUP BY a HAVING count(*) > 1");
        // Project over Filter(HAVING) over Aggregate.
        let LogicalPlan::Project { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Filter { input, .. } = *input else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn order_by_hidden_column() {
        // b is not projected; it must ride along as a hidden sort column
        // and be dropped after the sort.
        let plan = bind_plan("SELECT a FROM t ORDER BY b DESC");
        assert_eq!(plan.schema().len(), 1);
        let LogicalPlan::Project { input, .. } = plan else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn iterate_binds_working_table() {
        let plan = bind_plan(
            "SELECT * FROM ITERATE((SELECT 1 x), (SELECT x + 1 FROM iterate), \
             (SELECT x FROM iterate WHERE x > 3))",
        );
        let LogicalPlan::Iterate { step, .. } = plan else {
            panic!()
        };
        // `iterate` must not leak outside the construct.
        let _ = step;
        assert!(
            bind("SELECT * FROM iterate").is_err(),
            "working table invisible outside ITERATE"
        );
    }

    #[test]
    fn kmeans_validations() {
        assert!(matches!(
            bind("SELECT * FROM KMEANS((SELECT s FROM t), (SELECT s FROM t), 3)"),
            Err(HyError::Type(_))
        ));
        assert!(matches!(
            bind("SELECT * FROM KMEANS((SELECT a, b FROM t), (SELECT a FROM t), 3)"),
            Err(HyError::Bind(_))
        ));
        // Lambda referencing a nonexistent attribute.
        assert!(bind(
            "SELECT * FROM KMEANS((SELECT a FROM t), (SELECT a FROM t), \
             LAMBDA(p, q) p.nope - q.a, 3)"
        )
        .is_err());
        // Non-numeric lambda body.
        assert!(bind(
            "SELECT * FROM KMEANS((SELECT a FROM t), (SELECT a FROM t), \
             LAMBDA(p, q) p.a > q.a, 3)"
        )
        .is_err());
    }

    #[test]
    fn pagerank_validations() {
        assert!(matches!(
            bind("SELECT * FROM PAGERANK((SELECT src FROM edges), 0.85, 0.0)"),
            Err(HyError::Bind(_))
        ));
        assert!(bind("SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 1.5, 0.0)").is_err());
        assert!(bind("SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, -1.0)").is_err());
        let plan = bind_plan("SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0)");
        assert!(matches!(
            plan,
            LogicalPlan::PageRank {
                weighted: false,
                ..
            }
        ));
        let plan =
            bind_plan("SELECT * FROM PAGERANK((SELECT src, dest, 1.0 w FROM edges), 0.85, 0.0)");
        assert!(matches!(plan, LogicalPlan::PageRank { weighted: true, .. }));
    }

    #[test]
    fn nb_label_column_selection() {
        let plan = bind_plan("SELECT * FROM NAIVE_BAYES_TRAIN((SELECT b, a FROM t), a)");
        let LogicalPlan::NaiveBayesTrain { feature_names, .. } = plan else {
            panic!()
        };
        assert_eq!(feature_names, vec!["b".to_string()]);
        // VARCHAR feature rejected.
        assert!(matches!(
            bind("SELECT * FROM NAIVE_BAYES_TRAIN((SELECT s, a FROM t), a)"),
            Err(HyError::Type(_))
        ));
        // Float label rejected.
        assert!(matches!(
            bind("SELECT * FROM NAIVE_BAYES_TRAIN((SELECT a, b FROM t), b)"),
            Err(HyError::Type(_))
        ));
    }

    #[test]
    fn insert_binding_checks() {
        assert!(matches!(
            bind("INSERT INTO t (a) VALUES (1, 2)"),
            Err(HyError::Bind(_))
        ));
        let BoundStatement::Insert { source, .. } =
            bind("INSERT INTO t (s, a) VALUES ('x', 1)").unwrap()
        else {
            panic!()
        };
        // Source reordered/padded to the table's 3 columns.
        assert_eq!(source.schema().len(), 3);
    }

    #[test]
    fn update_binds_identity_for_unassigned() {
        let BoundStatement::Update { exprs, .. } =
            bind("UPDATE t SET b = b + 1 WHERE a = 1").unwrap()
        else {
            panic!()
        };
        assert_eq!(exprs.len(), 3);
        assert_eq!(exprs[0].to_string(), "#0", "a untouched");
        assert_eq!(exprs[2].to_string(), "#2", "s untouched");
    }

    #[test]
    fn recursive_cte_requires_union() {
        let err =
            bind("WITH RECURSIVE r (n) AS (SELECT n + 1 FROM r) SELECT * FROM r").unwrap_err();
        assert!(matches!(err, HyError::Bind(_)));
    }

    #[test]
    fn values_types_unify() {
        let plan = bind_plan("VALUES (1, 'a'), (2.5, 'b')");
        assert_eq!(plan.schema().field(0).data_type, DataType::Float64);
        assert!(bind("VALUES (1), (1, 2)").is_err(), "inconsistent arity");
        assert!(
            bind("VALUES (1, 'a'), ('b', 'c')").is_err(),
            "no common type"
        );
    }
}
