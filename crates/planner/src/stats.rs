//! Cardinality estimation for logical plans.
//!
//! §5.2 of the paper discusses why analytics operators are hard for a
//! cardinality estimator; the estimates here encode the special cases the
//! paper calls out: k-Means emits exactly k rows (the centers),
//! KMEANS_ASSIGN and the ITERATE operator preserve their input
//! cardinality, PageRank emits one row per vertex (estimated from the
//! edge count), and recursive CTEs grow with unknown depth (we assume a
//! small constant factor, as real optimizers do).

use crate::logical::{JoinKind, LogicalPlan};

/// Default filter selectivity when nothing better is known.
pub const FILTER_SELECTIVITY: f64 = 0.25;

/// Assumed growth factor for recursive CTEs (unknown recursion depth).
pub const RECURSION_GROWTH: f64 = 10.0;

/// Estimate the output row count of a plan. `table_rows` supplies base
/// table cardinalities (usually from the catalog).
pub fn estimate_rows(plan: &LogicalPlan, table_rows: &dyn Fn(&str) -> usize) -> f64 {
    match plan {
        LogicalPlan::TableScan { table, filter, .. } => {
            let base = table_rows(table) as f64;
            if filter.is_some() {
                base * FILTER_SELECTIVITY
            } else {
                base
            }
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        // System views are tiny virtual relations (one row per metric /
        // connection / replica); a small constant keeps them off the
        // build side of nothing important.
        LogicalPlan::SystemScan { .. } => 16.0,
        LogicalPlan::Empty { .. } => 1.0,
        LogicalPlan::Filter { input, .. } => estimate_rows(input, table_rows) * FILTER_SELECTIVITY,
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(input, table_rows)
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let inner = estimate_rows(input, table_rows);
            let after_offset = (inner - *offset as f64).max(0.0);
            match limit {
                Some(l) => after_offset.min(*l as f64),
                None => after_offset,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            ..
        } => {
            let l = estimate_rows(left, table_rows);
            let r = estimate_rows(right, table_rows);
            match (kind, condition) {
                (JoinKind::Cross, _) | (_, None) => l * r,
                // Equi-join heuristic: |L⋈R| ≈ max(L, R).
                _ => l.max(r),
            }
        }
        LogicalPlan::Aggregate {
            input, group_exprs, ..
        } => {
            let inner = estimate_rows(input, table_rows);
            if group_exprs.is_empty() {
                1.0
            } else {
                // Square-root heuristic for distinct groups.
                inner.sqrt().max(1.0)
            }
        }
        LogicalPlan::Union { inputs, all, .. } => {
            let sum: f64 = inputs.iter().map(|i| estimate_rows(i, table_rows)).sum();
            if *all {
                sum
            } else {
                sum * 0.5
            }
        }
        LogicalPlan::Distinct { input } => estimate_rows(input, table_rows) * 0.5,
        LogicalPlan::WorkingTable { .. } => 1000.0,
        LogicalPlan::RecursiveCte { init, .. } => {
            estimate_rows(init, table_rows) * RECURSION_GROWTH
        }
        // The paper's special cases:
        // ITERATE preserves the working-table cardinality (non-appending).
        LogicalPlan::Iterate { init, .. } => estimate_rows(init, table_rows),
        // k-Means outputs exactly the centers.
        LogicalPlan::KMeans { centers, .. } => estimate_rows(centers, table_rows),
        // Assignment preserves the data cardinality.
        LogicalPlan::KMeansAssign { data, .. } => estimate_rows(data, table_rows),
        // PageRank outputs one row per vertex; vertices ≈ edges / avg-deg.
        LogicalPlan::PageRank { edges, .. } => (estimate_rows(edges, table_rows) / 10.0).max(1.0),
        // NB model: #classes × #attributes — both small; use a constant.
        LogicalPlan::NaiveBayesTrain { .. } | LogicalPlan::ClassStats { .. } => 32.0,
        LogicalPlan::NaiveBayesPredict { data, .. } => estimate_rows(data, table_rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field, Schema};
    use hylite_expr::ScalarExpr;
    use std::sync::Arc;

    fn scan(name: &str) -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Float64)]));
        LogicalPlan::TableScan {
            table: name.into(),
            table_schema: Arc::clone(&schema),
            projection: None,
            filter: None,
            schema,
        }
    }

    fn rows(name: &str) -> usize {
        match name {
            "big" => 1_000_000,
            "small" => 10,
            _ => 0,
        }
    }

    #[test]
    fn scan_and_filter() {
        assert_eq!(estimate_rows(&scan("big"), &rows), 1_000_000.0);
        let f = LogicalPlan::Filter {
            input: Box::new(scan("big")),
            predicate: ScalarExpr::literal(true),
        };
        assert_eq!(estimate_rows(&f, &rows), 250_000.0);
    }

    #[test]
    fn kmeans_outputs_centers() {
        let schema = Arc::new(Schema::empty());
        let plan = LogicalPlan::KMeans {
            data: Box::new(scan("big")),
            centers: Box::new(scan("small")),
            lambda: None,
            max_iterations: 3,
            schema,
        };
        assert_eq!(estimate_rows(&plan, &rows), 10.0);
    }

    #[test]
    fn iterate_preserves_cardinality() {
        let schema = Arc::new(Schema::empty());
        let plan = LogicalPlan::Iterate {
            init: Box::new(scan("small")),
            step: Box::new(scan("small")),
            stop: Box::new(scan("small")),
            max_iterations: 100,
            schema,
        };
        assert_eq!(estimate_rows(&plan, &rows), 10.0);
    }

    #[test]
    fn limit_caps() {
        let plan = LogicalPlan::Limit {
            input: Box::new(scan("big")),
            limit: Some(7),
            offset: 0,
        };
        assert_eq!(estimate_rows(&plan, &rows), 7.0);
    }
}
