//! [`Chunk`] — a batch of rows in columnar form, the unit of data flow
//! between physical operators.
//!
//! Columns are stored behind `Arc`s: cloning a chunk, projecting a column
//! subset, or re-scanning a working table is a reference-count bump, not
//! a data copy. Mutating operations (`append`) copy-on-write.

use std::sync::Arc;

use crate::{Bitmap, ColumnVector, DataType, HyError, Result, Row, Value};

/// A columnar batch of rows. All columns have the same length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    columns: Vec<Arc<ColumnVector>>,
    /// Cached row count. Kept explicitly so zero-column chunks (e.g. from
    /// `SELECT COUNT(*)` pipelines) still know their cardinality.
    len: usize,
}

impl Chunk {
    /// Chunk from owned columns; all must share one length.
    pub fn new(columns: Vec<ColumnVector>) -> Chunk {
        Chunk::from_arc_columns(columns.into_iter().map(Arc::new).collect())
    }

    /// Chunk from shared columns; all must share one length.
    pub fn from_arc_columns(columns: Vec<Arc<ColumnVector>>) -> Chunk {
        let len = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), len, "column {i} length mismatch in chunk");
        }
        Chunk { columns, len }
    }

    /// A chunk with zero columns but a known row count.
    pub fn zero_column(len: usize) -> Chunk {
        Chunk {
            columns: vec![],
            len,
        }
    }

    /// An empty chunk with one empty column per type.
    pub fn empty(types: &[DataType]) -> Chunk {
        Chunk {
            columns: types
                .iter()
                .map(|&t| Arc::new(ColumnVector::empty(t)))
                .collect(),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The shared columns in order.
    pub fn columns(&self) -> &[Arc<ColumnVector>] {
        &self.columns
    }

    /// Approximate heap footprint of the chunk's columns in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> &ColumnVector {
        &self.columns[i]
    }

    /// Shared handle to column `i` (no copy).
    pub fn column_arc(&self, i: usize) -> Arc<ColumnVector> {
        Arc::clone(&self.columns[i])
    }

    /// Consume into owned column vectors (copies only shared columns).
    pub fn into_columns(self) -> Vec<ColumnVector> {
        self.columns
            .into_iter()
            .map(|c| Arc::try_unwrap(c).unwrap_or_else(|a| (*a).clone()))
            .collect()
    }

    /// Cheap column-subset projection (Arc bumps, no data copy).
    pub fn project(&self, indices: &[usize]) -> Chunk {
        Chunk {
            columns: indices
                .iter()
                .map(|&i| Arc::clone(&self.columns[i]))
                .collect(),
            len: self.len,
        }
    }

    /// Materialize row `i` as a vector of values.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// All rows materialized (test/diagnostic helper, not a hot path).
    pub fn rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Keep only selected rows.
    pub fn filter(&self, selection: &Bitmap) -> Chunk {
        let count = selection.count_ones();
        if count == self.len {
            return self.clone();
        }
        Chunk {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.filter(selection)))
                .collect(),
            len: count,
        }
    }

    /// Gather rows by index.
    pub fn take(&self, indices: &[usize]) -> Chunk {
        Chunk {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.take(indices)))
                .collect(),
            len: indices.len(),
        }
    }

    /// Contiguous window `[offset, offset+len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Chunk {
        assert!(offset + len <= self.len, "slice out of range");
        if offset == 0 && len == self.len {
            return self.clone();
        }
        Chunk {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.slice(offset, len)))
                .collect(),
            len,
        }
    }

    /// Append all rows of `other` (schemas must be type-compatible).
    /// Copy-on-write: shared columns are cloned before mutation.
    pub fn append(&mut self, other: &Chunk) -> Result<()> {
        if self.columns.len() != other.columns.len() {
            return Err(HyError::Internal(format!(
                "appending chunk with {} columns to chunk with {}",
                other.columns.len(),
                self.columns.len()
            )));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            Arc::make_mut(a).append(b)?;
        }
        self.len += other.len;
        Ok(())
    }

    /// Concatenate many chunks into one (types taken from `types` so that
    /// an empty input list still yields a well-formed empty chunk).
    pub fn concat(types: &[DataType], chunks: &[Chunk]) -> Result<Chunk> {
        if types.is_empty() {
            return Ok(Chunk::zero_column(chunks.iter().map(Chunk::len).sum()));
        }
        // Single-chunk fast path: share, don't copy.
        if chunks.len() == 1 {
            return Ok(chunks[0].clone());
        }
        let mut out = Chunk::empty(types);
        for c in chunks {
            out.append(c)?;
        }
        Ok(out)
    }

    /// Build a single chunk from row values, with one declared type per
    /// column. Convenient for tests and small literals (`VALUES` lists).
    pub fn from_rows(types: &[DataType], rows: &[Vec<Value>]) -> Result<Chunk> {
        let mut cols: Vec<ColumnVector> = types.iter().map(|&t| ColumnVector::empty(t)).collect();
        for row in rows {
            if row.len() != types.len() {
                return Err(HyError::Internal(format!(
                    "row arity {} does not match {} columns",
                    row.len(),
                    types.len()
                )));
            }
            for (c, v) in cols.iter_mut().zip(row) {
                c.push_value(v)?;
            }
        }
        let mut chunk = Chunk::new(cols);
        chunk.len = rows.len();
        Ok(chunk)
    }

    /// Pretty-print as an ASCII table (diagnostics / examples).
    pub fn to_table_string(&self, headers: &[String]) -> String {
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = (0..self.len)
            .map(|i| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| {
                        let s = col.value(i).to_string();
                        if c < widths.len() {
                            widths[c] = widths[c].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                let w = widths.get(c).copied().unwrap_or(cell.len());
                line.push_str(&format!(" {cell:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(headers, &widths));
        let sep: String = format!(
            "|{}\n",
            widths
                .iter()
                .map(|w| format!("{}|", "-".repeat(w + 2)))
                .collect::<String>()
        );
        out.push_str(&sep);
        for r in &rendered {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Chunk {
        Chunk::new(vec![
            ColumnVector::from_i64(vec![1, 2, 3]),
            ColumnVector::from_str(vec!["a", "b", "c"]),
        ])
    }

    #[test]
    fn construction_checks_lengths() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_columns(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        Chunk::new(vec![
            ColumnVector::from_i64(vec![1]),
            ColumnVector::from_i64(vec![1, 2]),
        ]);
    }

    #[test]
    fn row_materialization() {
        let c = sample();
        assert_eq!(c.row(1).values(), &[Value::Int(2), Value::from("b")]);
    }

    #[test]
    fn filter_take_slice() {
        let c = sample();
        let sel: Bitmap = [true, false, true].into_iter().collect();
        assert_eq!(c.filter(&sel).len(), 2);
        assert_eq!(c.take(&[2, 0]).row(0).values()[0], Value::Int(3));
        let s = c.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0).values()[0], Value::Int(2));
    }

    #[test]
    fn project_shares_columns() {
        let c = sample();
        let p = c.project(&[1]);
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.len(), 3);
        assert!(Arc::ptr_eq(&c.columns()[1], &p.columns()[0]));
    }

    #[test]
    fn clone_is_shallow_append_is_cow() {
        let a = sample();
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.columns()[0], &b.columns()[0]));
        b.append(&sample()).unwrap();
        assert_eq!(a.len(), 3, "original untouched by COW append");
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn append_and_concat() {
        let mut a = sample();
        let b = sample();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);
        let types = [DataType::Int64, DataType::Varchar];
        let all = Chunk::concat(&types, &[sample(), sample(), sample()]).unwrap();
        assert_eq!(all.len(), 9);
        let none = Chunk::concat(&types, &[]).unwrap();
        assert_eq!(none.len(), 0);
        assert_eq!(none.num_columns(), 2);
    }

    #[test]
    fn zero_column_chunks_track_len() {
        let mut z = Chunk::zero_column(5);
        assert_eq!(z.len(), 5);
        z.append(&Chunk::zero_column(2)).unwrap();
        assert_eq!(z.len(), 7);
        let cat = Chunk::concat(&[], &[Chunk::zero_column(3), Chunk::zero_column(4)]).unwrap();
        assert_eq!(cat.len(), 7);
    }

    #[test]
    fn from_rows_builds_typed_columns() {
        let c = Chunk::from_rows(
            &[DataType::Float64, DataType::Bool],
            &[
                vec![Value::Int(1), Value::Bool(true)],
                vec![Value::Null, Value::Bool(false)],
            ],
        )
        .unwrap();
        assert_eq!(c.column(0).data_type(), DataType::Float64);
        assert!(c.column(0).value(1).is_null());
    }

    #[test]
    fn from_rows_arity_mismatch() {
        assert!(Chunk::from_rows(&[DataType::Int64], &[vec![]]).is_err());
    }

    #[test]
    fn table_string_renders() {
        let c = sample();
        let s = c.to_table_string(&["id".into(), "name".into()]);
        assert!(s.contains("id"));
        assert!(s.contains("| 3"));
    }
}
