//! Row-at-a-time view used at API boundaries and in the UDF baseline.

use std::fmt;

use crate::{Result, Value};

/// A materialized row of scalar values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the value list.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-column row.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Typed accessor: `i64` at column `i`.
    pub fn int(&self, i: usize) -> Result<i64> {
        self.values[i].as_int()
    }

    /// Typed accessor: `f64` at column `i` (accepts ints).
    pub fn float(&self, i: usize) -> Result<f64> {
        self.values[i].as_float()
    }

    /// Typed accessor: `&str` at column `i`.
    pub fn str(&self, i: usize) -> Result<&str> {
        self.values[i].as_str()
    }

    /// Typed accessor: `bool` at column `i`.
    pub fn bool(&self, i: usize) -> Result<bool> {
        self.values[i].as_bool()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Row::new(vec![Value::Int(1), Value::Float(2.5), Value::from("x")]);
        assert_eq!(r.int(0).unwrap(), 1);
        assert_eq!(r.float(0).unwrap(), 1.0);
        assert_eq!(r.float(1).unwrap(), 2.5);
        assert_eq!(r.str(2).unwrap(), "x");
        assert!(r.int(2).is_err());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn display() {
        let r = Row::new(vec![Value::Int(1), Value::Null]);
        assert_eq!(r.to_string(), "(1, NULL)");
    }
}
