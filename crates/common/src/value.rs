//! Scalar values used at row-at-a-time boundaries (literals, model
//! parameters, result extraction). Hot paths never touch `Value`; they use
//! [`crate::ColumnVector`] instead.

use std::cmp::Ordering;
use std::fmt;

use crate::{DataType, HyError, Result};

/// A single dynamically-typed SQL scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The logical type of this value (`Null` for NULL).
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Str(_) => DataType::Varchar,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, coercing nothing. NULL and other types error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(HyError::Type(format!("expected BIGINT, got {other}"))),
        }
    }

    /// Extract an `f64`, accepting integer values (widening) too.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(HyError::Type(format!("expected DOUBLE, got {other}"))),
        }
    }

    /// Extract a `bool`.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(HyError::Type(format!("expected BOOLEAN, got {other}"))),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(HyError::Type(format!("expected VARCHAR, got {other}"))),
        }
    }

    /// Cast to the given type following SQL cast semantics.
    /// NULL casts to NULL of any type.
    pub fn cast_to(&self, target: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let fail = || {
            Err(HyError::Type(format!(
                "cannot cast {} to {target}",
                self.data_type()
            )))
        };
        match target {
            DataType::Int64 => match self {
                Value::Int(v) => Ok(Value::Int(*v)),
                Value::Float(v) => {
                    if v.is_finite() && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                        Ok(Value::Int(*v as i64))
                    } else {
                        Err(HyError::Execution(format!("float {v} out of BIGINT range")))
                    }
                }
                Value::Bool(v) => Ok(Value::Int(i64::from(*v))),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| HyError::Execution(format!("cannot parse '{s}' as BIGINT"))),
                Value::Null => unreachable!(),
            },
            DataType::Float64 => match self {
                Value::Int(v) => Ok(Value::Float(*v as f64)),
                Value::Float(v) => Ok(Value::Float(*v)),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| HyError::Execution(format!("cannot parse '{s}' as DOUBLE"))),
                _ => fail(),
            },
            DataType::Bool => match self {
                Value::Bool(v) => Ok(Value::Bool(*v)),
                Value::Int(v) => Ok(Value::Bool(*v != 0)),
                Value::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                    "true" | "t" | "1" => Ok(Value::Bool(true)),
                    "false" | "f" | "0" => Ok(Value::Bool(false)),
                    _ => Err(HyError::Execution(format!("cannot parse '{s}' as BOOLEAN"))),
                },
                _ => fail(),
            },
            DataType::Varchar => Ok(Value::Str(self.to_string())),
            DataType::Null => fail(),
        }
    }

    /// SQL comparison with NULL ordering: NULL sorts first and compares
    /// equal to NULL. Used by ORDER BY and sort-based operators, where a
    /// total order is required (unlike `=`/`<` predicate semantics which
    /// are three-valued and handled in the expression layer).
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or_else(|| {
                // Order NaN last for determinism.
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => Ordering::Equal,
                }
            }),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Less),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Greater),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Heterogeneous comparisons should be prevented by the binder;
            // fall back to type order for determinism.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Bool(v) => f.write_str(if *v { "true" } else { "false" }),
            Value::Str(v) => f.write_str(v),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Null.data_type(), DataType::Null);
        assert_eq!(Value::Int(1).data_type(), DataType::Int64);
        assert_eq!(Value::Float(1.5).data_type(), DataType::Float64);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::from("x").data_type(), DataType::Varchar);
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Int(3).cast_to(DataType::Float64).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.9).cast_to(DataType::Int64).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::from("42").cast_to(DataType::Int64).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::from(" true ").cast_to(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Int(7).cast_to(DataType::Varchar).unwrap(),
            Value::from("7")
        );
        assert_eq!(Value::Null.cast_to(DataType::Int64).unwrap(), Value::Null);
        assert!(Value::from("abc").cast_to(DataType::Int64).is_err());
        assert!(Value::Float(f64::INFINITY)
            .cast_to(DataType::Int64)
            .is_err());
    }

    #[test]
    fn sort_order_nulls_first() {
        let mut vals = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(vals, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn mixed_numeric_compare() {
        assert_eq!(Value::Int(2).sort_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).sort_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert_eq!(Value::Int(5).as_float().unwrap(), 5.0);
        assert!(Value::from("x").as_int().is_err());
        assert_eq!(Value::from("x").as_str().unwrap(), "x");
        assert!(Value::Null.as_bool().is_err());
    }
}
