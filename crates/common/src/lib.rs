//! Shared vocabulary of the HyLite engine.
//!
//! This crate defines the typed columnar value system every other crate
//! speaks: [`DataType`] and [`Value`] for scalars, [`Bitmap`] for validity,
//! [`ColumnVector`] for typed columns, [`Chunk`] for vectorized batches of
//! rows, [`Schema`]/[`Field`] for relation shapes, and [`HyError`] for
//! error reporting across the whole engine. It also hosts the
//! cross-cutting runtime services: [`telemetry`] (metrics and per-query
//! profiles), [`governor`] (per-query cancellation, deadlines, and
//! memory budgets), and [`wire`] (the binary frame protocol spoken
//! between `hylite-server` and `hylite-client`).

#![warn(missing_docs)]

pub mod bitmap;
pub mod chunk;
pub mod column;
pub mod crc32;
pub mod error;
pub mod faultfs;
pub mod faultnet;
pub mod governor;
pub mod row;
pub mod schema;
pub mod sysview;
pub mod telemetry;
pub mod types;
pub mod value;
pub mod wire;

pub use bitmap::Bitmap;
pub use chunk::Chunk;
pub use column::ColumnVector;
pub use crc32::crc32;
pub use error::{HyError, Result};
pub use faultfs::{CrashSpec, FaultVfs, KeepUnsynced, StdVfs, Vfs, VfsFile};
pub use faultnet::{FaultNet, NetHandle, NetStream, NetVfs, StdNet};
pub use governor::{CancelToken, Governor, MemoryBudget, Reservation};
pub use row::Row;
pub use schema::{Field, Schema, SchemaRef};
pub use sysview::{
    SlowQueryEntry, SlowQueryLog, SystemView, SystemViewHub, SystemViewProvider, SYSTEM_SCHEMA,
};
pub use telemetry::{MetricsRegistry, MetricsSnapshot, OpSpan, ProfileBuilder, QueryProfile};
pub use types::DataType;
pub use value::Value;
pub use wire::{ErrorCode, Frame};

/// Number of rows an execution-time [`Chunk`] aims for. Chosen so that a
/// handful of `f64` columns stay comfortably inside L1/L2 while amortizing
/// per-chunk dispatch, mirroring vectorized engines.
pub const CHUNK_ROWS: usize = 2048;
