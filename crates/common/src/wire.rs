//! The HyLite wire protocol: length-prefixed binary frames carrying SQL
//! in and columnar results out.
//!
//! Layout of every frame on the wire:
//!
//! ```text
//! [u32 length LE] [u8 tag] [payload ...]
//! ```
//!
//! where `length` counts the tag byte plus the payload. Results stream as
//! one [`Frame::ResultSchema`] followed by zero or more
//! [`Frame::DataChunk`] frames and a closing [`Frame::CommandComplete`],
//! so a server never has to materialize a full row-set to answer a query —
//! each chunk is encoded and written as soon as the engine produces it.
//!
//! Integers are little-endian; strings are `u32` length + UTF-8 bytes;
//! column payloads keep HyLite's native columnar layout (typed data array
//! plus an optional validity bitmap), so a decoded [`Chunk`] compares
//! equal to the chunk the embedded API would have returned.
//!
//! Errors travel as a stable numeric [`ErrorCode`] plus a human-readable
//! message; see [`ErrorCode`] for the code space and the retryability
//! contract. The full protocol (handshake, cancellation, shutdown) is
//! documented in `docs/PROTOCOL.md`.

use std::io::{Read, Write};

use crate::{Bitmap, Chunk, ColumnVector, DataType, Field, HyError, Result, Schema};

/// Protocol version spoken by this build. Bumped on any incompatible
/// frame-layout change; the server rejects mismatched clients at startup.
pub const PROTOCOL_VERSION: u32 = 1;

/// Magic number opening every [`Frame::Startup`]/[`Frame::Cancel`]
/// connection (`"HYLT"`), so the server can reject stray TCP clients
/// before parsing anything else.
pub const STARTUP_MAGIC: u32 = 0x4859_4C54;

/// Hard cap on a single frame's encoded size. A length prefix beyond this
/// is treated as a protocol violation rather than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// Stable numeric error codes carried by [`Frame::Error`].
///
/// The code space is partitioned so clients can classify failures without
/// string matching:
///
/// | Range | Meaning                                        | Retryable |
/// |-------|------------------------------------------------|-----------|
/// | 1xxx  | The SQL text was rejected (parse/bind/plan)    | no        |
/// | 2xxx  | The statement failed while executing           | no        |
/// | 3xxx  | Governed abort (cancel/timeout/budget)         | yes       |
/// | 4xxx  | Engine bug (internal invariant violation)      | no        |
/// | 5xxx  | Server-side admission control / transport      | see below |
///
/// Within 5xxx, [`Overloaded`](ErrorCode::Overloaded),
/// [`QueueTimeout`](ErrorCode::QueueTimeout),
/// [`ShuttingDown`](ErrorCode::ShuttingDown) and
/// [`DiskFull`](ErrorCode::DiskFull) are retryable (the statement was
/// never started); [`Protocol`](ErrorCode::Protocol) is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Tokenizer/parser rejected the SQL text.
    Parse = 1000,
    /// Name resolution or type checking failed.
    Bind = 1001,
    /// Logical-to-physical planning failed.
    Plan = 1002,
    /// A type mismatch detected at any stage.
    Type = 1003,
    /// Runtime failure while executing the plan.
    Execution = 2000,
    /// Storage-layer failure.
    Storage = 2001,
    /// Catalog-level failure.
    Catalog = 2002,
    /// An analytics operator rejected its configuration or input.
    Analytics = 2003,
    /// Transaction handling failure.
    Transaction = 2004,
    /// The statement was cancelled (e.g. an out-of-band Cancel frame).
    Cancelled = 3000,
    /// The statement ran past its `statement_timeout_ms`.
    Timeout = 3001,
    /// The statement exceeded its `memory_budget_mb`.
    BudgetExceeded = 3002,
    /// Internal invariant violation — a bug, not user error.
    Internal = 4000,
    /// The server is at its connection cap or statement queue capacity.
    Overloaded = 5000,
    /// The statement waited in the admission queue past the configured
    /// backpressure deadline without getting an execution slot.
    QueueTimeout = 5001,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown = 5002,
    /// Wire-protocol violation (bad magic, unknown tag, short frame,
    /// version mismatch, transport failure).
    Protocol = 5003,
    /// The statement tried to write on a read-only replica. Retryable in
    /// the sense that the *system* can serve it — the message names the
    /// primary the client should write to (or retry against after a
    /// promotion).
    ReadOnlyReplica = 5004,
    /// The node's disk is full: it serves reads in degraded mode and
    /// rejects writes until space frees. Retryable — write service
    /// resumes automatically once the background space probe succeeds.
    DiskFull = 5005,
}

impl ErrorCode {
    /// The numeric wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decode a wire code; unknown codes conservatively map to
    /// [`ErrorCode::Internal`] so old clients survive new servers.
    pub fn from_u16(code: u16) -> ErrorCode {
        match code {
            1000 => ErrorCode::Parse,
            1001 => ErrorCode::Bind,
            1002 => ErrorCode::Plan,
            1003 => ErrorCode::Type,
            2000 => ErrorCode::Execution,
            2001 => ErrorCode::Storage,
            2002 => ErrorCode::Catalog,
            2003 => ErrorCode::Analytics,
            2004 => ErrorCode::Transaction,
            3000 => ErrorCode::Cancelled,
            3001 => ErrorCode::Timeout,
            3002 => ErrorCode::BudgetExceeded,
            5000 => ErrorCode::Overloaded,
            5001 => ErrorCode::QueueTimeout,
            5002 => ErrorCode::ShuttingDown,
            5003 => ErrorCode::Protocol,
            5004 => ErrorCode::ReadOnlyReplica,
            5005 => ErrorCode::DiskFull,
            _ => ErrorCode::Internal,
        }
    }

    /// Classify an engine error into its stable wire code.
    pub fn from_error(e: &HyError) -> ErrorCode {
        match e {
            HyError::Parse(_) => ErrorCode::Parse,
            HyError::Bind(_) => ErrorCode::Bind,
            HyError::Plan(_) => ErrorCode::Plan,
            HyError::Type(_) => ErrorCode::Type,
            HyError::Execution(_) => ErrorCode::Execution,
            HyError::Storage(_) => ErrorCode::Storage,
            HyError::Catalog(_) => ErrorCode::Catalog,
            HyError::Analytics(_) => ErrorCode::Analytics,
            HyError::Transaction(_) => ErrorCode::Transaction,
            HyError::Cancelled(_) => ErrorCode::Cancelled,
            HyError::Timeout(_) => ErrorCode::Timeout,
            HyError::BudgetExceeded(_) => ErrorCode::BudgetExceeded,
            HyError::Unavailable(_) => ErrorCode::Overloaded,
            HyError::ReadOnly(_) => ErrorCode::ReadOnlyReplica,
            HyError::DiskFull(_) => ErrorCode::DiskFull,
            HyError::Protocol(_) => ErrorCode::Protocol,
            HyError::Internal(_) => ErrorCode::Internal,
        }
    }

    /// Reconstruct an [`HyError`] client-side from a code + message.
    pub fn to_error(self, message: impl Into<String>) -> HyError {
        let m = message.into();
        match self {
            ErrorCode::Parse => HyError::Parse(m),
            ErrorCode::Bind => HyError::Bind(m),
            ErrorCode::Plan => HyError::Plan(m),
            ErrorCode::Type => HyError::Type(m),
            ErrorCode::Execution => HyError::Execution(m),
            ErrorCode::Storage => HyError::Storage(m),
            ErrorCode::Catalog => HyError::Catalog(m),
            ErrorCode::Analytics => HyError::Analytics(m),
            ErrorCode::Transaction => HyError::Transaction(m),
            ErrorCode::Cancelled => HyError::Cancelled(m),
            ErrorCode::Timeout => HyError::Timeout(m),
            ErrorCode::BudgetExceeded => HyError::BudgetExceeded(m),
            ErrorCode::Overloaded | ErrorCode::QueueTimeout | ErrorCode::ShuttingDown => {
                HyError::Unavailable(m)
            }
            ErrorCode::Protocol => HyError::Protocol(m),
            ErrorCode::ReadOnlyReplica => HyError::ReadOnly(m),
            ErrorCode::DiskFull => HyError::DiskFull(m),
            ErrorCode::Internal => HyError::Internal(m),
        }
    }

    /// True when retrying the same statement later is reasonable: the
    /// server deliberately shed or aborted the work without judging the
    /// SQL invalid (overload, queue backpressure, shutdown, timeout,
    /// cancellation, budget).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Cancelled
                | ErrorCode::Timeout
                | ErrorCode::BudgetExceeded
                | ErrorCode::Overloaded
                | ErrorCode::QueueTimeout
                | ErrorCode::ShuttingDown
                | ErrorCode::ReadOnlyReplica
                | ErrorCode::DiskFull
        )
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// One protocol frame. See the module docs for the on-wire layout and
/// `docs/PROTOCOL.md` for the conversation state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame of a query connection.
    Startup {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Server → client, successful handshake. `session_id`/`secret`
    /// authorize out-of-band [`Frame::Cancel`] requests.
    StartupOk {
        /// Server's protocol version.
        version: u32,
        /// Server-assigned connection id.
        session_id: u64,
        /// Random secret required to cancel this session.
        secret: u64,
    },
    /// Client → server: execute a SQL text (may contain several
    /// `;`-separated statements; the last result is returned).
    Query {
        /// The SQL text.
        sql: String,
    },
    /// Server → client: the result schema, sent before any data.
    ResultSchema {
        /// Result column names/types.
        schema: Schema,
    },
    /// Server → client: one columnar batch of result rows.
    DataChunk {
        /// The batch, in HyLite's native columnar layout.
        chunk: Chunk,
    },
    /// Server → client: the statement finished successfully.
    CommandComplete {
        /// Rows inserted/updated/deleted by DML.
        rows_affected: u64,
        /// Total result rows streamed in the preceding chunks.
        total_rows: u64,
        /// The node's highest durable LSN when the statement completed
        /// (`0` on a non-durable server). On a primary this is the commit
        /// watermark; on a replica it is the last durably *applied* LSN.
        /// Routers compare the two to decide whether a replica has caught
        /// up with a session's writes ("read your own writes"). Absent in
        /// protocol-v1 frames from older servers; decoded as `0` then.
        lsn: u64,
    },
    /// Server → client: the statement (or handshake) failed.
    Error {
        /// Stable numeric code, see [`ErrorCode`].
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// Client → server, first frame of a *cancel* connection: abort the
    /// statement running on another session.
    Cancel {
        /// Target session id from its [`Frame::StartupOk`].
        session_id: u64,
        /// Matching secret from the same handshake.
        secret: u64,
    },
    /// Server → client: answer to [`Frame::Cancel`].
    CancelAck {
        /// Whether the session existed and the cancel was delivered.
        delivered: bool,
    },
    /// Client → server: request graceful server shutdown (drain in-flight
    /// statements under the server's deadline, then stop).
    Shutdown,
    /// Client → server: close this connection cleanly.
    Terminate,
    /// Replica → primary, first frame of a *replication* connection:
    /// request the WAL stream starting after the replica's last durably
    /// applied commit.
    Replicate {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The primary-incarnation epoch the replica last bootstrapped
        /// from, or `0` for a fresh replica with no local state. An epoch
        /// the primary does not recognize as its own forces a
        /// re-bootstrap instead of a silent fork.
        epoch: u64,
        /// LSN of the last commit the replica has durably applied
        /// (`0` = none); streaming resumes at `last_lsn + 1`.
        last_lsn: u64,
    },
    /// Primary → replica: handshake accepted; WAL frames follow.
    ReplicateOk {
        /// The primary's current incarnation epoch.
        epoch: u64,
        /// The next LSN the primary will stream (the replica is caught
        /// up once it has applied everything below this).
        next_lsn: u64,
    },
    /// Primary → replica: the requested LSN is no longer in the
    /// primary's WAL (checkpoint truncation) or the epochs diverge; the
    /// replica must discard local state and install this checkpoint
    /// image before streaming resumes.
    SnapshotOffer {
        /// The primary's current incarnation epoch; the replica adopts it.
        epoch: u64,
        /// LSN the snapshot is consistent as of; streaming resumes here.
        base_lsn: u64,
        /// A complete checkpoint image in the on-disk checkpoint format.
        data: Vec<u8>,
    },
    /// Primary → replica: one redo-WAL commit frame, shipped verbatim.
    WalFrame {
        /// The commit's log sequence number (must be exactly the
        /// replica's next expected LSN — any gap is divergence).
        lsn: u64,
        /// CRC32 of `payload` exactly as stored in the primary's WAL;
        /// the replica re-verifies before applying.
        crc: u32,
        /// The WAL frame payload (`[lsn][nops][ops...]`).
        payload: Vec<u8>,
    },
    /// Replica → primary: everything up to and including `lsn` has been
    /// durably applied on the replica. Advances the primary's
    /// flow-control window.
    ReplicaAck {
        /// Highest durably applied LSN.
        lsn: u64,
    },
    /// Client → server, first frame of an *admin* connection: promote
    /// this replica to a writable primary in place (mint a fresh epoch,
    /// stop following the old primary, start accepting writes). A no-op
    /// on a server that is already a primary.
    Promote,
    /// Server → client: answer to [`Frame::Promote`].
    PromoteOk {
        /// The (possibly fresh) primary incarnation epoch after the
        /// promotion took effect.
        epoch: u64,
        /// The node's highest durable LSN at promotion time.
        lsn: u64,
    },
    /// Client → server, first frame of an *admin* connection: tell a
    /// replica to follow a different primary (after a failover). The
    /// replica redirects its apply loop; epoch fencing at the new
    /// primary decides whether it can resume the stream or must
    /// re-bootstrap — a stale fork is never served. Acknowledged with a
    /// [`Frame::CommandComplete`], or [`Frame::Error`] if this server is
    /// not a replica.
    Repoint {
        /// `host:port` of the new primary to follow.
        primary_addr: String,
    },
    /// Client → server, first frame of an *admin* connection: take an
    /// online backup into a directory on the server's filesystem.
    /// Answered with [`Frame::BackupOk`] or [`Frame::Error`].
    Backup {
        /// Destination directory (server-side path).
        dir: String,
        /// Optional incremental base backup directory (server-side path).
        base: Option<String>,
        /// Re-read every copied file before completion.
        verify: bool,
    },
    /// Server → client: answer to [`Frame::Backup`].
    BackupOk {
        /// Highest LSN the backup contains.
        lsn: u64,
        /// Segment files physically copied.
        segments: u64,
        /// Bytes copied.
        bytes: u64,
    },
}

impl Frame {
    /// Build an error frame from an engine error.
    pub fn error(e: &HyError) -> Frame {
        Frame::Error {
            code: ErrorCode::from_error(e).as_u16(),
            message: e.message().to_owned(),
        }
    }

    /// Build an error frame with an explicit code (admission control uses
    /// this to distinguish `Overloaded`/`QueueTimeout`/`ShuttingDown`,
    /// which all surface client-side as [`HyError::Unavailable`]).
    pub fn error_with_code(code: ErrorCode, message: impl Into<String>) -> Frame {
        Frame::Error {
            code: code.as_u16(),
            message: message.into(),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Frame::Startup { .. } => 1,
            Frame::StartupOk { .. } => 2,
            Frame::Query { .. } => 3,
            Frame::ResultSchema { .. } => 4,
            Frame::DataChunk { .. } => 5,
            Frame::CommandComplete { .. } => 6,
            Frame::Error { .. } => 7,
            Frame::Cancel { .. } => 8,
            Frame::CancelAck { .. } => 9,
            Frame::Shutdown => 10,
            Frame::Terminate => 11,
            Frame::Replicate { .. } => 12,
            Frame::ReplicateOk { .. } => 13,
            Frame::SnapshotOffer { .. } => 14,
            Frame::WalFrame { .. } => 15,
            Frame::ReplicaAck { .. } => 16,
            Frame::Promote => 17,
            Frame::PromoteOk { .. } => 18,
            Frame::Repoint { .. } => 19,
            Frame::Backup { .. } => 20,
            Frame::BackupOk { .. } => 21,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append a little-endian `u16`. The `put_*` encoders are public because
/// the WAL and checkpoint writers in `hylite-storage` reuse the wire
/// codec as their on-disk serialization.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        None => buf.push(0),
    }
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Bool => 2,
        DataType::Varchar => 3,
        DataType::Null => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Bool,
        3 => DataType::Varchar,
        4 => DataType::Null,
        other => return Err(HyError::Protocol(format!("unknown data type tag {other}"))),
    })
}

/// Pack `len` bits (`get(i)`) LSB-first into `len.div_ceil(8)` bytes.
fn put_bits(buf: &mut Vec<u8>, len: usize, get: impl Fn(usize) -> bool) {
    let mut byte = 0u8;
    for i in 0..len {
        if get(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !len.is_multiple_of(8) {
        buf.push(byte);
    }
}

fn put_column(buf: &mut Vec<u8>, col: &ColumnVector) {
    buf.push(dtype_tag(col.data_type()));
    let rows = col.len();
    put_u32(buf, rows as u32);
    let put_validity = |buf: &mut Vec<u8>, validity: &Option<Bitmap>| match validity {
        Some(bm) => {
            buf.push(1);
            put_bits(buf, rows, |i| bm.get(i));
        }
        None => buf.push(0),
    };
    match col {
        ColumnVector::Int64 { data, validity } => {
            put_validity(buf, validity);
            for v in data {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        ColumnVector::Float64 { data, validity } => {
            put_validity(buf, validity);
            for v in data {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        ColumnVector::Bool { data, validity } => {
            put_validity(buf, validity);
            put_bits(buf, rows, |i| data[i]);
        }
        ColumnVector::Varchar { data, validity } => {
            put_validity(buf, validity);
            for s in data {
                put_str(buf, s);
            }
        }
    }
}

/// Append a [`Chunk`] in HyLite's columnar layout (row count, column
/// count, then each column with its validity bitmap).
pub fn put_chunk(buf: &mut Vec<u8>, chunk: &Chunk) {
    put_u32(buf, chunk.len() as u32);
    put_u16(buf, chunk.num_columns() as u16);
    for col in chunk.columns() {
        put_column(buf, col);
    }
}

/// Append a [`Schema`] (field count, then qualifier/name/type/nullability
/// per field).
pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u16(buf, schema.len() as u16);
    for f in schema.fields() {
        put_opt_str(buf, f.qualifier.as_deref());
        put_str(buf, &f.name);
        buf.push(dtype_tag(f.data_type));
        buf.push(u8::from(f.nullable));
    }
}

/// Encode a frame into its on-wire byte representation (length prefix
/// included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u32(&mut buf, 0); // length placeholder
    buf.push(frame.tag());
    match frame {
        Frame::Startup { version } => {
            put_u32(&mut buf, STARTUP_MAGIC);
            put_u32(&mut buf, *version);
        }
        Frame::StartupOk {
            version,
            session_id,
            secret,
        } => {
            put_u32(&mut buf, *version);
            put_u64(&mut buf, *session_id);
            put_u64(&mut buf, *secret);
        }
        Frame::Query { sql } => put_str(&mut buf, sql),
        Frame::ResultSchema { schema } => put_schema(&mut buf, schema),
        Frame::DataChunk { chunk } => put_chunk(&mut buf, chunk),
        Frame::CommandComplete {
            rows_affected,
            total_rows,
            lsn,
        } => {
            put_u64(&mut buf, *rows_affected);
            put_u64(&mut buf, *total_rows);
            put_u64(&mut buf, *lsn);
        }
        Frame::Error { code, message } => {
            put_u16(&mut buf, *code);
            put_str(&mut buf, message);
        }
        Frame::Cancel { session_id, secret } => {
            put_u32(&mut buf, STARTUP_MAGIC);
            put_u64(&mut buf, *session_id);
            put_u64(&mut buf, *secret);
        }
        Frame::CancelAck { delivered } => buf.push(u8::from(*delivered)),
        Frame::Shutdown | Frame::Terminate => {}
        Frame::Replicate {
            version,
            epoch,
            last_lsn,
        } => {
            put_u32(&mut buf, STARTUP_MAGIC);
            put_u32(&mut buf, *version);
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *last_lsn);
        }
        Frame::ReplicateOk { epoch, next_lsn } => {
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *next_lsn);
        }
        Frame::SnapshotOffer {
            epoch,
            base_lsn,
            data,
        } => {
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *base_lsn);
            put_u32(&mut buf, data.len() as u32);
            buf.extend_from_slice(data);
        }
        Frame::WalFrame { lsn, crc, payload } => {
            put_u64(&mut buf, *lsn);
            put_u32(&mut buf, *crc);
            put_u32(&mut buf, payload.len() as u32);
            buf.extend_from_slice(payload);
        }
        Frame::ReplicaAck { lsn } => put_u64(&mut buf, *lsn),
        Frame::Promote => {
            put_u32(&mut buf, STARTUP_MAGIC);
        }
        Frame::PromoteOk { epoch, lsn } => {
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *lsn);
        }
        Frame::Repoint { primary_addr } => {
            put_u32(&mut buf, STARTUP_MAGIC);
            put_str(&mut buf, primary_addr);
        }
        Frame::Backup { dir, base, verify } => {
            put_u32(&mut buf, STARTUP_MAGIC);
            put_str(&mut buf, dir);
            match base {
                Some(b) => {
                    buf.push(1);
                    put_str(&mut buf, b);
                }
                None => buf.push(0),
            }
            buf.push(u8::from(*verify));
        }
        Frame::BackupOk {
            lsn,
            segments,
            bytes,
        } => {
            put_u64(&mut buf, *lsn);
            put_u64(&mut buf, *segments);
            put_u64(&mut buf, *bytes);
        }
    }
    let len = (buf.len() - 4) as u32;
    buf[0..4].copy_from_slice(&len.to_le_bytes());
    buf
}

/// Encode and write one frame; returns the number of bytes written.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<usize> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)
        .map_err(|e| HyError::Protocol(format!("write failed: {e}")))?;
    Ok(bytes.len())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Sequential reader over length-delimited binary data. Every accessor
/// bounds-checks against the slice (with overflow-safe arithmetic) and
/// returns [`HyError::Protocol`] on truncation, so arbitrary bytes can be
/// fed to it without panicking. Used for wire frame bodies and — because
/// the WAL and checkpoint files reuse the wire codec — by crash recovery
/// in `hylite-storage`.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(HyError::Protocol(format!(
                "frame truncated: wanted {n} bytes at offset {}, frame is {} bytes",
                self.pos,
                self.buf.len()
            )));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| HyError::Protocol("invalid UTF-8 in string".into()))
    }

    fn opt_str(&mut self) -> Result<Option<String>> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.str()?),
        })
    }

    /// Read `len` LSB-first packed bits.
    fn bits(&mut self, len: usize) -> Result<Vec<bool>> {
        let bytes = self.take(len.div_ceil(8))?;
        Ok((0..len)
            .map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1)
            .collect())
    }

    fn column(&mut self) -> Result<ColumnVector> {
        let dt = dtype_from_tag(self.u8()?)?;
        let rows = self.u32()? as usize;
        let validity = match self.u8()? {
            0 => None,
            _ => Some(self.bits(rows)?.into_iter().collect::<Bitmap>()),
        };
        let fixed_width = |r: &mut Self| {
            // `rows * 8` can't overflow here: rows came from a u32, but
            // use checked math anyway so 32-bit targets stay safe.
            let n = rows
                .checked_mul(8)
                .ok_or_else(|| HyError::Protocol(format!("column of {rows} rows overflows")))?;
            r.take(n)
        };
        Ok(match dt {
            DataType::Int64 | DataType::Null => {
                let raw = fixed_width(self)?;
                let data = raw
                    .chunks_exact(8)
                    .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
                    .collect();
                ColumnVector::Int64 { data, validity }
            }
            DataType::Float64 => {
                let raw = fixed_width(self)?;
                let data = raw
                    .chunks_exact(8)
                    .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
                    .collect();
                ColumnVector::Float64 { data, validity }
            }
            DataType::Bool => ColumnVector::Bool {
                data: self.bits(rows)?,
                validity,
            },
            DataType::Varchar => {
                // Each string costs at least its 4-byte length prefix, so
                // cap the preallocation by what the frame could possibly
                // hold — a forged row count must not drive a huge
                // allocation before the truncation is noticed.
                let mut data = Vec::with_capacity(rows.min(self.remaining() / 4));
                for _ in 0..rows {
                    data.push(self.str()?);
                }
                ColumnVector::Varchar { data, validity }
            }
        })
    }

    /// Consume a [`Chunk`] as written by [`put_chunk`].
    pub fn chunk(&mut self) -> Result<Chunk> {
        let rows = self.u32()? as usize;
        let cols = self.u16()? as usize;
        if cols == 0 {
            return Ok(Chunk::zero_column(rows));
        }
        let mut columns = Vec::with_capacity(cols);
        for _ in 0..cols {
            let col = self.column()?;
            if col.len() != rows {
                return Err(HyError::Protocol(format!(
                    "chunk column length {} does not match row count {rows}",
                    col.len()
                )));
            }
            columns.push(std::sync::Arc::new(col));
        }
        Ok(Chunk::from_arc_columns(columns))
    }

    /// Consume a [`Schema`] as written by [`put_schema`].
    pub fn schema(&mut self) -> Result<Schema> {
        let n = self.u16()? as usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let qualifier = self.opt_str()?;
            let name = self.str()?;
            let data_type = dtype_from_tag(self.u8()?)?;
            let nullable = self.u8()? != 0;
            let mut f = Field::new(name, data_type);
            f.qualifier = qualifier;
            f.nullable = nullable;
            fields.push(f);
        }
        Ok(Schema::new(fields))
    }
}

/// Decode one frame from its body bytes (length prefix already consumed).
pub fn decode_frame(tag: u8, body: &[u8]) -> Result<Frame> {
    let mut r = ByteReader::new(body);
    let frame = match tag {
        1 => {
            let magic = r.u32()?;
            if magic != STARTUP_MAGIC {
                return Err(HyError::Protocol(format!(
                    "bad startup magic {magic:#010x} (not a HyLite client?)"
                )));
            }
            Frame::Startup { version: r.u32()? }
        }
        2 => Frame::StartupOk {
            version: r.u32()?,
            session_id: r.u64()?,
            secret: r.u64()?,
        },
        3 => Frame::Query { sql: r.str()? },
        4 => Frame::ResultSchema {
            schema: r.schema()?,
        },
        5 => Frame::DataChunk { chunk: r.chunk()? },
        6 => Frame::CommandComplete {
            rows_affected: r.u64()?,
            total_rows: r.u64()?,
            // Protocol-v1 servers predating the router omit the trailing
            // LSN; decode it as 0 ("unknown") so old frames still parse.
            lsn: if r.is_empty() { 0 } else { r.u64()? },
        },
        7 => Frame::Error {
            code: r.u16()?,
            message: r.str()?,
        },
        8 => {
            let magic = r.u32()?;
            if magic != STARTUP_MAGIC {
                return Err(HyError::Protocol(format!(
                    "bad cancel magic {magic:#010x} (not a HyLite client?)"
                )));
            }
            Frame::Cancel {
                session_id: r.u64()?,
                secret: r.u64()?,
            }
        }
        9 => Frame::CancelAck {
            delivered: r.u8()? != 0,
        },
        10 => Frame::Shutdown,
        11 => Frame::Terminate,
        12 => {
            let magic = r.u32()?;
            if magic != STARTUP_MAGIC {
                return Err(HyError::Protocol(format!(
                    "bad replicate magic {magic:#010x} (not a HyLite replica?)"
                )));
            }
            Frame::Replicate {
                version: r.u32()?,
                epoch: r.u64()?,
                last_lsn: r.u64()?,
            }
        }
        13 => Frame::ReplicateOk {
            epoch: r.u64()?,
            next_lsn: r.u64()?,
        },
        14 => {
            let epoch = r.u64()?;
            let base_lsn = r.u64()?;
            let n = r.u32()? as usize;
            Frame::SnapshotOffer {
                epoch,
                base_lsn,
                data: r.take(n)?.to_vec(),
            }
        }
        15 => {
            let lsn = r.u64()?;
            let crc = r.u32()?;
            let n = r.u32()? as usize;
            Frame::WalFrame {
                lsn,
                crc,
                payload: r.take(n)?.to_vec(),
            }
        }
        16 => Frame::ReplicaAck { lsn: r.u64()? },
        17 => {
            let magic = r.u32()?;
            if magic != STARTUP_MAGIC {
                return Err(HyError::Protocol(format!(
                    "bad promote magic {magic:#010x} (not a HyLite client?)"
                )));
            }
            Frame::Promote
        }
        18 => Frame::PromoteOk {
            epoch: r.u64()?,
            lsn: r.u64()?,
        },
        19 => {
            let magic = r.u32()?;
            if magic != STARTUP_MAGIC {
                return Err(HyError::Protocol(format!(
                    "bad repoint magic {magic:#010x} (not a HyLite client?)"
                )));
            }
            Frame::Repoint {
                primary_addr: r.str()?,
            }
        }
        20 => {
            let magic = r.u32()?;
            if magic != STARTUP_MAGIC {
                return Err(HyError::Protocol(format!(
                    "bad backup magic {magic:#010x} (not a HyLite client?)"
                )));
            }
            let dir = r.str()?;
            let base = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                other => {
                    return Err(HyError::Protocol(format!("bad backup base flag {other}")));
                }
            };
            let verify = match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(HyError::Protocol(format!("bad backup verify flag {other}")));
                }
            };
            Frame::Backup { dir, base, verify }
        }
        21 => Frame::BackupOk {
            lsn: r.u64()?,
            segments: r.u64()?,
            bytes: r.u64()?,
        },
        other => return Err(HyError::Protocol(format!("unknown frame tag {other}"))),
    };
    if r.pos != body.len() {
        return Err(HyError::Protocol(format!(
            "frame has {} trailing bytes after tag {tag}",
            body.len() - r.pos
        )));
    }
    Ok(frame)
}

/// Read one frame from a stream. A clean EOF before any byte of the
/// length prefix maps to [`HyError::Protocol`] with the message
/// `"connection closed"` — callers treat that as a normal disconnect.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => {
                return Err(HyError::Protocol("connection closed".into()));
            }
            Ok(0) => {
                return Err(HyError::Protocol(
                    "connection closed mid-frame (length prefix)".into(),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HyError::Protocol(format!("read failed: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(HyError::Protocol("zero-length frame".into()));
    }
    if len > MAX_FRAME_BYTES {
        return Err(HyError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| HyError::Protocol(format!("connection closed mid-frame: {e}")))?;
    let tag = body[0];
    decode_frame(tag, &body[1..])
}

/// True when a [`read_frame`] error is the normal "peer went away" case
/// rather than a malformed frame.
pub fn is_disconnect(e: &HyError) -> bool {
    matches!(e, HyError::Protocol(m) if m == "connection closed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let mut cursor = &bytes[..];
        let decoded = read_frame(&mut cursor).unwrap();
        assert_eq!(decoded, frame);
        assert!(cursor.is_empty(), "no trailing bytes");
    }

    #[test]
    fn control_frames_roundtrip() {
        roundtrip(Frame::Startup {
            version: PROTOCOL_VERSION,
        });
        roundtrip(Frame::StartupOk {
            version: 1,
            session_id: 42,
            secret: u64::MAX,
        });
        roundtrip(Frame::Query {
            sql: "SELECT 1".into(),
        });
        roundtrip(Frame::CommandComplete {
            rows_affected: 7,
            total_rows: 123,
            lsn: 99,
        });
        roundtrip(Frame::Error {
            code: ErrorCode::Overloaded.as_u16(),
            message: "too many connections".into(),
        });
        roundtrip(Frame::Cancel {
            session_id: 9,
            secret: 10,
        });
        roundtrip(Frame::CancelAck { delivered: true });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Terminate);
    }

    #[test]
    fn replication_frames_roundtrip() {
        roundtrip(Frame::Replicate {
            version: PROTOCOL_VERSION,
            epoch: 0xDEAD_BEEF_CAFE_F00D,
            last_lsn: 41,
        });
        roundtrip(Frame::ReplicateOk {
            epoch: 7,
            next_lsn: 42,
        });
        roundtrip(Frame::SnapshotOffer {
            epoch: u64::MAX,
            base_lsn: 100,
            data: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::SnapshotOffer {
            epoch: 1,
            base_lsn: 1,
            data: Vec::new(),
        });
        roundtrip(Frame::WalFrame {
            lsn: 9,
            crc: 0x1234_5678,
            payload: vec![0xAB; 37],
        });
        roundtrip(Frame::ReplicaAck { lsn: u64::MAX });
    }

    #[test]
    fn admin_frames_roundtrip() {
        roundtrip(Frame::Promote);
        roundtrip(Frame::PromoteOk {
            epoch: 0xFEED_FACE,
            lsn: 41,
        });
        roundtrip(Frame::Repoint {
            primary_addr: "10.0.0.7:5433".into(),
        });
        roundtrip(Frame::Backup {
            dir: "/backups/nightly".into(),
            base: None,
            verify: false,
        });
        roundtrip(Frame::Backup {
            dir: "/backups/inc-17".into(),
            base: Some("/backups/nightly".into()),
            verify: true,
        });
        roundtrip(Frame::BackupOk {
            lsn: u64::MAX,
            segments: 12,
            bytes: 0xDEAD_BEEF,
        });
    }

    #[test]
    fn admin_frames_require_magic() {
        assert!(matches!(
            decode_frame(17, &0xBADC0DEu32.to_le_bytes()),
            Err(HyError::Protocol(_))
        ));
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0xBADC0DE);
        put_str(&mut bytes, "x:1");
        assert!(matches!(
            decode_frame(19, &bytes),
            Err(HyError::Protocol(_))
        ));
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0xBADC0DE);
        put_str(&mut bytes, "/b");
        bytes.push(0);
        bytes.push(0);
        assert!(matches!(
            decode_frame(20, &bytes),
            Err(HyError::Protocol(_))
        ));
    }

    #[test]
    fn backup_frame_rejects_bad_flags() {
        // base flag must be 0/1; verify flag must be 0/1.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, STARTUP_MAGIC);
        put_str(&mut bytes, "/b");
        bytes.push(7);
        bytes.push(0);
        assert!(matches!(
            decode_frame(20, &bytes),
            Err(HyError::Protocol(_))
        ));
        let mut bytes = Vec::new();
        put_u32(&mut bytes, STARTUP_MAGIC);
        put_str(&mut bytes, "/b");
        bytes.push(0);
        bytes.push(9);
        assert!(matches!(
            decode_frame(20, &bytes),
            Err(HyError::Protocol(_))
        ));
    }

    #[test]
    fn command_complete_without_lsn_still_decodes() {
        // A protocol-v1 frame from a server predating the router carries
        // only rows_affected + total_rows; the missing LSN reads as 0.
        let mut body = Vec::new();
        put_u64(&mut body, 7);
        put_u64(&mut body, 123);
        assert_eq!(
            decode_frame(6, &body).unwrap(),
            Frame::CommandComplete {
                rows_affected: 7,
                total_rows: 123,
                lsn: 0,
            }
        );
        // But a partial trailing LSN is still a protocol error.
        body.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(decode_frame(6, &body), Err(HyError::Protocol(_))));
    }

    #[test]
    fn replicate_frame_requires_magic() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0xBAD_F00D);
        put_u32(&mut bytes, PROTOCOL_VERSION);
        put_u64(&mut bytes, 1);
        put_u64(&mut bytes, 0);
        assert!(matches!(
            decode_frame(12, &bytes),
            Err(HyError::Protocol(_))
        ));
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64).with_qualifier("t"),
            Field::new("name", DataType::Varchar),
            Field::new("ok", DataType::Bool).not_null(),
        ]);
        roundtrip(Frame::ResultSchema { schema });
    }

    #[test]
    fn chunk_roundtrip_all_types_with_nulls() {
        let mut s = ColumnVector::empty(DataType::Varchar);
        for v in [
            crate::Value::from("a"),
            crate::Value::Null,
            crate::Value::from("ccc"),
        ] {
            s.push_value(&v).unwrap();
        }
        let mut f = ColumnVector::empty(DataType::Float64);
        for v in [
            crate::Value::Float(1.5),
            crate::Value::Float(-0.0),
            crate::Value::Null,
        ] {
            f.push_value(&v).unwrap();
        }
        let chunk = Chunk::new(vec![
            ColumnVector::from_i64(vec![1, -2, i64::MAX]),
            f,
            ColumnVector::from_bool(vec![true, false, true]),
            s,
        ]);
        roundtrip(Frame::DataChunk { chunk });
    }

    #[test]
    fn zero_column_chunk_keeps_len() {
        roundtrip(Frame::DataChunk {
            chunk: Chunk::zero_column(17),
        });
    }

    #[test]
    fn wide_bitmap_roundtrip() {
        // > 64 rows exercises multi-word bitmaps on both sides.
        let mut col = ColumnVector::empty(DataType::Int64);
        for i in 0..200 {
            let v = if i % 3 == 0 {
                crate::Value::Null
            } else {
                crate::Value::Int(i)
            };
            col.push_value(&v).unwrap();
        }
        roundtrip(Frame::DataChunk {
            chunk: Chunk::new(vec![col]),
        });
    }

    #[test]
    fn error_codes_are_stable_and_total() {
        // Every HyError variant maps to a code and back to the same
        // variant family; the numeric values are part of the protocol.
        let cases = [
            (HyError::Parse("m".into()), 1000),
            (HyError::Bind("m".into()), 1001),
            (HyError::Plan("m".into()), 1002),
            (HyError::Type("m".into()), 1003),
            (HyError::Execution("m".into()), 2000),
            (HyError::Storage("m".into()), 2001),
            (HyError::Catalog("m".into()), 2002),
            (HyError::Analytics("m".into()), 2003),
            (HyError::Transaction("m".into()), 2004),
            (HyError::Cancelled("m".into()), 3000),
            (HyError::Timeout("m".into()), 3001),
            (HyError::BudgetExceeded("m".into()), 3002),
            (HyError::Unavailable("m".into()), 5000),
            (HyError::ReadOnly("m".into()), 5004),
            (HyError::DiskFull("m".into()), 5005),
            (HyError::Protocol("m".into()), 5003),
            (HyError::Internal("m".into()), 4000),
        ];
        for (err, code) in cases {
            let c = ErrorCode::from_error(&err);
            assert_eq!(c.as_u16(), code, "{err:?}");
            assert_eq!(ErrorCode::from_u16(code), c);
            let back = c.to_error(err.message().to_owned());
            assert_eq!(back.stage(), err.stage(), "{err:?} roundtrips its stage");
        }
    }

    #[test]
    fn retryability_contract() {
        for code in [
            ErrorCode::Cancelled,
            ErrorCode::Timeout,
            ErrorCode::BudgetExceeded,
            ErrorCode::Overloaded,
            ErrorCode::QueueTimeout,
            ErrorCode::ShuttingDown,
            ErrorCode::ReadOnlyReplica,
            ErrorCode::DiskFull,
        ] {
            assert!(code.is_retryable(), "{code:?}");
        }
        for code in [
            ErrorCode::Parse,
            ErrorCode::Bind,
            ErrorCode::Execution,
            ErrorCode::Internal,
            ErrorCode::Protocol,
        ] {
            assert!(!code.is_retryable(), "{code:?}");
        }
    }

    #[test]
    fn admission_codes_surface_as_unavailable() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::QueueTimeout,
            ErrorCode::ShuttingDown,
        ] {
            assert!(matches!(code.to_error("x"), HyError::Unavailable(_)));
        }
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        // Unknown tag.
        assert!(matches!(decode_frame(99, &[]), Err(HyError::Protocol(_))));
        // Truncated body.
        assert!(matches!(
            decode_frame(3, &[10, 0, 0, 0, b'S']),
            Err(HyError::Protocol(_))
        ));
        // Trailing garbage.
        let mut bytes = Vec::new();
        put_str(&mut bytes, "SELECT 1");
        bytes.push(0xFF);
        assert!(matches!(decode_frame(3, &bytes), Err(HyError::Protocol(_))));
        // Bad magic.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0xDEAD_BEEF);
        put_u32(&mut bytes, 1);
        assert!(matches!(decode_frame(1, &bytes), Err(HyError::Protocol(_))));
    }

    #[test]
    fn eof_maps_to_disconnect() {
        let empty: &[u8] = &[];
        let err = read_frame(&mut { empty }).unwrap_err();
        assert!(is_disconnect(&err), "{err}");
        // Mid-frame EOF is NOT a clean disconnect.
        let partial: &[u8] = &[5, 0, 0, 0, 3];
        let err = read_frame(&mut { partial }).unwrap_err();
        assert!(!is_disconnect(&err), "{err}");
    }

    #[test]
    fn oversized_frame_rejected_without_allocating() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME_BYTES + 1);
        bytes.push(3);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, HyError::Protocol(m) if m.contains("cap")));
    }
}
