//! Compact validity bitmap used by [`crate::ColumnVector`].

/// A bit-packed boolean vector. Bit `i` set means "valid (non-NULL)" when
/// used as a validity mask, or simply `true` when used as a selection mask.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![fill; nwords],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let i = self.len - 1;
            self.words[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Append all bits of `other`.
    pub fn extend_from(&mut self, other: &Bitmap) {
        // Simple per-bit loop; bitmap appends are not on the hot path
        // (column data dominates).
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// In-place bitwise AND with another bitmap of the same length.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in AND");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Iterator over the indices of set bits, in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            OnesIter { word: w, base }
        })
    }

    /// Clear any bits beyond `len` in the last word so that `count_ones`
    /// and word-wise operations stay correct.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

struct OnesIter {
    word: u64,
    base: usize,
}

impl Iterator for OnesIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_counts() {
        let bm = Bitmap::filled(100, true);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 100);
        assert!(bm.all_set());
        let bm = Bitmap::filled(100, false);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn push_get_set() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        bm.set(0, false);
        assert!(!bm.get(0));
    }

    #[test]
    fn and_with_intersects() {
        let a: Bitmap = (0..70).map(|i| i % 2 == 0).collect();
        let b: Bitmap = (0..70).map(|i| i % 3 == 0).collect();
        let mut c = a.clone();
        c.and_with(&b);
        for i in 0..70 {
            assert_eq!(c.get(i), i % 6 == 0);
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let bm: Bitmap = (0..200).map(|i| i % 7 == 1).collect();
        let ones: Vec<_> = bm.iter_ones().collect();
        let expected: Vec<_> = (0..200).filter(|i| i % 7 == 1).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn extend_from_appends() {
        let mut a: Bitmap = (0..3).map(|i| i == 1).collect();
        let b: Bitmap = (0..67).map(|i| i % 2 == 0).collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 70);
        assert!(a.get(1));
        for i in 0..67 {
            assert_eq!(a.get(3 + i), i % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::filled(3, true).get(3);
    }

    /// Deterministic pseudo-random bits (SplitMix64) for the randomized
    /// roundtrip tests below; hylite-common has no dependencies, so a
    /// tiny inline generator stands in for an RNG crate.
    fn pseudo_bits(seed: u64, len: usize) -> Vec<bool> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn prop_roundtrip() {
        for (case, len) in [0, 1, 63, 64, 65, 130, 499].into_iter().enumerate() {
            let bits = pseudo_bits(case as u64, len);
            let bm: Bitmap = bits.iter().copied().collect();
            assert_eq!(bm.len(), bits.len());
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(bm.get(i), b);
            }
            assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
            let ones: Vec<usize> = bm.iter_ones().collect();
            let expect: Vec<usize> = bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(ones, expect);
        }
    }

    #[test]
    fn prop_and_semantics() {
        for (case, len) in [0, 1, 64, 65, 300].into_iter().enumerate() {
            let xs = pseudo_bits(100 + case as u64, len);
            let ys = pseudo_bits(200 + case as u64, len);
            let a: Bitmap = xs.iter().copied().collect();
            let b: Bitmap = ys.iter().copied().collect();
            let mut c = a.clone();
            c.and_with(&b);
            for i in 0..len {
                assert_eq!(c.get(i), xs[i] && ys[i]);
            }
        }
    }
}
