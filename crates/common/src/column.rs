//! Typed columnar vectors — the unit of vectorized execution.

use crate::{Bitmap, DataType, HyError, Result, Value};

/// A typed column of values with an optional validity bitmap.
///
/// `validity == None` means "all rows valid" — the common fast path that
/// lets kernels skip NULL checks entirely. When a bitmap is present, bit
/// `i` set means row `i` is non-NULL; the corresponding data slot holds an
/// unspecified-but-initialized default.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVector {
    /// 64-bit integers.
    Int64 {
        /// Row values; slots for NULL rows are zero.
        data: Vec<i64>,
        /// Validity mask, `None` = all valid.
        validity: Option<Bitmap>,
    },
    /// 64-bit floats.
    Float64 {
        /// Row values; slots for NULL rows are zero.
        data: Vec<f64>,
        /// Validity mask, `None` = all valid.
        validity: Option<Bitmap>,
    },
    /// Booleans.
    Bool {
        /// Row values; slots for NULL rows are `false`.
        data: Vec<bool>,
        /// Validity mask, `None` = all valid.
        validity: Option<Bitmap>,
    },
    /// UTF-8 strings.
    Varchar {
        /// Row values; slots for NULL rows are empty strings.
        data: Vec<String>,
        /// Validity mask, `None` = all valid.
        validity: Option<Bitmap>,
    },
}

impl ColumnVector {
    /// An empty column of the given type (`Null` maps to Int64 storage,
    /// all-NULL).
    pub fn empty(dt: DataType) -> ColumnVector {
        match dt {
            DataType::Int64 | DataType::Null => ColumnVector::Int64 {
                data: Vec::new(),
                validity: None,
            },
            DataType::Float64 => ColumnVector::Float64 {
                data: Vec::new(),
                validity: None,
            },
            DataType::Bool => ColumnVector::Bool {
                data: Vec::new(),
                validity: None,
            },
            DataType::Varchar => ColumnVector::Varchar {
                data: Vec::new(),
                validity: None,
            },
        }
    }

    /// Column from plain `i64`s, all valid.
    pub fn from_i64(data: Vec<i64>) -> ColumnVector {
        ColumnVector::Int64 {
            data,
            validity: None,
        }
    }

    /// Column from plain `f64`s, all valid.
    pub fn from_f64(data: Vec<f64>) -> ColumnVector {
        ColumnVector::Float64 {
            data,
            validity: None,
        }
    }

    /// Column from plain `bool`s, all valid.
    pub fn from_bool(data: Vec<bool>) -> ColumnVector {
        ColumnVector::Bool {
            data,
            validity: None,
        }
    }

    /// Column from strings, all valid. (Deliberately named like the
    /// sibling constructors `from_i64`/`from_f64`, not the `FromStr`
    /// trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str<S: Into<String>>(data: Vec<S>) -> ColumnVector {
        ColumnVector::Varchar {
            data: data.into_iter().map(Into::into).collect(),
            validity: None,
        }
    }

    /// Build a column of declared type `dt` from row [`Value`]s, coercing
    /// each value (so `Int` literals fill a `Float64` column, and NULLs
    /// are recorded in the validity mask).
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<ColumnVector> {
        let mut col = ColumnVector::empty(dt);
        for v in values {
            col.push_value(v)?;
        }
        Ok(col)
    }

    /// Logical type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Int64 { .. } => DataType::Int64,
            ColumnVector::Float64 { .. } => DataType::Float64,
            ColumnVector::Bool { .. } => DataType::Bool,
            ColumnVector::Varchar { .. } => DataType::Varchar,
        }
    }

    /// Approximate heap footprint of the column in bytes (data plus
    /// validity bitmap). Used by the profiler to attribute operator
    /// memory; string capacity is counted, not just length.
    pub fn heap_bytes(&self) -> usize {
        let validity_bytes = |v: &Option<Bitmap>| v.as_ref().map_or(0, |b| b.len().div_ceil(8));
        match self {
            ColumnVector::Int64 { data, validity } => data.len() * 8 + validity_bytes(validity),
            ColumnVector::Float64 { data, validity } => data.len() * 8 + validity_bytes(validity),
            ColumnVector::Bool { data, validity } => data.len() + validity_bytes(validity),
            ColumnVector::Varchar { data, validity } => {
                data.iter()
                    .map(|s| s.capacity() + std::mem::size_of::<String>())
                    .sum::<usize>()
                    + validity_bytes(validity)
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int64 { data, .. } => data.len(),
            ColumnVector::Float64 { data, .. } => data.len(),
            ColumnVector::Bool { data, .. } => data.len(),
            ColumnVector::Varchar { data, .. } => data.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `i` is non-NULL.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self.validity() {
            Some(v) => v.get(i),
            None => true,
        }
    }

    /// The validity bitmap if any rows may be NULL.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            ColumnVector::Int64 { validity, .. }
            | ColumnVector::Float64 { validity, .. }
            | ColumnVector::Bool { validity, .. }
            | ColumnVector::Varchar { validity, .. } => validity.as_ref(),
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match self.validity() {
            Some(v) => v.len() - v.count_ones(),
            None => 0,
        }
    }

    /// Materialize row `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            ColumnVector::Int64 { data, .. } => Value::Int(data[i]),
            ColumnVector::Float64 { data, .. } => Value::Float(data[i]),
            ColumnVector::Bool { data, .. } => Value::Bool(data[i]),
            ColumnVector::Varchar { data, .. } => Value::Str(data[i].clone()),
        }
    }

    /// Append a [`Value`], coercing it to this column's type.
    pub fn push_value(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            self.push_null();
            return Ok(());
        }
        match self {
            ColumnVector::Int64 { data, validity } => {
                data.push(v.as_int()?);
                if let Some(bm) = validity {
                    bm.push(true);
                }
            }
            ColumnVector::Float64 { data, validity } => {
                data.push(v.as_float()?);
                if let Some(bm) = validity {
                    bm.push(true);
                }
            }
            ColumnVector::Bool { data, validity } => {
                data.push(v.as_bool()?);
                if let Some(bm) = validity {
                    bm.push(true);
                }
            }
            ColumnVector::Varchar { data, validity } => {
                data.push(v.as_str()?.to_owned());
                if let Some(bm) = validity {
                    bm.push(true);
                }
            }
        }
        Ok(())
    }

    /// Append a NULL row.
    pub fn push_null(&mut self) {
        let len = self.len();
        let ensure = |validity: &mut Option<Bitmap>| {
            let bm = validity.get_or_insert_with(|| Bitmap::filled(len, true));
            bm.push(false);
        };
        match self {
            ColumnVector::Int64 { data, validity } => {
                data.push(0);
                ensure(validity);
            }
            ColumnVector::Float64 { data, validity } => {
                data.push(0.0);
                ensure(validity);
            }
            ColumnVector::Bool { data, validity } => {
                data.push(false);
                ensure(validity);
            }
            ColumnVector::Varchar { data, validity } => {
                data.push(String::new());
                ensure(validity);
            }
        }
    }

    /// Keep only rows whose bit is set in `selection`.
    pub fn filter(&self, selection: &Bitmap) -> ColumnVector {
        assert_eq!(selection.len(), self.len(), "selection length mismatch");
        let indices: Vec<usize> = selection.iter_ones().collect();
        self.take(&indices)
    }

    /// Gather rows by index (indices may repeat and be unordered).
    pub fn take(&self, indices: &[usize]) -> ColumnVector {
        fn gather<T: Clone>(data: &[T], indices: &[usize]) -> Vec<T> {
            indices.iter().map(|&i| data[i].clone()).collect()
        }
        let validity = self
            .validity()
            .map(|bm| indices.iter().map(|&i| bm.get(i)).collect::<Bitmap>());
        match self {
            ColumnVector::Int64 { data, .. } => ColumnVector::Int64 {
                data: gather(data, indices),
                validity,
            },
            ColumnVector::Float64 { data, .. } => ColumnVector::Float64 {
                data: gather(data, indices),
                validity,
            },
            ColumnVector::Bool { data, .. } => ColumnVector::Bool {
                data: gather(data, indices),
                validity,
            },
            ColumnVector::Varchar { data, .. } => ColumnVector::Varchar {
                data: gather(data, indices),
                validity,
            },
        }
    }

    /// Contiguous sub-column `[offset, offset+len)`.
    pub fn slice(&self, offset: usize, len: usize) -> ColumnVector {
        let indices: Vec<usize> = (offset..offset + len).collect();
        self.take(&indices)
    }

    /// Append all rows of `other`, which must have the same type.
    pub fn append(&mut self, other: &ColumnVector) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(HyError::Type(format!(
                "cannot append {} column to {} column",
                other.data_type(),
                self.data_type()
            )));
        }
        // Materialize a combined validity mask if either side has NULLs.
        if self.validity().is_some() || other.validity().is_some() {
            let mut bm = match self.validity() {
                Some(v) => v.clone(),
                None => Bitmap::filled(self.len(), true),
            };
            match other.validity() {
                Some(v) => bm.extend_from(v),
                None => {
                    for _ in 0..other.len() {
                        bm.push(true);
                    }
                }
            }
            self.set_validity(Some(bm));
        }
        match (self, other) {
            (ColumnVector::Int64 { data, .. }, ColumnVector::Int64 { data: o, .. }) => {
                data.extend_from_slice(o)
            }
            (ColumnVector::Float64 { data, .. }, ColumnVector::Float64 { data: o, .. }) => {
                data.extend_from_slice(o)
            }
            (ColumnVector::Bool { data, .. }, ColumnVector::Bool { data: o, .. }) => {
                data.extend_from_slice(o)
            }
            (ColumnVector::Varchar { data, .. }, ColumnVector::Varchar { data: o, .. }) => {
                data.extend_from_slice(o)
            }
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    fn set_validity(&mut self, v: Option<Bitmap>) {
        match self {
            ColumnVector::Int64 { validity, .. }
            | ColumnVector::Float64 { validity, .. }
            | ColumnVector::Bool { validity, .. }
            | ColumnVector::Varchar { validity, .. } => *validity = v,
        }
    }

    /// Cast every row to `target`, producing a new column.
    pub fn cast_to(&self, target: DataType) -> Result<ColumnVector> {
        if self.data_type() == target {
            return Ok(self.clone());
        }
        // Fast path for the only hot cast: Int64 -> Float64.
        if let (ColumnVector::Int64 { data, validity }, DataType::Float64) = (self, target) {
            return Ok(ColumnVector::Float64 {
                data: data.iter().map(|&v| v as f64).collect(),
                validity: validity.clone(),
            });
        }
        let mut out = ColumnVector::empty(target);
        for i in 0..self.len() {
            let v = self.value(i).cast_to(target)?;
            out.push_value(&v)?;
        }
        Ok(out)
    }

    /// Borrow the raw `i64` data (errors on other types).
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            ColumnVector::Int64 { data, .. } => Ok(data),
            other => Err(HyError::Type(format!(
                "expected BIGINT column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Borrow the raw `f64` data (errors on other types).
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            ColumnVector::Float64 { data, .. } => Ok(data),
            other => Err(HyError::Type(format!(
                "expected DOUBLE column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Borrow the raw `bool` data (errors on other types).
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            ColumnVector::Bool { data, .. } => Ok(data),
            other => Err(HyError::Type(format!(
                "expected BOOLEAN column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Borrow the raw string data (errors on other types).
    pub fn as_varchar(&self) -> Result<&[String]> {
        match self {
            ColumnVector::Varchar { data, .. } => Ok(data),
            other => Err(HyError::Type(format!(
                "expected VARCHAR column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Interpret this column as a predicate result: row `i` passes iff it
    /// is valid (non-NULL) and `true`. This implements SQL's three-valued
    /// WHERE semantics where NULL filters the row out.
    pub fn to_selection(&self) -> Result<Bitmap> {
        let data = self.as_bool()?;
        let mut bm = Bitmap::filled(data.len(), false);
        match self.validity() {
            None => {
                for (i, &b) in data.iter().enumerate() {
                    if b {
                        bm.set(i, true);
                    }
                }
            }
            Some(v) => {
                for (i, &b) in data.iter().enumerate() {
                    if b && v.get(i) {
                        bm.set(i, true);
                    }
                }
            }
        }
        Ok(bm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_values_and_nulls() {
        let mut col = ColumnVector::empty(DataType::Float64);
        col.push_value(&Value::Int(1)).unwrap();
        col.push_null();
        col.push_value(&Value::Float(2.5)).unwrap();
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.value(0), Value::Float(1.0));
        assert_eq!(col.value(1), Value::Null);
        assert_eq!(col.value(2), Value::Float(2.5));
    }

    #[test]
    fn from_values_coerces() {
        let col = ColumnVector::from_values(
            DataType::Float64,
            &[Value::Int(1), Value::Null, Value::Float(3.0)],
        )
        .unwrap();
        assert_eq!(col.data_type(), DataType::Float64);
        assert_eq!(col.value(0), Value::Float(1.0));
        assert!(col.value(1).is_null());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut col = ColumnVector::empty(DataType::Int64);
        assert!(col.push_value(&Value::from("x")).is_err());
    }

    #[test]
    fn filter_and_take() {
        let col = ColumnVector::from_i64(vec![10, 20, 30, 40]);
        let sel: Bitmap = [true, false, true, false].into_iter().collect();
        let filtered = col.filter(&sel);
        assert_eq!(filtered.as_i64().unwrap(), &[10, 30]);
        let taken = col.take(&[3, 3, 0]);
        assert_eq!(taken.as_i64().unwrap(), &[40, 40, 10]);
    }

    #[test]
    fn take_preserves_validity() {
        let mut col = ColumnVector::empty(DataType::Int64);
        col.push_value(&Value::Int(1)).unwrap();
        col.push_null();
        col.push_value(&Value::Int(3)).unwrap();
        let taken = col.take(&[1, 2]);
        assert!(taken.value(0).is_null());
        assert_eq!(taken.value(1), Value::Int(3));
    }

    #[test]
    fn append_merges_validity() {
        let mut a = ColumnVector::from_i64(vec![1, 2]);
        let mut b = ColumnVector::empty(DataType::Int64);
        b.push_null();
        b.push_value(&Value::Int(9)).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.null_count(), 1);
        assert!(a.value(2).is_null());
        assert_eq!(a.value(3), Value::Int(9));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = ColumnVector::from_i64(vec![1]);
        let b = ColumnVector::from_f64(vec![1.0]);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn cast_int_to_float_fast_path() {
        let col = ColumnVector::from_i64(vec![1, 2, 3]);
        let f = col.cast_to(DataType::Float64).unwrap();
        assert_eq!(f.as_f64().unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn selection_three_valued() {
        let mut col = ColumnVector::empty(DataType::Bool);
        col.push_value(&Value::Bool(true)).unwrap();
        col.push_value(&Value::Bool(false)).unwrap();
        col.push_null();
        let sel = col.to_selection().unwrap();
        assert!(sel.get(0));
        assert!(!sel.get(1));
        assert!(!sel.get(2), "NULL predicate must not select the row");
    }

    #[test]
    fn slice_returns_window() {
        let col = ColumnVector::from_str(vec!["a", "b", "c", "d"]);
        let s = col.slice(1, 2);
        assert_eq!(s.as_varchar().unwrap(), &["b".to_string(), "c".to_string()]);
    }
}
