//! Engine-wide observability: a lock-cheap [`MetricsRegistry`] of named
//! counters, gauges and log-scale histograms, plus the [`QueryProfile`]
//! tree of per-operator spans behind `EXPLAIN ANALYZE`.
//!
//! Design notes:
//!
//! * **Registry handles are the hot path.** Callers resolve a metric by
//!   name once (one short `RwLock` critical section) and keep the
//!   returned `Arc`; after that every update is a single relaxed atomic
//!   op, so instrumentation is safe to leave on in benchmarks.
//! * **Histograms are log₂-bucketed.** Sixty-five buckets cover the full
//!   `u64` range, which is plenty of resolution for latencies and row
//!   counts while keeping `record` branch-free. Quantiles report the
//!   *upper bound* of the bucket holding the q-th sample, so a reported
//!   p99 never understates the true p99 (conservative for alerting).
//! * **Metric names are `subsystem.metric`.** Every name is a dotted
//!   path of at least two non-empty `[a-z0-9_]` segments (`query.executed`,
//!   `repl.lag_bytes`); debug builds assert the convention at intern time
//!   so drift is caught by the test suite, not by a broken dashboard.
//! * **Profiles merge by plan node.** A [`ProfileBuilder`] span is keyed
//!   by the plan node's id; when the same node executes repeatedly (the
//!   body of an `ITERATE`, the build side probed per chunk) the
//!   executions fold into one [`OpSpan`] whose `calls` counts them.
//!
//! `hylite-common` is dependency-free, so everything here is built on
//! `std::sync` primitives only.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Metric instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. live table rows).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v as u64, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) as i64
    }
}

/// Number of log₂ buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)`, with bucket 0 reserved for zero.
const HIST_BUCKETS: usize = 65;

/// A log₂-scale histogram of `u64` samples (microseconds, row counts…).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile_from_buckets(&buckets, count, 0.50),
            p95: quantile_from_buckets(&buckets, count, 0.95),
            p99: quantile_from_buckets(&buckets, count, 0.99),
        }
    }
}

/// Estimate a quantile as the *upper bound* of the bucket holding the
/// q-th sample. With log₂ buckets the estimate is within 2× of the true
/// quantile and never below it, so reported tail latencies are
/// conservative rather than flattering.
fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64 * q).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            if i == 0 {
                return 0;
            }
            return if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        }
    }
    0
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Estimated median (bucket upper bound).
    pub p50: u64,
    /// Estimated 95th percentile (bucket upper bound).
    pub p95: u64,
    /// Estimated 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A process-wide table of named metrics.
///
/// Lookup takes a short lock; updates through the returned handles are
/// lock-free. Names are conventionally dotted paths such as
/// `query.executed` or `kmeans.centroid_shift_milli`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Whether `name` follows the `subsystem.metric` convention: at least two
/// dot-separated segments, each a non-empty run of `[a-z0-9_]`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut segments = 0;
    for segment in name.split('.') {
        if segment.is_empty()
            || !segment
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Get-or-insert a named instrument in one of the registry's maps.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    debug_assert!(
        valid_metric_name(name),
        "metric name '{name}' violates the subsystem.metric convention"
    );
    if let Some(found) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(found);
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Handle to the counter `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Handle to the gauge `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Handle to the histogram `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Consistent-enough point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], renderable as aligned
/// text or JSON.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// All histograms by name, pre-summarized.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Human-readable dump, one metric per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} min={} p50~{} p95~{} p99~{} max={}",
                h.count, h.sum, h.min, h.p50, h.p95, h.p99, h.max
            );
        }
        out
    }

    /// JSON object with `counters`/`gauges`/`histograms` sections.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_json_entries(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_json_entries(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"histograms\":{");
        push_json_entries(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                (
                    k,
                    format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4). Dotted names are prefixed with `hylite_` and
    /// mangled to `[a-zA-Z0-9_]` (`repl.lag_bytes` → `hylite_repl_lag_bytes`);
    /// histograms are exposed as summaries with `quantile` labels plus
    /// `_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        fn mangle(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 7);
            out.push_str("hylite_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = mangle(name);
            let _ = writeln!(out, "# TYPE {m} counter");
            let _ = writeln!(out, "{m} {v}");
        }
        for (name, v) in &self.gauges {
            let m = mangle(name);
            let _ = writeln!(out, "# TYPE {m} gauge");
            let _ = writeln!(out, "{m} {v}");
        }
        for (name, h) in &self.histograms {
            let m = mangle(name);
            let _ = writeln!(out, "# TYPE {m} summary");
            let _ = writeln!(out, "{m}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{m}{{quantile=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "{m}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{m}_sum {}", h.sum);
            let _ = writeln!(out, "{m}_count {}", h.count);
        }
        out
    }
}

/// Append `"key":value` pairs (values pre-rendered) to a JSON object body.
fn push_json_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{v}", k.replace('"', "\\\""));
    }
}

// ---------------------------------------------------------------------------
// Query profiles
// ---------------------------------------------------------------------------

/// Actual execution statistics for one operator of a query plan.
///
/// A span aggregates *every* execution of its plan node within one
/// statement: an operator inside an `ITERATE` body that ran 12 times
/// shows `calls = 12` and summed rows/time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpSpan {
    /// Identity of the plan node this span measured (the planner's node
    /// address; only used as an opaque key).
    pub node_id: usize,
    /// Operator name as printed by `EXPLAIN` (e.g. `HashJoin`).
    pub op_name: String,
    /// Number of times the operator ran.
    pub calls: u64,
    /// Total rows produced across all calls.
    pub rows_out: u64,
    /// Total chunks produced across all calls.
    pub chunks_out: u64,
    /// Total wall-clock time, inclusive of children.
    pub wall: Duration,
    /// Peak memory attributed to the operator (hash tables, sort
    /// buffers, generation working sets), in bytes.
    pub peak_mem_bytes: u64,
    /// Operator-specific annotations (`iterations`, `converged`, …).
    pub extras: BTreeMap<String, String>,
    /// Child operator spans.
    pub children: Vec<OpSpan>,
}

impl OpSpan {
    /// Total rows consumed: the sum of the children's output.
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.rows_out).sum()
    }

    /// Wall time minus the children's wall time (this operator's own
    /// work). Saturates at zero for merged loop spans where child time
    /// can exceed the parent measurement granularity.
    pub fn self_wall(&self) -> Duration {
        let child: Duration = self.children.iter().map(|c| c.wall).sum();
        self.wall.saturating_sub(child)
    }

    /// Fold another execution of the same plan node into this span.
    fn merge(&mut self, other: OpSpan) {
        debug_assert_eq!(self.node_id, other.node_id);
        self.calls += other.calls;
        self.rows_out += other.rows_out;
        self.chunks_out += other.chunks_out;
        self.wall += other.wall;
        self.peak_mem_bytes = self.peak_mem_bytes.max(other.peak_mem_bytes);
        self.extras.extend(other.extras);
        for child in other.children {
            merge_into(&mut self.children, child);
        }
    }

    fn find(&self, node_id: usize) -> Option<&OpSpan> {
        if self.node_id == node_id {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(node_id))
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        let _ = write!(
            out,
            "{indent}{} (actual rows={} chunks={} calls={} time={:.3}ms",
            self.op_name,
            self.rows_out,
            self.chunks_out,
            self.calls,
            self.wall.as_secs_f64() * 1e3,
        );
        if self.peak_mem_bytes > 0 {
            let _ = write!(out, " mem={}B", self.peak_mem_bytes);
        }
        out.push(')');
        for (k, v) in &self.extras {
            let _ = write!(out, " [{k}={v}]");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Merge `span` into `siblings`, folding by node id.
fn merge_into(siblings: &mut Vec<OpSpan>, span: OpSpan) {
    if let Some(existing) = siblings.iter_mut().find(|s| s.node_id == span.node_id) {
        existing.merge(span);
    } else {
        siblings.push(span);
    }
}

/// The complete per-operator execution profile of one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Top-level spans (a single root for ordinary statements).
    pub roots: Vec<OpSpan>,
    /// End-to-end wall time of the statement.
    pub total_wall: Duration,
}

impl QueryProfile {
    /// Look up the span for a plan node anywhere in the tree.
    pub fn find(&self, node_id: usize) -> Option<&OpSpan> {
        self.roots.iter().find_map(|r| r.find(node_id))
    }

    /// Render the span tree as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            root.render_into(&mut out, 0);
        }
        let _ = writeln!(out, "total: {:.3}ms", self.total_wall.as_secs_f64() * 1e3);
        out
    }
}

/// Incremental builder used by the executor: `enter` when an operator
/// starts, annotate via `note`/`observe_mem`, `exit` with its output
/// totals when it finishes.
#[derive(Debug)]
pub struct ProfileBuilder {
    frames: Vec<Frame>,
    roots: Vec<OpSpan>,
    started: Instant,
}

#[derive(Debug)]
struct Frame {
    span: OpSpan,
    entered: Instant,
}

impl Default for ProfileBuilder {
    fn default() -> Self {
        ProfileBuilder::new()
    }
}

impl ProfileBuilder {
    /// Start profiling a statement.
    pub fn new() -> Self {
        ProfileBuilder {
            frames: Vec::new(),
            roots: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Open a span for the plan node `node_id`.
    pub fn enter(&mut self, node_id: usize, op_name: &str) {
        self.frames.push(Frame {
            span: OpSpan {
                node_id,
                op_name: op_name.to_string(),
                calls: 1,
                ..OpSpan::default()
            },
            entered: Instant::now(),
        });
    }

    /// Attach a key/value annotation to the innermost open span.
    pub fn note(&mut self, key: &str, value: impl ToString) {
        if let Some(f) = self.frames.last_mut() {
            f.span.extras.insert(key.to_string(), value.to_string());
        }
    }

    /// Raise the innermost open span's peak memory to at least `bytes`.
    pub fn observe_mem(&mut self, bytes: u64) {
        if let Some(f) = self.frames.last_mut() {
            f.span.peak_mem_bytes = f.span.peak_mem_bytes.max(bytes);
        }
    }

    /// Close the innermost span, recording its output totals. Repeated
    /// executions of the same node under the same parent are folded
    /// together.
    pub fn exit(&mut self, rows_out: u64, chunks_out: u64) {
        let Some(mut frame) = self.frames.pop() else {
            debug_assert!(false, "ProfileBuilder::exit without matching enter");
            return;
        };
        frame.span.wall = frame.entered.elapsed();
        frame.span.rows_out = rows_out;
        frame.span.chunks_out = chunks_out;
        let siblings = match self.frames.last_mut() {
            Some(parent) => &mut parent.span.children,
            None => &mut self.roots,
        };
        merge_into(siblings, frame.span);
    }

    /// Finish the statement and return the assembled profile. Any spans
    /// left open (an operator returned early via `?`) are closed with
    /// zero output so the tree stays well-formed.
    pub fn finish(mut self) -> QueryProfile {
        while !self.frames.is_empty() {
            self.exit(0, 0);
        }
        QueryProfile {
            roots: self.roots,
            total_wall: self.started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("q.executed");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("q.executed").get(), 5);
        let g = reg.gauge("rows.live");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.gauge("rows.live").get(), 7);
        // Same name returns the same instrument.
        assert!(Arc::ptr_eq(&c, &reg.counter("q.executed")));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 3106);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // Quantiles report the upper bound of the covering bucket: the
        // 4th sample (3) lives in bucket [2,3], the tail samples (1000)
        // in bucket [512,1023].
        assert_eq!(s.p50, 3);
        assert_eq!(s.p95, 1023);
        assert_eq!(s.p99, 1023);
        assert!((s.mean() - 3106.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_pin_known_distributions() {
        // All samples identical: every quantile is that bucket's bound.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (1023, 1023, 1023));

        // Uniform powers of two: each value its own bucket, so the
        // quantile walk is exact. 100 samples = 10 per bucket.
        let h = Histogram::default();
        for exp in 0..10u32 {
            for _ in 0..10 {
                h.record(1u64 << exp); // buckets [1,1], [2,3], ... [512,1023]
            }
        }
        let s = h.snapshot();
        // rank(p50) = 50 → 5th bucket (values 16..31) → upper bound 31.
        assert_eq!(s.p50, 31);
        // rank(p95) = 95 → 10th bucket (512..1023) → 1023.
        assert_eq!(s.p95, 1023);
        assert_eq!(s.p99, 1023);

        // A single zero sample sits in the dedicated zero bucket.
        let h = Histogram::default();
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));

        // Quantiles never under-report: skewed distribution, 99 fast
        // samples (true p50/p95/p99 = 10) and one slow outlier.
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50, 15, "bucket [8,15] upper bound, >= true 10");
        assert_eq!(s.p95, 15);
        assert_eq!(s.p99, 15, "rank 99 of 100 still in the fast bucket");
        assert_eq!(s.max, 1_000_000, "the outlier shows up as max");
    }

    #[test]
    fn metric_name_convention() {
        assert!(valid_metric_name("query.executed"));
        assert!(valid_metric_name("repl.lag_bytes"));
        assert!(valid_metric_name("a.b.c_2"));
        assert!(!valid_metric_name("single"));
        assert!(!valid_metric_name("Upper.case"));
        assert!(!valid_metric_name("trailing.dot."));
        assert!(!valid_metric_name(".leading"));
        assert!(!valid_metric_name("spa ce.x"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::default().snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn snapshot_renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(2);
        reg.gauge("pool.free").set(-1);
        reg.histogram("op.us").record(7);
        let snap = reg.snapshot();
        let text = snap.render_text();
        assert!(text.contains("counter   a.b = 2"));
        assert!(text.contains("gauge     pool.free = -1"));
        assert!(text.contains("histogram op.us count=1"));
        let json = snap.render_json();
        assert!(json.contains("\"a.b\":2"));
        assert!(json.contains("\"pool.free\":-1"));
        assert!(json.contains("\"count\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn snapshot_renders_prometheus_text() {
        let reg = MetricsRegistry::new();
        reg.counter("repl.connects").add(3);
        reg.gauge("repl.lag_bytes").set(0);
        reg.histogram("query.wall_us").record(100);
        let prom = reg.snapshot().render_prometheus();
        assert!(prom.contains("# TYPE hylite_repl_connects counter"));
        assert!(prom.contains("hylite_repl_connects 3"));
        assert!(prom.contains("# TYPE hylite_repl_lag_bytes gauge"));
        assert!(prom.contains("hylite_repl_lag_bytes 0"));
        assert!(prom.contains("# TYPE hylite_query_wall_us summary"));
        assert!(prom.contains("hylite_query_wall_us{quantile=\"0.95\"} 127"));
        assert!(prom.contains("hylite_query_wall_us_sum 100"));
        assert!(prom.contains("hylite_query_wall_us_count 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().unwrap().starts_with("hylite_"), "{line}");
            assert!(parts.next().unwrap().parse::<i64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }

    #[test]
    fn profile_nesting_and_lookup() {
        let mut b = ProfileBuilder::new();
        b.enter(1, "Project");
        b.enter(2, "Filter");
        b.enter(3, "Scan");
        b.observe_mem(4096);
        b.exit(100, 1);
        b.exit(40, 1);
        b.exit(40, 1);
        let p = b.finish();
        assert_eq!(p.roots.len(), 1);
        let project = &p.roots[0];
        assert_eq!(project.op_name, "Project");
        assert_eq!(project.rows_in(), 40);
        let scan = p.find(3).unwrap();
        assert_eq!(scan.rows_out, 100);
        assert_eq!(scan.peak_mem_bytes, 4096);
        assert!(p.render().contains("Scan (actual rows=100"));
    }

    #[test]
    fn repeated_node_merges_with_call_count() {
        let mut b = ProfileBuilder::new();
        b.enter(10, "Iterate");
        for i in 0..5 {
            b.enter(11, "Step");
            b.enter(12, "Scan");
            b.exit(100, 1);
            b.exit(20 + i, 1);
        }
        b.note("iterations", 5);
        b.exit(24, 1);
        let p = b.finish();
        let step = p.find(11).unwrap();
        assert_eq!(step.calls, 5);
        assert_eq!(step.rows_out, 20 + 21 + 22 + 23 + 24);
        let scan = p.find(12).unwrap();
        assert_eq!(scan.calls, 5);
        assert_eq!(scan.rows_out, 500);
        assert_eq!(p.find(10).unwrap().extras.get("iterations").unwrap(), "5");
    }

    #[test]
    fn unbalanced_exit_is_closed_by_finish() {
        let mut b = ProfileBuilder::new();
        b.enter(1, "Root");
        b.enter(2, "Child");
        // Operator bailed with `?` — finish() must still produce a tree.
        let p = b.finish();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].children.len(), 1);
    }
}
