//! The `hylite` virtual schema: SQL-queryable system views.
//!
//! The paper's thesis — analytics belongs *inside* the relational store,
//! expressed in SQL — applies to the system's own operational state too.
//! This module defines the read-only virtual views any session can query
//! with plain `SELECT`s (`hylite.metrics`, `hylite.connections`,
//! `hylite.replication`, `hylite.wal`, `hylite.sessions`,
//! `hylite.slow_queries`), plus the plumbing that lets every layer of the
//! stack contribute rows without layering violations:
//!
//! * [`SystemView`] enumerates the views and owns their (stable) schemas.
//! * [`SystemViewProvider`] is implemented by whoever holds the state —
//!   the database core for metrics/WAL/sessions/slow queries, the server
//!   for connections and primary-side replication streams, a replica for
//!   its own apply progress.
//! * [`SystemViewHub`] fans a scan out to every registered provider and
//!   concatenates their rows. Providers are held weakly so a shut-down
//!   server simply stops contributing rows.
//! * [`SlowQueryLog`] is the bounded ring buffer behind
//!   `hylite.slow_queries` (`SET slow_query_ms` arms it).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, RwLock, Weak};

use crate::schema::{Field, Schema, SchemaRef};
use crate::types::DataType;
use crate::value::Value;

/// The virtual schema name every system view lives under.
pub const SYSTEM_SCHEMA: &str = "hylite";

/// One of the read-only system views in the `hylite` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemView {
    /// Every counter, gauge and histogram in the metrics registry.
    Metrics,
    /// Live wire connections on this node.
    Connections,
    /// Replication state: one row per attached replica stream on a
    /// primary, one self-row on a replica.
    Replication,
    /// The node's write-ahead-log position and durability mode.
    Wal,
    /// Engine sessions (embedded and wire) with statement counters.
    Sessions,
    /// The bounded slow-query ring buffer (`SET slow_query_ms`).
    SlowQueries,
    /// Per-table segment storage: on-disk bytes, compression ratio, and
    /// the shared buffer pool's hit rate.
    Storage,
    /// Backup and WAL-archive state: the last completed backup plus the
    /// archive watermark/lag on this node.
    Backups,
}

/// All views, in catalog order.
pub const ALL_SYSTEM_VIEWS: [SystemView; 8] = [
    SystemView::Metrics,
    SystemView::Connections,
    SystemView::Replication,
    SystemView::Wal,
    SystemView::Sessions,
    SystemView::SlowQueries,
    SystemView::Storage,
    SystemView::Backups,
];

impl SystemView {
    /// Resolve a (lowercased) qualified table name to a view.
    pub fn from_name(name: &str) -> Option<SystemView> {
        match name {
            "hylite.metrics" => Some(SystemView::Metrics),
            "hylite.connections" => Some(SystemView::Connections),
            "hylite.replication" => Some(SystemView::Replication),
            "hylite.wal" => Some(SystemView::Wal),
            "hylite.sessions" => Some(SystemView::Sessions),
            "hylite.slow_queries" => Some(SystemView::SlowQueries),
            "hylite.storage" => Some(SystemView::Storage),
            "hylite.backups" => Some(SystemView::Backups),
            _ => None,
        }
    }

    /// The qualified name (`hylite.metrics`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            SystemView::Metrics => "hylite.metrics",
            SystemView::Connections => "hylite.connections",
            SystemView::Replication => "hylite.replication",
            SystemView::Wal => "hylite.wal",
            SystemView::Sessions => "hylite.sessions",
            SystemView::SlowQueries => "hylite.slow_queries",
            SystemView::Storage => "hylite.storage",
            SystemView::Backups => "hylite.backups",
        }
    }

    /// The view's output schema. Column order and types are a stable,
    /// documented interface (`docs/OBSERVABILITY.md`); tests pin them.
    pub fn schema(&self) -> Schema {
        use DataType::{Bool, Int64, Varchar};
        let fields = match self {
            SystemView::Metrics => vec![
                Field::new("kind", Varchar),
                Field::new("name", Varchar),
                Field::new("value", Int64),
                Field::new("count", Int64),
                Field::new("sum", Int64),
                Field::new("min", Int64),
                Field::new("p50", Int64),
                Field::new("p95", Int64),
                Field::new("p99", Int64),
                Field::new("max", Int64),
            ],
            SystemView::Connections => vec![
                Field::new("session_id", Int64),
                Field::new("peer", Varchar),
                Field::new("state", Varchar),
            ],
            SystemView::Replication => vec![
                Field::new("role", Varchar),
                Field::new("peer", Varchar),
                Field::new("state", Varchar),
                Field::new("epoch", Int64),
                Field::new("sent_lsn", Int64),
                Field::new("acked_lsn", Int64),
                Field::new("lag_frames", Int64),
                Field::new("lag_bytes", Int64),
                Field::new("bootstraps", Int64),
                Field::new("staleness_seconds", Int64),
                Field::new("node_state", Varchar),
                Field::new("reconnects", Int64),
                Field::new("rebootstraps", Int64),
            ],
            SystemView::Wal => vec![
                Field::new("role", Varchar),
                Field::new("epoch", Int64),
                Field::new("next_lsn", Int64),
                Field::new("durable_bytes", Int64),
                Field::new("sync_mode", Varchar),
            ],
            SystemView::Sessions => vec![
                Field::new("session_id", Int64),
                Field::new("statements", Int64),
                Field::new("errors", Int64),
                Field::new("in_transaction", Bool),
                Field::new("last_trace_id", Int64),
                Field::new("age_seconds", Int64),
            ],
            SystemView::SlowQueries => vec![
                Field::new("trace_id", Int64),
                Field::new("session_id", Int64),
                Field::new("sql", Varchar),
                Field::new("wall_us", Int64),
                Field::new("rows", Int64),
                Field::new("verdict", Varchar),
                Field::new("plan", Varchar),
            ],
            SystemView::Storage => vec![
                Field::new("table_name", Varchar),
                Field::new("segments", Int64),
                Field::new("disk_segments", Int64),
                Field::new("on_disk_bytes", Int64),
                Field::new("logical_bytes", Int64),
                Field::new("compression_ratio_pct", Int64),
                Field::new("pool_hit_rate_pct", Int64),
            ],
            SystemView::Backups => vec![
                Field::new("last_backup_unix_ms", Int64),
                Field::new("dest", Varchar),
                Field::new("backup_lsn", Int64),
                Field::new("bytes", Int64),
                Field::new("segments", Int64),
                Field::new("verified", Bool),
                Field::new("incremental", Bool),
                Field::new("archive_watermark_lsn", Int64),
                Field::new("archive_lag_frames", Int64),
            ],
        };
        Schema::new(fields)
    }
}

/// A layer that can contribute rows to system views. Implementations
/// return `None` for views they know nothing about and `Some(rows)`
/// (possibly empty) for views they own a slice of.
pub trait SystemViewProvider: Send + Sync {
    /// Rows this provider contributes to `view` right now.
    fn system_view_rows(&self, view: SystemView) -> Option<Vec<Vec<Value>>>;
}

/// Registry of [`SystemViewProvider`]s; one per database. Providers are
/// held as weak references — a provider that is dropped (a stopped
/// server, a detached replica handle) silently stops contributing.
#[derive(Default)]
pub struct SystemViewHub {
    providers: RwLock<Vec<Weak<dyn SystemViewProvider>>>,
}

impl std::fmt::Debug for SystemViewHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self
            .providers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        write!(f, "SystemViewHub({n} providers)")
    }
}

impl SystemViewHub {
    /// An empty hub.
    pub fn new() -> SystemViewHub {
        SystemViewHub::default()
    }

    /// Register a provider. The hub keeps only a weak reference.
    pub fn register(&self, provider: Weak<dyn SystemViewProvider>) {
        let mut providers = self.providers.write().unwrap_or_else(|e| e.into_inner());
        providers.retain(|p| p.strong_count() > 0);
        providers.push(provider);
    }

    /// Scan a view: concatenate the rows of every live provider.
    pub fn scan(&self, view: SystemView) -> Vec<Vec<Value>> {
        let providers: Vec<Arc<dyn SystemViewProvider>> = self
            .providers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(Weak::upgrade)
            .collect();
        let mut rows = Vec::new();
        for p in providers {
            if let Some(mut r) = p.system_view_rows(view) {
                rows.append(&mut r);
            }
        }
        rows
    }
}

/// Build a qualified [`SchemaRef`] for a system view (binder helper).
pub fn system_view_schema(view: SystemView, qualifier: &str) -> SchemaRef {
    Arc::new(view.schema().with_qualifier(qualifier))
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// One captured slow statement.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The statement's trace id (also printed by `EXPLAIN ANALYZE`).
    pub trace_id: u64,
    /// Engine session id of the issuing session.
    pub session_id: u64,
    /// The SQL text as received.
    pub sql: String,
    /// End-to-end wall time in microseconds.
    pub wall_us: u64,
    /// Result rows (0 for errors and non-queries).
    pub rows: u64,
    /// How the statement ended: `ok`, `timeout`, `cancelled`,
    /// `budget_exceeded`, or `error`.
    pub verdict: String,
    /// The optimized logical plan (empty for non-queries).
    pub plan: String,
}

/// Default capacity of the slow-query ring buffer.
pub const SLOW_QUERY_LOG_DEFAULT_CAPACITY: usize = 128;

/// Bounded ring buffer of [`SlowQueryEntry`]s, shared by every session of
/// a database. When full, the oldest entry is evicted.
#[derive(Debug)]
pub struct SlowQueryLog {
    inner: Mutex<SlowLogInner>,
}

#[derive(Debug)]
struct SlowLogInner {
    entries: VecDeque<SlowQueryEntry>,
    capacity: usize,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        SlowQueryLog::new(SLOW_QUERY_LOG_DEFAULT_CAPACITY)
    }
}

impl SlowQueryLog {
    /// A log holding at most `capacity` entries.
    pub fn new(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            inner: Mutex::new(SlowLogInner {
                entries: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Append an entry, evicting the oldest when full.
    pub fn push(&self, entry: SlowQueryEntry) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while inner.entries.len() >= inner.capacity {
            inner.entries.pop_front();
        }
        inner.entries.push_back(entry);
    }

    /// Change the capacity (`SET slow_query_log_size`), evicting oldest
    /// entries if the log shrinks below its current length.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.capacity = capacity.max(1);
        while inner.entries.len() > inner.capacity {
            inner.entries.pop_front();
        }
    }

    /// Copy of the current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_names_roundtrip() {
        for view in ALL_SYSTEM_VIEWS {
            assert_eq!(SystemView::from_name(view.name()), Some(view));
            assert!(view.name().starts_with("hylite."));
            assert!(!view.schema().is_empty());
        }
        assert_eq!(SystemView::from_name("hylite.nope"), None);
        assert_eq!(SystemView::from_name("metrics"), None);
    }

    #[test]
    fn hub_concatenates_and_drops_dead_providers() {
        struct Fixed(Vec<Vec<Value>>);
        impl SystemViewProvider for Fixed {
            fn system_view_rows(&self, view: SystemView) -> Option<Vec<Vec<Value>>> {
                (view == SystemView::Wal).then(|| self.0.clone())
            }
        }
        let hub = SystemViewHub::new();
        let a: Arc<dyn SystemViewProvider> = Arc::new(Fixed(vec![vec![Value::Int(1)]]));
        let b: Arc<dyn SystemViewProvider> = Arc::new(Fixed(vec![vec![Value::Int(2)]]));
        hub.register(Arc::downgrade(&a));
        hub.register(Arc::downgrade(&b));
        assert_eq!(hub.scan(SystemView::Wal).len(), 2);
        assert_eq!(hub.scan(SystemView::Metrics).len(), 0);
        drop(b);
        assert_eq!(hub.scan(SystemView::Wal), vec![vec![Value::Int(1)]]);
    }

    fn entry(trace: u64, sql: &str) -> SlowQueryEntry {
        SlowQueryEntry {
            trace_id: trace,
            session_id: 7,
            sql: sql.to_string(),
            wall_us: 1000,
            rows: 0,
            verdict: "ok".into(),
            plan: String::new(),
        }
    }

    #[test]
    fn slow_log_evicts_oldest() {
        let log = SlowQueryLog::new(2);
        log.push(entry(1, "a"));
        log.push(entry(2, "b"));
        log.push(entry(3, "c"));
        let sqls: Vec<String> = log.entries().into_iter().map(|e| e.sql).collect();
        assert_eq!(sqls, vec!["b".to_string(), "c".to_string()]);
        log.set_capacity(1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].sql, "c");
    }
}
