//! Relation schemas: named, typed fields with optional table qualifiers.

use std::fmt;
use std::sync::Arc;

use crate::{DataType, HyError, Result};

/// One column of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Optional table/alias qualifier (`edges` in `edges.src`).
    pub qualifier: Option<String>,
    /// Column name. Stored lowercase; SQL identifiers are case-insensitive.
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// A nullable, unqualified field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            qualifier: None,
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: true,
        }
    }

    /// Attach a table qualifier.
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Field {
        self.qualifier = Some(qualifier.into().to_ascii_lowercase());
        self
    }

    /// Mark the field non-nullable.
    pub fn not_null(mut self) -> Field {
        self.nullable = false;
        self
    }

    /// `qualifier.name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qualified_name(), self.data_type)
    }
}

/// An ordered list of [`Field`]s describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared, immutable schema handle (plans and chunks pass these around).
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Empty schema (zero columns), used by DDL/DML result relations.
    pub fn empty() -> Schema {
        Schema { fields: vec![] }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// `qualifier == None` matches any field with that name but errors if
    /// the name is ambiguous. Matching is case-insensitive.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(|q| q.to_ascii_lowercase());
        let mut hit: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            let matches = match &qualifier {
                Some(q) => f.qualifier.as_deref() == Some(q.as_str()) && f.name == name,
                None => f.name == name,
            };
            if matches {
                if hit.is_some() {
                    return Err(HyError::Bind(format!(
                        "ambiguous column reference '{name}'"
                    )));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| {
            let full = match &qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            HyError::Bind(format!("unknown column '{full}'"))
        })
    }

    /// Index of an unqualified name, if present and unambiguous.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.resolve(None, name)
    }

    /// Concatenate two schemas (for joins), keeping qualifiers.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Copy of this schema with every qualifier replaced by `alias`.
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.clone().with_qualifier(alias))
                .collect(),
        }
    }

    /// Copy with all qualifiers stripped (e.g. for final query output).
    pub fn without_qualifiers(&self) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field {
                    qualifier: None,
                    ..f.clone()
                })
                .collect(),
        }
    }

    /// Column data types in order.
    pub fn types(&self) -> Vec<DataType> {
        self.fields.iter().map(|f| f.data_type).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("x", DataType::Float64).with_qualifier("a"),
            Field::new("y", DataType::Float64).with_qualifier("a"),
            Field::new("x", DataType::Int64).with_qualifier("b"),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.resolve(Some("a"), "x").unwrap(), 0);
        assert_eq!(s.resolve(Some("b"), "x").unwrap(), 2);
        assert_eq!(s.resolve(Some("A"), "X").unwrap(), 0, "case-insensitive");
    }

    #[test]
    fn resolve_unqualified_ambiguous() {
        let s = sample();
        assert!(matches!(s.resolve(None, "x"), Err(HyError::Bind(_))));
        assert_eq!(s.resolve(None, "y").unwrap(), 1);
    }

    #[test]
    fn resolve_unknown() {
        let s = sample();
        assert!(s.resolve(None, "z").is_err());
        assert!(s.resolve(Some("c"), "x").is_err());
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let t = Schema::new(vec![Field::new("k", DataType::Int64)]);
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        assert_eq!(j.field(3).name, "k");
    }

    #[test]
    fn requalify_and_strip() {
        let s = sample().with_qualifier("t");
        assert!(s
            .fields()
            .iter()
            .all(|f| f.qualifier.as_deref() == Some("t")));
        let s = s.without_qualifiers();
        assert!(s.fields().iter().all(|f| f.qualifier.is_none()));
    }

    #[test]
    fn display_renders() {
        let s = Schema::new(vec![Field::new("v", DataType::Int64)]);
        assert_eq!(s.to_string(), "(v BIGINT)");
    }
}
