//! Injectable network I/O: the wire twin of [`crate::faultfs`].
//!
//! Every socket the system owns — the server accept loop, the
//! replication streamer, the replica apply loop, and the client/router
//! transports — goes through the [`NetVfs`] trait, which has two
//! implementations:
//!
//! * [`StdNet`] — the real thing: plain `TcpStream` connects and a
//!   zero-overhead stream wrapper.
//! * [`FaultNet`] — a deterministic, seeded fault injector. Faults are
//!   armed per *fault point* (a name like `"repl.apply"` identifying
//!   which socket family they hit) and include connect refusal,
//!   mid-frame connection reset after a byte budget, asymmetric
//!   partition, added latency with seeded jitter, slow-read throttling,
//!   and short writes.
//!
//! The transports call [`NetHandle::connect_timeout`] /
//! [`NetHandle::wrap`] at registered fault points; on [`StdNet`] these
//! are free, on [`FaultNet`] they are the trigger mechanism. Faults are
//! modeled as deterministic *errors*, never silent hangs: an op crossing
//! a partition fails immediately with a typed `io::Error`, so tests and
//! the chaos harness stay time-bounded. Healing ([`FaultNet::heal`])
//! restores normal service; existing broken streams stay broken (their
//! callers reconnect), exactly like a real partition healing.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault point: the server's accept loop wrapping every inbound client
/// connection.
pub const NP_SERVER_ACCEPT: &str = "server.accept";
/// Fault point: the primary-side replication streamer (an accepted
/// connection re-scoped once the Replicate handshake identifies it).
pub const NP_REPL_STREAM: &str = "repl.stream";
/// Fault point: the replica apply loop's outbound connection to its
/// primary.
pub const NP_REPL_APPLY: &str = "repl.apply";
/// Fault point: client and router outbound connections.
pub const NP_CLIENT_CONNECT: &str = "client.connect";

/// Every registered network fault point. The chaos harness iterates this
/// list; adding a fault point without registering it here means the
/// harness never exercises it.
pub const NET_FAULT_POINTS: &[&str] = &[
    NP_SERVER_ACCEPT,
    NP_REPL_STREAM,
    NP_REPL_APPLY,
    NP_CLIENT_CONNECT,
];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The network operations the transports need, small enough to fake
/// deterministically. All methods are fault-point-scoped: the `point`
/// names which socket family the call belongs to.
pub trait NetVfs: Send + Sync + fmt::Debug {
    /// Connect to `addr` within `timeout`, subject to any faults armed at
    /// `point` (connect refusal, partition, latency).
    fn connect_timeout(
        &self,
        point: &str,
        addr: &SocketAddr,
        timeout: Duration,
    ) -> io::Result<NetStream>;

    /// Wrap an already-established stream (e.g. one the accept loop
    /// produced) so subsequent reads/writes pass through the faults armed
    /// at `point`.
    fn wrap(&self, point: &str, stream: TcpStream) -> NetStream;
}

/// Cheap, clonable handle to a [`NetVfs`] — the field every transport
/// config carries. Defaults to [`StdNet`] (no injection, no overhead).
#[derive(Clone, Debug)]
pub struct NetHandle(Arc<dyn NetVfs>);

impl Default for NetHandle {
    fn default() -> NetHandle {
        NetHandle(Arc::new(StdNet))
    }
}

impl NetHandle {
    /// Wrap a [`NetVfs`] implementation.
    pub fn new(net: impl NetVfs + 'static) -> NetHandle {
        NetHandle(Arc::new(net))
    }

    /// See [`NetVfs::connect_timeout`].
    pub fn connect_timeout(
        &self,
        point: &str,
        addr: &SocketAddr,
        timeout: Duration,
    ) -> io::Result<NetStream> {
        self.0.connect_timeout(point, addr, timeout)
    }

    /// Resolve `addr` and try each candidate with `timeout`, returning
    /// the first stream that connects (the `&str`-address convenience
    /// used by the replica apply loop and admin one-shots).
    pub fn connect(&self, point: &str, addr: &str, timeout: Duration) -> io::Result<NetStream> {
        let mut last = None;
        for a in addr.to_socket_addrs()? {
            match self.0.connect_timeout(point, &a, timeout) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: no addresses"))
        }))
    }

    /// See [`NetVfs::wrap`].
    pub fn wrap(&self, point: &str, stream: TcpStream) -> NetStream {
        self.0.wrap(point, stream)
    }
}

// ---------------------------------------------------------------------------
// StdNet — the real network
// ---------------------------------------------------------------------------

/// [`NetVfs`] backed by plain `std::net` with no fault injection.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdNet;

impl NetVfs for StdNet {
    fn connect_timeout(
        &self,
        point: &str,
        addr: &SocketAddr,
        timeout: Duration,
    ) -> io::Result<NetStream> {
        let inner = TcpStream::connect_timeout(addr, timeout)?;
        Ok(self.wrap(point, inner))
    }

    fn wrap(&self, point: &str, stream: TcpStream) -> NetStream {
        NetStream {
            inner: stream,
            point: point.to_owned(),
            state: None,
        }
    }
}

// ---------------------------------------------------------------------------
// FaultNet — deterministic fault injection
// ---------------------------------------------------------------------------

/// Faults armed at one fault point. All slots compose: a point can have
/// latency *and* a reset budget at once.
#[derive(Debug, Default, Clone)]
struct PointFaults {
    /// Refuse the next N connect attempts with `ConnectionRefused`.
    refuse_connects: usize,
    /// After this many more bytes cross the point's streams (reads and
    /// writes combined), fail the op with `ConnectionReset`, shut the
    /// socket down so the peer sees it too, and disarm. One-shot.
    reset_after: Option<u64>,
    /// Reads (inbound) at this point fail deterministically.
    partition_inbound: bool,
    /// Writes and connects (outbound) at this point fail.
    partition_outbound: bool,
    /// Sleep `base` plus seeded jitter up to `jitter` before every op.
    latency: Option<(Duration, Duration)>,
    /// Serve at most this many bytes per read call.
    slow_read_max: Option<usize>,
    /// Accept at most this many bytes per write call (exercises the
    /// callers' `write_all` looping).
    short_write_max: Option<usize>,
}

#[derive(Debug, Default)]
struct NetState {
    rng: u64,
    points: BTreeMap<String, PointFaults>,
    /// Connect/wrap arrivals per point (test inspection).
    hits: BTreeMap<String, usize>,
}

/// Deterministic, seeded [`NetVfs`] with scriptable faults. Clone-cheap
/// (`Arc` inside): hand one instance to the servers/clients under test
/// and keep a handle to script faults and heal.
#[derive(Debug, Clone, Default)]
pub struct FaultNet {
    state: Arc<Mutex<NetState>>,
}

impl FaultNet {
    /// A fault-free injector whose latency jitter derives from `seed`.
    pub fn new(seed: u64) -> FaultNet {
        FaultNet {
            state: Arc::new(Mutex::new(NetState {
                rng: seed,
                ..NetState::default()
            })),
        }
    }

    fn with_point(&self, point: &str, f: impl FnOnce(&mut PointFaults)) {
        let mut s = self.state.lock().unwrap();
        f(s.points.entry(point.to_owned()).or_default());
    }

    /// Refuse the next `n` connect attempts at `point`.
    pub fn refuse_connects(&self, point: &str, n: usize) {
        self.with_point(point, |p| p.refuse_connects = n);
    }

    /// Reset (mid-frame, if a frame happens to straddle the budget) the
    /// point's traffic after `bytes` more bytes cross it. One-shot: the
    /// fault disarms when it fires, so reconnects succeed.
    pub fn reset_after(&self, point: &str, bytes: u64) {
        self.with_point(point, |p| p.reset_after = Some(bytes));
    }

    /// Partition the point: `inbound` blocks reads, `outbound` blocks
    /// writes and connects. Blocked ops fail deterministically (no
    /// hangs). Asymmetric partitions set only one direction.
    pub fn partition(&self, point: &str, inbound: bool, outbound: bool) {
        self.with_point(point, |p| {
            p.partition_inbound = inbound;
            p.partition_outbound = outbound;
        });
    }

    /// Add `base` + seeded jitter in `[0, jitter)` of latency to every
    /// op at the point.
    pub fn latency(&self, point: &str, base: Duration, jitter: Duration) {
        self.with_point(point, |p| p.latency = Some((base, jitter)));
    }

    /// Throttle reads at the point to at most `max` bytes per call.
    pub fn slow_reads(&self, point: &str, max: usize) {
        self.with_point(point, |p| p.slow_read_max = Some(max.max(1)));
    }

    /// Truncate writes at the point to at most `max` bytes per call.
    pub fn short_writes(&self, point: &str, max: usize) {
        self.with_point(point, |p| p.short_write_max = Some(max.max(1)));
    }

    /// Clear every fault at `point`. Streams already broken by a reset
    /// stay broken (their owners reconnect); new ops flow normally.
    pub fn heal(&self, point: &str) {
        let mut s = self.state.lock().unwrap();
        s.points.remove(point);
    }

    /// Clear every fault at every point.
    pub fn heal_all(&self) {
        self.state.lock().unwrap().points.clear();
    }

    /// How many connects/wraps have arrived at `point`.
    pub fn hits(&self, point: &str) -> usize {
        self.state
            .lock()
            .unwrap()
            .hits
            .get(point)
            .copied()
            .unwrap_or(0)
    }

    /// Decide what happens to one read/write of `want` bytes at `point`.
    fn plan_op(&self, point: &str, want: usize, read: bool) -> OpPlan {
        let mut s = self.state.lock().unwrap();
        let mut sleep = None;
        if let Some((base, jitter)) = s.points.get(point).and_then(|p| p.latency) {
            let j = if jitter.is_zero() {
                Duration::ZERO
            } else {
                let nanos = jitter.as_nanos().max(1) as u64;
                Duration::from_nanos(splitmix64(&mut s.rng) % nanos)
            };
            sleep = Some(base + j);
        }
        // Re-borrow mutably for the budget bookkeeping.
        let Some(p) = s.points.get_mut(point) else {
            return OpPlan {
                sleep,
                limit: want,
                error: None,
            };
        };
        if read && p.partition_inbound {
            return OpPlan {
                sleep,
                limit: 0,
                error: Some(partition_error(point, "inbound")),
            };
        }
        if !read && p.partition_outbound {
            return OpPlan {
                sleep,
                limit: 0,
                error: Some(partition_error(point, "outbound")),
            };
        }
        let mut limit = want;
        if read {
            if let Some(max) = p.slow_read_max {
                limit = limit.min(max);
            }
        } else if let Some(max) = p.short_write_max {
            limit = limit.min(max);
        }
        if let Some(budget) = p.reset_after {
            if (limit as u64) >= budget {
                // Budget exhausted by this op: fire the reset and disarm.
                p.reset_after = None;
                return OpPlan {
                    sleep,
                    limit: 0,
                    error: Some(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        format!("injected connection reset at '{point}'"),
                    )),
                };
            }
            p.reset_after = Some(budget - limit as u64);
        }
        OpPlan {
            sleep,
            limit,
            error: None,
        }
    }
}

fn partition_error(point: &str, direction: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("injected {direction} partition at '{point}'"),
    )
}

struct OpPlan {
    sleep: Option<Duration>,
    limit: usize,
    error: Option<io::Error>,
}

impl NetVfs for FaultNet {
    fn connect_timeout(
        &self,
        point: &str,
        addr: &SocketAddr,
        timeout: Duration,
    ) -> io::Result<NetStream> {
        let sleep = {
            let mut s = self.state.lock().unwrap();
            *s.hits.entry(point.to_owned()).or_insert(0) += 1;
            let mut sleep = None;
            if let Some((base, jitter)) = s.points.get(point).and_then(|p| p.latency) {
                let j = if jitter.is_zero() {
                    Duration::ZERO
                } else {
                    let nanos = jitter.as_nanos().max(1) as u64;
                    Duration::from_nanos(splitmix64(&mut s.rng) % nanos)
                };
                sleep = Some(base + j);
            }
            if let Some(p) = s.points.get_mut(point) {
                if p.refuse_connects > 0 {
                    p.refuse_connects -= 1;
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("injected connect refusal at '{point}'"),
                    ));
                }
                if p.partition_outbound {
                    return Err(partition_error(point, "outbound"));
                }
            }
            sleep
        };
        if let Some(d) = sleep {
            std::thread::sleep(d);
        }
        let inner = TcpStream::connect_timeout(addr, timeout)?;
        // Hits were already counted above; build directly so wrap() does
        // not double-count this arrival.
        Ok(NetStream {
            inner,
            point: point.to_owned(),
            state: Some(self.clone()),
        })
    }

    fn wrap(&self, point: &str, stream: TcpStream) -> NetStream {
        {
            let mut s = self.state.lock().unwrap();
            *s.hits.entry(point.to_owned()).or_insert(0) += 1;
        }
        NetStream {
            inner: stream,
            point: point.to_owned(),
            state: Some(self.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// NetStream — the stream wrapper every transport speaks
// ---------------------------------------------------------------------------

/// A `TcpStream` wrapped with an (optional) fault injector. With no
/// injector ([`StdNet`]) reads and writes delegate directly; with one
/// ([`FaultNet`]) every op consults the faults armed at the stream's
/// fault point first.
#[derive(Debug)]
pub struct NetStream {
    inner: TcpStream,
    point: String,
    state: Option<FaultNet>,
}

impl NetStream {
    /// The fault point this stream reports to.
    pub fn point(&self) -> &str {
        &self.point
    }

    /// Clone the stream: both handles share the socket and the fault
    /// state (as with `TcpStream::try_clone`).
    pub fn try_clone(&self) -> io::Result<NetStream> {
        Ok(NetStream {
            inner: self.inner.try_clone()?,
            point: self.point.clone(),
            state: self.state.clone(),
        })
    }

    /// Re-scope the stream to a different fault point (the replication
    /// streamer does this once a Replicate handshake identifies an
    /// accepted connection as a replica's).
    pub fn rescope(&mut self, point: &str) {
        self.point = point.to_owned();
        if let Some(net) = &self.state {
            let mut s = net.state.lock().unwrap();
            *s.hits.entry(point.to_owned()).or_insert(0) += 1;
        }
    }

    /// A raw clone of the underlying socket, bypassing fault injection.
    /// The server drain path keeps one per session purely to `shutdown`
    /// sockets at exit — injecting faults there would let a scripted
    /// partition block shutdown.
    pub fn raw_try_clone(&self) -> io::Result<TcpStream> {
        self.inner.try_clone()
    }

    /// See [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// See [`TcpStream::set_write_timeout`].
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    /// See [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.inner.set_nodelay(on)
    }

    /// See [`TcpStream::shutdown`].
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// See [`TcpStream::peer_addr`].
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// See [`TcpStream::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn apply_plan(&mut self, want: usize, read: bool) -> io::Result<usize> {
        let Some(net) = &self.state else {
            return Ok(want);
        };
        let plan = net.plan_op(&self.point, want, read);
        if let Some(d) = plan.sleep {
            std::thread::sleep(d);
        }
        if let Some(e) = plan.error {
            if e.kind() == io::ErrorKind::ConnectionReset {
                // Make the reset visible to the peer too.
                let _ = self.inner.shutdown(Shutdown::Both);
            }
            return Err(e);
        }
        Ok(plan.limit)
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let limit = self.apply_plan(buf.len(), true)?;
        self.inner.read(&mut buf[..limit])
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let limit = self.apply_plan(buf.len(), false)?;
        self.inner.write(&buf[..limit])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair(net: &FaultNet, point: &str) -> (NetStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = net
            .connect_timeout(point, &addr, Duration::from_secs(5))
            .unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn std_net_is_a_passthrough() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = StdNet
            .connect_timeout("p", &addr, Duration::from_secs(5))
            .unwrap();
        let (mut s, _) = listener.accept().unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn connect_refusal_is_counted_down() {
        let net = FaultNet::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        net.refuse_connects("p", 2);
        for _ in 0..2 {
            let err = net
                .connect_timeout("p", &addr, Duration::from_secs(5))
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        }
        assert!(net
            .connect_timeout("p", &addr, Duration::from_secs(5))
            .is_ok());
        assert_eq!(net.hits("p"), 3);
    }

    #[test]
    fn reset_fires_once_midstream_then_disarms() {
        let net = FaultNet::new(2);
        let (mut c, mut s) = pair(&net, "p");
        net.reset_after("p", 6);
        c.write_all(b"abcd").unwrap(); // budget 6 -> 2
        let err = c.write_all(b"efgh").unwrap_err(); // 4 >= 2: reset
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The peer sees the shutdown (EOF after the 4 delivered bytes).
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abcd");
        // Disarmed: a fresh stream at the same point flows freely.
        let (mut c2, mut s2) = pair(&net, "p");
        c2.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        s2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn partition_is_asymmetric_and_heals() {
        let net = FaultNet::new(3);
        let (mut c, mut s) = pair(&net, "p");
        net.partition("p", true, false); // inbound blocked, outbound open
        c.write_all(b"out").unwrap();
        let mut buf = [0u8; 3];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"out");
        s.write_all(b"inn").unwrap();
        let err = c.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Outbound partition refuses connects too.
        net.partition("p", false, true);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        assert!(net
            .connect_timeout("p", &addr, Duration::from_secs(5))
            .is_err());
        // Healing restores both directions on the surviving stream.
        net.heal("p");
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"inn");
    }

    #[test]
    fn slow_reads_and_short_writes_throttle_not_break() {
        let net = FaultNet::new(4);
        let (mut c, mut s) = pair(&net, "p");
        net.short_writes("p", 2);
        net.slow_reads("p", 3);
        // write_all loops over the short writes; read_exact over the
        // slow reads — the payload still arrives intact.
        let (mut cc, mut sc) = (c.try_clone().unwrap(), s.try_clone().unwrap());
        let writer = std::thread::spawn(move || cc.write_all(b"0123456789").unwrap());
        let mut buf = [0u8; 10];
        sc.read_exact(&mut buf).unwrap();
        writer.join().unwrap();
        assert_eq!(&buf, b"0123456789");
        // The throttle caps a single raw read.
        s.write_all(b"abcdef").unwrap();
        let n = c.read(&mut buf).unwrap();
        assert!(n <= 3, "slow read served {n} bytes");
    }

    #[test]
    fn latency_is_deterministic_per_seed() {
        let a = FaultNet::new(7);
        let b = FaultNet::new(7);
        for net in [&a, &b] {
            net.latency("p", Duration::from_millis(1), Duration::from_millis(2));
        }
        let plan_a = a.plan_op("p", 16, true).sleep.unwrap();
        let plan_b = b.plan_op("p", 16, true).sleep.unwrap();
        assert_eq!(plan_a, plan_b, "same seed, same jitter");
        assert!(plan_a >= Duration::from_millis(1));
    }

    #[test]
    fn rescope_reports_to_the_new_point() {
        let net = FaultNet::new(5);
        let (mut c, mut s) = pair(&net, "server.accept");
        net.partition("repl.stream", true, true);
        c.write_all(b"ok").unwrap(); // accept-point is clean
        let mut buf = [0u8; 2];
        s.read_exact(&mut buf).unwrap();
        c.rescope("repl.stream");
        assert!(c.write_all(b"xx").is_err(), "now under the repl partition");
        assert!(net.hits("repl.stream") >= 1);
    }

    #[test]
    fn net_fault_points_are_distinct() {
        let unique: std::collections::BTreeSet<_> = NET_FAULT_POINTS.iter().collect();
        assert_eq!(unique.len(), NET_FAULT_POINTS.len());
    }
}
