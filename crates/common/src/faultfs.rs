//! Injectable file I/O: the seam between the durability layer and the
//! operating system.
//!
//! Everything the WAL, checkpointer, and recovery code do to disk goes
//! through the [`Vfs`] trait, which has two implementations:
//!
//! * [`StdVfs`] — the real thing, a thin veneer over `std::fs` with
//!   `fsync` mapped to `File::sync_all` and a best-effort directory sync
//!   after renames.
//! * [`FaultVfs`] — a deterministic in-memory filesystem that models the
//!   *durability* semantics of a real one: every file tracks which prefix
//!   has been fsync'ed, and a simulated crash throws away everything
//!   after that watermark (optionally keeping a configurable prefix of
//!   the unsynced tail, which is how torn writes at byte offsets are
//!   produced). Named [crash points](Vfs::crash_point), failing fsyncs,
//!   and reboot are all scriptable, so recovery tests can iterate a
//!   crash-point matrix instead of hoping `kill -9` lands somewhere
//!   interesting.
//!
//! The durability code sprinkles `vfs.crash_point("wal.append")?` calls
//! at every point where a crash is interesting; on [`StdVfs`] these are
//! free no-ops, on [`FaultVfs`] they are the trigger mechanism.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::{HyError, Result};

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A writable file handle obtained from a [`Vfs`].
pub trait VfsFile: Send {
    /// Append `data` to the file. On a real filesystem this lands in the
    /// page cache; it is *not* durable until [`VfsFile::sync`] returns.
    fn write_all(&mut self, data: &[u8]) -> Result<()>;

    /// Flush and `fsync`: on success every previously written byte of
    /// this file survives a crash.
    fn sync(&mut self) -> Result<()>;
}

/// The filesystem operations the durability layer needs, small enough to
/// fake deterministically.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create the directory (and parents) if absent.
    fn create_dir_all(&self, dir: &Path) -> Result<()>;

    /// Create `path`, truncating any existing file.
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>>;

    /// Open `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>>;

    /// Read the entire file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;

    /// Read `len` bytes starting at `offset`. Errors if the range runs
    /// past the end of the file — segment readers use this to pull one
    /// block without touching the rest of the file.
    fn read_range(&self, path: &Path, offset: u64, len: u64) -> Result<Vec<u8>> {
        let data = self.read(path)?;
        let start = usize::try_from(offset)
            .map_err(|_| HyError::Storage(format!("read_range: bad offset {offset}")))?;
        let n = usize::try_from(len)
            .map_err(|_| HyError::Storage(format!("read_range: bad len {len}")))?;
        let end = start
            .checked_add(n)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| {
                HyError::Storage(format!(
                    "read_range: [{offset}, {offset}+{len}) past end of {} ({} bytes)",
                    path.display(),
                    data.len()
                ))
            })?;
        Ok(data[start..end].to_vec())
    }

    /// File names (not full paths) of the direct children of `dir`.
    /// Missing directories list as empty. Used by segment garbage
    /// collection to find orphaned files.
    fn list_dir(&self, dir: &Path) -> Result<Vec<String>> {
        let _ = dir;
        Ok(Vec::new())
    }

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically replace `to` with `from` (the checkpoint publish step).
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;

    /// Delete a file.
    fn remove(&self, path: &Path) -> Result<()>;

    /// Cut the file down to `len` bytes (used to drop a torn WAL tail and
    /// to reset the WAL after a checkpoint).
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;

    /// File size in bytes.
    fn len(&self, path: &Path) -> Result<u64>;

    /// Fsync a *directory*: make its entries (file creations, renames)
    /// durable. Creating and fsyncing a file is not enough on POSIX — a
    /// power loss can still lose the directory entry, and the file with
    /// it. Best-effort by default (in-memory backends model directory
    /// entries as always durable).
    fn sync_dir(&self, dir: &Path) -> Result<()> {
        let _ = dir;
        Ok(())
    }

    /// A named potential-crash location. Real backends do nothing;
    /// [`FaultVfs`] may simulate a crash here, after which every
    /// subsequent operation fails until [`FaultVfs::reboot`].
    fn crash_point(&self, name: &str) -> Result<()> {
        let _ = name;
        Ok(())
    }
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> HyError {
    // ENOSPC is its own typed error so the durability layer can flip the
    // node into read-only degraded mode instead of treating a full disk
    // like corruption.
    if e.raw_os_error() == Some(28) || e.kind() == std::io::ErrorKind::StorageFull {
        return HyError::DiskFull(format!("{op} {} failed: {e}", path.display()));
    }
    HyError::Storage(format!("{op} {} failed: {e}", path.display()))
}

fn disk_full_err(op: &str, path: &Path) -> HyError {
    HyError::DiskFull(format!(
        "{op} {} failed: no space left on device (injected)",
        path.display()
    ))
}

// ---------------------------------------------------------------------------
// StdVfs — the real filesystem
// ---------------------------------------------------------------------------

/// [`Vfs`] backed by `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile {
    file: std::fs::File,
    path: PathBuf,
}

impl VfsFile for StdFile {
    fn write_all(&mut self, data: &[u8]) -> Result<()> {
        self.file
            .write_all(data)
            .map_err(|e| io_err("write", &self.path, e))
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync", &self.path, e))
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create_dir_all", dir, e))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let file = std::fs::File::create(path).map_err(|e| io_err("create", path, e))?;
        Ok(Box::new(StdFile {
            file,
            path: path.to_owned(),
        }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| io_err("open_append", path, e))?;
        Ok(Box::new(StdFile {
            file,
            path: path.to_owned(),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| io_err("read", path, e))
    }

    fn read_range(&self, path: &Path, offset: u64, len: u64) -> Result<Vec<u8>> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = std::fs::File::open(path).map_err(|e| io_err("open", path, e))?;
        let size = file.metadata().map_err(|e| io_err("stat", path, e))?.len();
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(HyError::Storage(format!(
                "read_range: [{offset}, {offset}+{len}) past end of {} ({size} bytes)",
                path.display()
            )));
        }
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("seek", path, e))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| io_err("read_range", path, e))?;
        Ok(buf)
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<String>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err("read_dir", dir, e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read_dir", dir, e))?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to).map_err(|e| io_err("rename", from, e))?;
        // A rename is only durable once the directory entry is synced.
        if let Some(dir) = to.parent() {
            self.sync_dir(dir)?;
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        // Best-effort: some platforms refuse to open directories.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path).map_err(|e| io_err("remove", path, e))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open for truncate", path, e))?;
        file.set_len(len).map_err(|e| io_err("truncate", path, e))?;
        file.sync_all().map_err(|e| io_err("fsync", path, e))
    }

    fn len(&self, path: &Path) -> Result<u64> {
        std::fs::metadata(path)
            .map(|m| m.len())
            .map_err(|e| io_err("stat", path, e))
    }
}

// ---------------------------------------------------------------------------
// FaultVfs — deterministic fault injection
// ---------------------------------------------------------------------------

/// What happens to a file's unsynced tail when a simulated crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepUnsynced {
    /// Strict power-loss model: everything past the fsync watermark is
    /// lost. The default.
    Nothing,
    /// Process-kill model (`kill -9`): the page cache survives, so
    /// written-but-unsynced bytes are all still there after reboot.
    All,
    /// Torn write: each file keeps at most this many bytes of its
    /// unsynced tail — a write that was only partially persisted.
    Prefix(usize),
}

/// A scripted crash: fire at the `hit`-th arrival (1-based) at the named
/// crash point, treating unsynced data per `keep`.
#[derive(Debug, Clone)]
pub struct CrashSpec {
    /// Crash point name (see the `CRASH_POINTS` list in `hylite-storage`).
    pub point: String,
    /// Which arrival at the point triggers the crash (1 = first).
    pub hit: usize,
    /// Unsynced-tail policy at crash time.
    pub keep: KeepUnsynced,
}

impl CrashSpec {
    /// Crash at the first arrival at `point`, strict power-loss model.
    pub fn first(point: impl Into<String>) -> CrashSpec {
        CrashSpec {
            point: point.into(),
            hit: 1,
            keep: KeepUnsynced::Nothing,
        }
    }

    /// Same, but with an explicit unsynced-tail policy.
    pub fn first_keeping(point: impl Into<String>, keep: KeepUnsynced) -> CrashSpec {
        CrashSpec {
            point: point.into(),
            hit: 1,
            keep,
        }
    }
}

#[derive(Debug, Default)]
struct MemFile {
    content: Vec<u8>,
    /// Bytes `[0, synced_len)` survive a crash.
    synced_len: usize,
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<PathBuf, MemFile>,
    crash: Option<CrashSpec>,
    /// Fail the next N fsyncs (without advancing the durability
    /// watermark).
    fail_fsyncs: usize,
    /// Arrival counters per crash point name.
    hits: BTreeMap<String, usize>,
    crashed: bool,
    /// Simulated ENOSPC: while set, anything that grows the filesystem
    /// (create, write, fsync) fails with [`HyError::DiskFull`], while
    /// reads, truncates, and removes keep working — matching a real full
    /// disk, where space can still be *freed*.
    disk_full: bool,
}

impl FaultState {
    fn check_alive(&self) -> Result<()> {
        if self.crashed {
            return Err(HyError::Storage(
                "simulated crash: filesystem is down until reboot".into(),
            ));
        }
        Ok(())
    }

    fn apply_crash(&mut self, keep: KeepUnsynced) {
        for file in self.files.values_mut() {
            let keep_len = match keep {
                KeepUnsynced::Nothing => file.synced_len,
                KeepUnsynced::All => file.content.len(),
                KeepUnsynced::Prefix(n) => (file.synced_len
                    + n.min(file.content.len() - file.synced_len))
                .min(file.content.len()),
            };
            file.content.truncate(keep_len);
            file.synced_len = file.content.len().min(file.synced_len);
        }
        self.crashed = true;
    }
}

/// Deterministic in-memory [`Vfs`] with scriptable crashes, torn writes,
/// and failing fsyncs. Clone-cheap (`Arc` inside): hand one instance to
/// the database and keep a handle in the test to script faults and
/// reboot.
#[derive(Debug, Clone, Default)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fresh, empty, fault-free in-memory filesystem.
    pub fn new() -> FaultVfs {
        FaultVfs::default()
    }

    /// Arm a crash. Replaces any previously armed crash and resets the
    /// hit counters, so `spec.hit` counts from *now* — `CrashSpec::first`
    /// always means "the next time execution reaches this point".
    pub fn arm_crash(&self, spec: CrashSpec) {
        let mut s = self.state.lock().unwrap();
        s.crash = Some(spec);
        s.hits.clear();
    }

    /// Fail the next `n` fsyncs with an I/O error (data stays unsynced).
    pub fn fail_fsyncs(&self, n: usize) {
        self.state.lock().unwrap().fail_fsyncs = n;
    }

    /// Toggle simulated disk exhaustion. While on, `create`, `write_all`,
    /// and `sync` fail with [`HyError::DiskFull`]; reads, truncates, and
    /// removes still succeed (freeing space works on a full disk).
    pub fn set_disk_full(&self, full: bool) {
        self.state.lock().unwrap().disk_full = full;
    }

    /// Whether simulated disk exhaustion is currently on.
    pub fn disk_full(&self) -> bool {
        self.state.lock().unwrap().disk_full
    }

    /// Whether a scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Come back from a crash: operations work again, scripted faults and
    /// hit counters are cleared, durable file contents are untouched.
    pub fn reboot(&self) {
        let mut s = self.state.lock().unwrap();
        s.crashed = false;
        s.crash = None;
        s.fail_fsyncs = 0;
        s.hits.clear();
    }

    /// How many times the named crash point has been passed.
    pub fn hits(&self, point: &str) -> usize {
        self.state
            .lock()
            .unwrap()
            .hits
            .get(point)
            .copied()
            .unwrap_or(0)
    }

    /// Current size of a file (test inspection).
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        self.state
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.content.len())
    }

    /// Size of a file's fsync'ed (crash-surviving) prefix.
    pub fn durable_len(&self, path: &Path) -> Option<usize> {
        self.state
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.synced_len)
    }

    /// Flip bits in a file at the given byte offset (corruption testing;
    /// bypasses the crash model entirely).
    pub fn corrupt(&self, path: &Path, offset: usize, xor_mask: u8) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        let file = s
            .files
            .get_mut(path)
            .ok_or_else(|| HyError::Storage(format!("corrupt: no file {}", path.display())))?;
        if offset >= file.content.len() {
            return Err(HyError::Storage(format!(
                "corrupt: offset {offset} past end of {} ({} bytes)",
                path.display(),
                file.content.len()
            )));
        }
        file.content[offset] ^= xor_mask;
        Ok(())
    }
}

/// Write handle into a [`FaultVfs`] file.
#[derive(Debug)]
struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, data: &[u8]) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        if s.disk_full {
            return Err(disk_full_err("write", &self.path));
        }
        match s.files.get_mut(&self.path) {
            Some(f) => {
                f.content.extend_from_slice(data);
                Ok(())
            }
            None => Err(HyError::Storage(format!(
                "write: file {} was removed",
                self.path.display()
            ))),
        }
    }

    fn sync(&mut self) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        if s.disk_full {
            return Err(disk_full_err("fsync", &self.path));
        }
        if s.fail_fsyncs > 0 {
            s.fail_fsyncs -= 1;
            return Err(HyError::Storage(format!(
                "injected fsync failure on {}",
                self.path.display()
            )));
        }
        match s.files.get_mut(&self.path) {
            Some(f) => {
                f.synced_len = f.content.len();
                Ok(())
            }
            None => Err(HyError::Storage(format!(
                "fsync: file {} was removed",
                self.path.display()
            ))),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, _dir: &Path) -> Result<()> {
        self.state.lock().unwrap().check_alive()
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        if s.disk_full {
            return Err(disk_full_err("create", path));
        }
        s.files.insert(path.to_owned(), MemFile::default());
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_owned(),
        }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        s.files.entry(path.to_owned()).or_default();
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_owned(),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        s.files
            .get(path)
            .map(|f| f.content.clone())
            .ok_or_else(|| HyError::Storage(format!("read: no file {}", path.display())))
    }

    fn read_range(&self, path: &Path, offset: u64, len: u64) -> Result<Vec<u8>> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        let file = s
            .files
            .get(path)
            .ok_or_else(|| HyError::Storage(format!("read: no file {}", path.display())))?;
        let start = offset as usize;
        let end = start
            .checked_add(len as usize)
            .filter(|&e| e <= file.content.len())
            .ok_or_else(|| {
                HyError::Storage(format!(
                    "read_range: [{offset}, {offset}+{len}) past end of {} ({} bytes)",
                    path.display(),
                    file.content.len()
                ))
            })?;
        Ok(file.content[start..end].to_vec())
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<String>> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        let mut names = Vec::new();
        for path in s.files.keys() {
            if path.parent() == Some(dir) {
                if let Some(name) = path.file_name() {
                    names.push(name.to_string_lossy().into_owned());
                }
            }
        }
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock().unwrap();
        !s.crashed && s.files.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        let file = s
            .files
            .remove(from)
            .ok_or_else(|| HyError::Storage(format!("rename: no file {}", from.display())))?;
        // Modeled as atomic and immediately durable (StdVfs syncs the
        // directory after the rename for the same effect).
        s.files.insert(to.to_owned(), file);
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        s.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| HyError::Storage(format!("remove: no file {}", path.display())))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        let file = s
            .files
            .get_mut(path)
            .ok_or_else(|| HyError::Storage(format!("truncate: no file {}", path.display())))?;
        file.content.truncate(len as usize);
        file.synced_len = file.synced_len.min(file.content.len());
        Ok(())
    }

    fn len(&self, path: &Path) -> Result<u64> {
        let s = self.state.lock().unwrap();
        s.check_alive()?;
        s.files
            .get(path)
            .map(|f| f.content.len() as u64)
            .ok_or_else(|| HyError::Storage(format!("stat: no file {}", path.display())))
    }

    fn sync_dir(&self, _dir: &Path) -> Result<()> {
        // Directory entries are modeled as always durable; only the
        // crashed state matters.
        self.state.lock().unwrap().check_alive()
    }

    fn crash_point(&self, name: &str) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_alive()?;
        let count = s.hits.entry(name.to_owned()).or_insert(0);
        *count += 1;
        let count = *count;
        let fire = s
            .crash
            .as_ref()
            .is_some_and(|c| c.point == name && c.hit == count);
        if fire {
            let keep = s.crash.as_ref().map(|c| c.keep).unwrap();
            s.apply_crash(keep);
            return Err(HyError::Storage(format!("simulated crash at '{name}'")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_data_dies_in_a_crash() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("wal")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b"-volatile").unwrap();
        vfs.arm_crash(CrashSpec::first("boom"));
        assert!(vfs.crash_point("boom").is_err());
        assert!(vfs.crashed());
        // Everything errors until reboot.
        assert!(vfs.read(&p("wal")).is_err());
        vfs.reboot();
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"durable");
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("wal")).unwrap();
        f.write_all(b"AAAA").unwrap();
        f.sync().unwrap();
        f.write_all(b"BBBBBBBB").unwrap();
        vfs.arm_crash(CrashSpec::first_keeping("tear", KeepUnsynced::Prefix(3)));
        assert!(vfs.crash_point("tear").is_err());
        vfs.reboot();
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"AAAABBB");
    }

    #[test]
    fn kill_dash_nine_keeps_page_cache() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("wal")).unwrap();
        f.write_all(b"unsynced").unwrap();
        vfs.arm_crash(CrashSpec::first_keeping("kill", KeepUnsynced::All));
        assert!(vfs.crash_point("kill").is_err());
        vfs.reboot();
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"unsynced");
    }

    #[test]
    fn crash_fires_on_the_nth_hit() {
        let vfs = FaultVfs::new();
        vfs.arm_crash(CrashSpec {
            point: "x".into(),
            hit: 3,
            keep: KeepUnsynced::Nothing,
        });
        assert!(vfs.crash_point("x").is_ok());
        assert!(vfs.crash_point("y").is_ok(), "other points don't count");
        assert!(vfs.crash_point("x").is_ok());
        assert!(vfs.crash_point("x").is_err());
        assert_eq!(vfs.hits("x"), 3);
    }

    #[test]
    fn failing_fsync_does_not_advance_watermark() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("wal")).unwrap();
        f.write_all(b"data").unwrap();
        vfs.fail_fsyncs(1);
        assert!(f.sync().is_err());
        assert_eq!(vfs.durable_len(&p("wal")), Some(0));
        // The next fsync works.
        f.sync().unwrap();
        assert_eq!(vfs.durable_len(&p("wal")), Some(4));
    }

    #[test]
    fn disk_full_blocks_growth_but_not_frees() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("wal")).unwrap();
        f.write_all(b"settled").unwrap();
        f.sync().unwrap();
        vfs.set_disk_full(true);
        // Growth paths fail with the typed DiskFull error...
        assert!(matches!(f.write_all(b"more"), Err(HyError::DiskFull(_))));
        assert!(matches!(f.sync(), Err(HyError::DiskFull(_))));
        assert!(matches!(vfs.create(&p("seg")), Err(HyError::DiskFull(_))));
        // ...while reads, truncates, and removes still work.
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"settled");
        vfs.truncate(&p("wal"), 3).unwrap();
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"set");
        vfs.set_disk_full(false);
        f.write_all(b"tled").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"settled");
    }

    #[test]
    fn rename_is_atomic_and_durable() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("tmp")).unwrap();
        f.write_all(b"ckpt").unwrap();
        f.sync().unwrap();
        vfs.rename(&p("tmp"), &p("final")).unwrap();
        assert!(!vfs.exists(&p("tmp")));
        assert_eq!(vfs.read(&p("final")).unwrap(), b"ckpt");
    }

    #[test]
    fn read_range_and_list_dir() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("segments/seg_1")).unwrap();
        f.write_all(b"hello world").unwrap();
        drop(f);
        vfs.create(&p("segments/seg_2")).unwrap();
        vfs.create(&p("other/seg_3")).unwrap();
        assert_eq!(
            vfs.read_range(&p("segments/seg_1"), 6, 5).unwrap(),
            b"world"
        );
        assert!(vfs.read_range(&p("segments/seg_1"), 6, 6).is_err());
        assert!(vfs.read_range(&p("segments/seg_1"), u64::MAX, 1).is_err());
        let names = vfs.list_dir(&p("segments")).unwrap();
        assert_eq!(names, vec!["seg_1".to_string(), "seg_2".to_string()]);
        assert!(vfs.list_dir(&p("missing")).unwrap().is_empty());
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hylite-vfs-test-{}", std::process::id()));
        let vfs = StdVfs;
        vfs.create_dir_all(&dir).unwrap();
        let file = dir.join("probe");
        let mut f = vfs.create(&file).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read(&file).unwrap(), b"hello");
        assert_eq!(vfs.len(&file).unwrap(), 5);
        assert_eq!(vfs.read_range(&file, 1, 3).unwrap(), b"ell");
        assert!(vfs.read_range(&file, 4, 2).is_err());
        assert_eq!(vfs.list_dir(&dir).unwrap(), vec!["probe".to_string()]);
        vfs.truncate(&file, 2).unwrap();
        assert_eq!(vfs.read(&file).unwrap(), b"he");
        let renamed = dir.join("probe2");
        vfs.rename(&file, &renamed).unwrap();
        assert!(vfs.exists(&renamed) && !vfs.exists(&file));
        vfs.remove(&renamed).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
