//! Per-query resource governor: cooperative cancellation, statement
//! deadlines, and memory budgets.
//!
//! The paper's pitch is that analytics belongs *inside* the RDBMS because
//! the engine can govern long-running iterative workloads (ITERATE,
//! k-Means, PageRank) like any other query. This module provides the
//! mechanism: a [`Governor`] is created per statement and threaded through
//! the whole execution stack. Every operator dispatch, every scan morsel,
//! and every analytics iteration calls [`Governor::check`], so a runaway
//! query stops within one morsel or one iteration of the cancel request,
//! deadline, or budget violation.
//!
//! Three cooperating pieces:
//!
//! * [`CancelToken`] — an `Arc`-shareable atomic flag. A session hands the
//!   token out ([`CancelToken::cancel`] may be called from any thread);
//!   the executing query observes it at the next check point.
//! * a deadline — an absolute [`Instant`] derived from the session's
//!   `statement_timeout_ms` setting, checked at the same points.
//! * [`MemoryBudget`] — an atomic reservation/release accountant capped by
//!   the session's `memory_budget_mb` setting. Operators reserve bytes
//!   when they materialize intermediates and release them when those
//!   intermediates die; peak and denied reservations are tracked so the
//!   session can publish them into the engine's
//!   [`MetricsRegistry`](crate::telemetry::MetricsRegistry).
//!
//! Violations surface as the dedicated error taxonomy
//! [`HyError::Cancelled`], [`HyError::Timeout`], and
//! [`HyError::BudgetExceeded`], so callers (and tests) can tell *why* a
//! statement was aborted and react accordingly — the session itself stays
//! usable after any of the three.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{HyError, Result};

/// A cooperative cancellation flag, shared between the thread executing a
/// query and any thread that wants to stop it.
///
/// Cancellation is sticky: once [`cancel`](CancelToken::cancel) is called
/// the token stays set until [`reset`](CancelToken::reset). A session
/// resets its token after a statement actually aborted with
/// [`HyError::Cancelled`], so one cancel request kills at most one
/// statement and the session remains usable.
#[derive(Debug, Default)]
pub struct CancelToken(AtomicBool);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken(AtomicBool::new(false))
    }

    /// Request cancellation. Safe to call from any thread, any number of
    /// times; the running query aborts at its next governor check point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Clear the flag (called by the session once a statement has been
    /// aborted, so the *next* statement runs normally).
    pub fn reset(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// An atomic memory accountant with a hard cap.
///
/// Operators call [`try_reserve`](MemoryBudget::try_reserve) before (or
/// immediately after) materializing an intermediate and
/// [`release`](MemoryBudget::release) when it dies. The budget tracks the
/// current live total, the high-water mark, and how many reservations
/// were denied — all lock-free, so parallel morsel tasks can reserve
/// concurrently.
#[derive(Debug)]
pub struct MemoryBudget {
    /// Hard cap in bytes; `u64::MAX` means unlimited.
    limit: u64,
    /// Currently reserved (live) bytes.
    reserved: AtomicU64,
    /// High-water mark of `reserved`.
    peak: AtomicU64,
    /// Number of reservations refused because they would exceed `limit`.
    denied: AtomicU64,
}

impl MemoryBudget {
    /// A budget with no cap (every reservation succeeds).
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::with_limit(u64::MAX)
    }

    /// A budget capped at `limit_bytes`.
    pub fn with_limit(limit_bytes: u64) -> MemoryBudget {
        MemoryBudget {
            limit: limit_bytes,
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// The cap in bytes (`u64::MAX` = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Try to reserve `bytes`; returns `false` (and records a denial)
    /// when the reservation would push the live total past the cap.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let prev = self.reserved.fetch_add(bytes, Ordering::AcqRel);
        let now = prev.saturating_add(bytes);
        if now > self.limit {
            self.reserved.fetch_sub(bytes, Ordering::AcqRel);
            self.denied.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        true
    }

    /// Return `bytes` to the budget. Releasing more than is reserved
    /// saturates at zero rather than wrapping.
    pub fn release(&self, bytes: u64) {
        let mut cur = self.reserved.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.reserved.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Currently reserved (live) bytes.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Acquire)
    }

    /// High-water mark of reserved bytes over the budget's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// How many reservations were denied.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }
}

/// The per-statement governor: one cancel token, one optional deadline,
/// one memory budget.
///
/// Cheap to construct (a handful of atomics), so the session builds a
/// fresh one for every statement from its current settings. Execution
/// code holds it behind an `Arc` and calls [`check`](Governor::check) at
/// every operator dispatch / morsel / iteration, and
/// [`reserve`](Governor::reserve) / [`release`](Governor::release) around
/// materialized intermediates.
#[derive(Debug)]
pub struct Governor {
    cancel: Arc<CancelToken>,
    /// Absolute deadline plus the originating timeout (for the error
    /// message); `None` = no timeout.
    deadline: Option<(Instant, Duration)>,
    budget: MemoryBudget,
}

impl Governor {
    /// A governor that never fires: no deadline, unlimited budget, and a
    /// private token nobody cancels. Used wherever execution runs outside
    /// a session (unit tests, benches, internal subqueries).
    pub fn unlimited() -> Governor {
        Governor {
            cancel: Arc::new(CancelToken::new()),
            deadline: None,
            budget: MemoryBudget::unlimited(),
        }
    }

    /// A governor over a shared cancel token with an optional statement
    /// timeout (deadline = now + timeout) and an optional budget cap.
    pub fn new(
        cancel: Arc<CancelToken>,
        timeout: Option<Duration>,
        budget_bytes: Option<u64>,
    ) -> Governor {
        Governor {
            cancel,
            deadline: timeout.map(|t| (Instant::now() + t, t)),
            budget: budget_bytes.map_or_else(MemoryBudget::unlimited, MemoryBudget::with_limit),
        }
    }

    /// The shared cancel token.
    pub fn cancel_token(&self) -> &Arc<CancelToken> {
        &self.cancel
    }

    /// The memory budget.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// The cooperative check point: errors with [`HyError::Cancelled`] if
    /// cancellation was requested, or [`HyError::Timeout`] if the
    /// deadline has passed. Called at every operator dispatch, scan
    /// morsel, and analytics iteration — keep it cheap: one atomic load,
    /// plus one clock read when a deadline is set.
    pub fn check(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(HyError::Cancelled("query cancelled by user".into()));
        }
        if let Some((deadline, timeout)) = self.deadline {
            if Instant::now() >= deadline {
                return Err(HyError::Timeout(format!(
                    "statement timeout of {} ms exceeded",
                    timeout.as_millis()
                )));
            }
        }
        Ok(())
    }

    /// Reserve `bytes` against the budget, erroring with
    /// [`HyError::BudgetExceeded`] when the cap would be breached.
    pub fn reserve(&self, bytes: u64) -> Result<()> {
        if self.budget.try_reserve(bytes) {
            Ok(())
        } else {
            Err(HyError::BudgetExceeded(format!(
                "memory budget of {} bytes exceeded (live {} bytes + requested {} bytes)",
                self.budget.limit(),
                self.budget.reserved(),
                bytes
            )))
        }
    }

    /// Return `bytes` to the budget.
    pub fn release(&self, bytes: u64) {
        self.budget.release(bytes);
    }

    /// Reserve `bytes` and return an RAII guard that releases them when
    /// dropped — the idiomatic way to charge a transient working set
    /// (hash tables, analytics scratch arrays) for exactly its lifetime,
    /// including early-error paths.
    pub fn reserve_scoped(&self, bytes: u64) -> Result<Reservation<'_>> {
        self.reserve(bytes)?;
        Ok(Reservation {
            governor: self,
            bytes,
        })
    }
}

/// An RAII memory reservation from [`Governor::reserve_scoped`]; releases
/// its bytes on drop.
#[derive(Debug)]
pub struct Reservation<'a> {
    governor: &'a Governor,
    bytes: u64,
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.governor.release(self.bytes);
    }
}

impl Default for Governor {
    fn default() -> Self {
        Governor::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn unlimited_governor_never_fires() {
        let g = Governor::unlimited();
        g.check().unwrap();
        g.reserve(u64::MAX / 2).unwrap();
        g.check().unwrap();
    }

    #[test]
    fn cancelled_governor_errors() {
        let g = Governor::unlimited();
        g.cancel_token().cancel();
        assert!(matches!(g.check(), Err(HyError::Cancelled(_))));
    }

    #[test]
    fn expired_deadline_errors() {
        let g = Governor::new(
            Arc::new(CancelToken::new()),
            Some(Duration::from_millis(0)),
            None,
        );
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(g.check(), Err(HyError::Timeout(_))));
    }

    #[test]
    fn budget_reserve_release_peak_denied() {
        let b = MemoryBudget::with_limit(100);
        assert!(b.try_reserve(60));
        assert!(b.try_reserve(40));
        assert_eq!(b.reserved(), 100);
        assert_eq!(b.peak(), 100);
        assert!(!b.try_reserve(1), "over cap must be denied");
        assert_eq!(b.denied(), 1);
        b.release(50);
        assert_eq!(b.reserved(), 50);
        assert!(b.try_reserve(50));
        assert_eq!(b.peak(), 100, "peak is a high-water mark");
        // Saturating release never wraps.
        b.release(10_000);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn governor_budget_error_taxonomy() {
        let g = Governor::new(Arc::new(CancelToken::new()), None, Some(10));
        g.reserve(10).unwrap();
        let err = g.reserve(1).unwrap_err();
        assert!(matches!(err, HyError::BudgetExceeded(_)), "{err}");
        assert_eq!(err.stage(), "budget");
        g.release(10);
        g.reserve(10).unwrap();
    }

    #[test]
    fn scoped_reservation_releases_on_drop() {
        let g = Governor::new(Arc::new(CancelToken::new()), None, Some(100));
        {
            let _r = g.reserve_scoped(80).unwrap();
            assert_eq!(g.budget().reserved(), 80);
            assert!(g.reserve_scoped(40).is_err());
        }
        assert_eq!(g.budget().reserved(), 0);
        g.reserve_scoped(100).unwrap();
    }

    #[test]
    fn parallel_reservations_are_consistent() {
        let b = Arc::new(MemoryBudget::with_limit(1_000_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    if b.try_reserve(100) {
                        b.release(100);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.reserved(), 0);
    }
}
