//! Logical data types of the engine.

use std::fmt;

use crate::{HyError, Result};

/// Logical column/scalar types supported by HyLite.
///
/// The set intentionally mirrors what the paper's workloads need: 64-bit
/// integers and floats for vector/graph analytics, booleans for predicates,
/// and variable-length strings for labels and descriptions. `Null` is the
/// type of an untyped NULL literal before coercion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`BIGINT` / `INTEGER`).
    Int64,
    /// 64-bit IEEE-754 float (`FLOAT` / `DOUBLE`).
    Float64,
    /// Boolean (`BOOLEAN`).
    Bool,
    /// Variable-length UTF-8 string (`VARCHAR` / `TEXT`).
    Varchar,
    /// The type of a bare `NULL` literal; coerces to any other type.
    Null,
}

impl DataType {
    /// True for `Int64` and `Float64`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// Whether a value of `self` can be used where `target` is expected
    /// without an explicit cast (identity, NULL-to-anything, int-to-float).
    pub fn coercible_to(self, target: DataType) -> bool {
        self == target
            || self == DataType::Null
            || (self == DataType::Int64 && target == DataType::Float64)
    }

    /// The common type two operands coerce to for arithmetic/comparison,
    /// or an error if none exists.
    pub fn common_type(self, other: DataType) -> Result<DataType> {
        if self == other {
            return Ok(self);
        }
        match (self, other) {
            (DataType::Null, t) | (t, DataType::Null) => Ok(t),
            (DataType::Int64, DataType::Float64) | (DataType::Float64, DataType::Int64) => {
                Ok(DataType::Float64)
            }
            _ => Err(HyError::Type(format!(
                "no common type for {self} and {other}"
            ))),
        }
    }

    /// SQL spelling used when rendering schemas.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Bool => "BOOLEAN",
            DataType::Varchar => "VARCHAR",
            DataType::Null => "NULL",
        }
    }

    /// Parse a SQL type name (case-insensitive, with common synonyms).
    pub fn from_sql_name(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BIGINT" | "INT" | "INTEGER" | "INT8" | "SMALLINT" | "INT4" => Ok(DataType::Int64),
            "DOUBLE" | "FLOAT" | "FLOAT8" | "REAL" | "DOUBLE PRECISION" | "NUMERIC" | "DECIMAL" => {
                Ok(DataType::Float64)
            }
            "BOOLEAN" | "BOOL" => Ok(DataType::Bool),
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" => Ok(DataType::Varchar),
            other => Err(HyError::Parse(format!("unknown type name '{other}'"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::Varchar.is_numeric());
    }

    #[test]
    fn coercion_rules() {
        assert!(DataType::Int64.coercible_to(DataType::Float64));
        assert!(!DataType::Float64.coercible_to(DataType::Int64));
        assert!(DataType::Null.coercible_to(DataType::Varchar));
        assert!(DataType::Bool.coercible_to(DataType::Bool));
    }

    #[test]
    fn common_type_promotes_ints() {
        assert_eq!(
            DataType::Int64.common_type(DataType::Float64).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            DataType::Null.common_type(DataType::Bool).unwrap(),
            DataType::Bool
        );
        assert!(DataType::Bool.common_type(DataType::Int64).is_err());
    }

    #[test]
    fn sql_names_roundtrip() {
        for t in [
            DataType::Int64,
            DataType::Float64,
            DataType::Bool,
            DataType::Varchar,
        ] {
            assert_eq!(DataType::from_sql_name(t.sql_name()).unwrap(), t);
        }
        assert_eq!(DataType::from_sql_name("integer").unwrap(), DataType::Int64);
        assert!(DataType::from_sql_name("blob").is_err());
    }
}
