//! Engine-wide error type.

use std::fmt;

/// Convenient result alias used across all HyLite crates.
pub type Result<T> = std::result::Result<T, HyError>;

/// Error raised anywhere in the engine: parsing, binding, planning,
/// execution, storage or analytics.
///
/// Each variant carries a human-readable message; the variant itself tells
/// callers (and tests) which stage of the pipeline rejected the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HyError {
    /// Tokenizer/parser rejected the SQL text.
    Parse(String),
    /// Name resolution or type checking failed.
    Bind(String),
    /// Logical-to-physical planning failed.
    Plan(String),
    /// Runtime failure while executing a plan.
    Execution(String),
    /// Storage-layer failure (unknown table, constraint violation, ...).
    Storage(String),
    /// Catalog-level failure (duplicate table, unknown object, ...).
    Catalog(String),
    /// A type mismatch detected at any stage.
    Type(String),
    /// An analytics operator rejected its configuration or input.
    Analytics(String),
    /// Transaction handling failure (no active tx, conflict, ...).
    Transaction(String),
    /// The statement was cancelled via its session's
    /// [`CancelToken`](crate::governor::CancelToken).
    Cancelled(String),
    /// The statement ran past the session's `statement_timeout_ms`.
    Timeout(String),
    /// A memory reservation would exceed the session's
    /// `memory_budget_mb` cap.
    BudgetExceeded(String),
    /// The server refused the request because of admission control
    /// (connection cap, statement queue full/timed out) or because it is
    /// shutting down. Retryable: the statement itself was never invalid.
    Unavailable(String),
    /// The statement tried to write through a read-only replica. The
    /// message names the primary that accepts writes. Retryable: the
    /// same statement is valid against the primary (or against this node
    /// after a promotion).
    ReadOnly(String),
    /// The node's disk is full (ENOSPC on a WAL append or segment seal):
    /// it is serving reads in degraded mode and rejecting writes until
    /// space frees. Retryable — a background probe resumes write service
    /// automatically once the disk has room again.
    DiskFull(String),
    /// A wire-protocol violation or transport failure between a client
    /// and the server (bad frame, version mismatch, broken connection).
    Protocol(String),
    /// Internal invariant violation: a bug in the engine, not user error.
    Internal(String),
}

impl HyError {
    /// Short lowercase tag naming the pipeline stage that failed.
    pub fn stage(&self) -> &'static str {
        match self {
            HyError::Parse(_) => "parse",
            HyError::Bind(_) => "bind",
            HyError::Plan(_) => "plan",
            HyError::Execution(_) => "execution",
            HyError::Storage(_) => "storage",
            HyError::Catalog(_) => "catalog",
            HyError::Type(_) => "type",
            HyError::Analytics(_) => "analytics",
            HyError::Transaction(_) => "transaction",
            HyError::Cancelled(_) => "cancelled",
            HyError::Timeout(_) => "timeout",
            HyError::BudgetExceeded(_) => "budget",
            HyError::Unavailable(_) => "unavailable",
            HyError::ReadOnly(_) => "read_only",
            HyError::DiskFull(_) => "disk_full",
            HyError::Protocol(_) => "protocol",
            HyError::Internal(_) => "internal",
        }
    }

    /// True for the resource-governor taxonomy
    /// ([`Cancelled`](HyError::Cancelled) / [`Timeout`](HyError::Timeout)
    /// / [`BudgetExceeded`](HyError::BudgetExceeded)): the statement was
    /// deliberately aborted by resource policy, not rejected as invalid —
    /// the session remains usable and the statement may be retried.
    pub fn is_governed_abort(&self) -> bool {
        matches!(
            self,
            HyError::Cancelled(_) | HyError::Timeout(_) | HyError::BudgetExceeded(_)
        )
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            HyError::Parse(m)
            | HyError::Bind(m)
            | HyError::Plan(m)
            | HyError::Execution(m)
            | HyError::Storage(m)
            | HyError::Catalog(m)
            | HyError::Type(m)
            | HyError::Analytics(m)
            | HyError::Transaction(m)
            | HyError::Cancelled(m)
            | HyError::Timeout(m)
            | HyError::BudgetExceeded(m)
            | HyError::Unavailable(m)
            | HyError::ReadOnly(m)
            | HyError::DiskFull(m)
            | HyError::Protocol(m)
            | HyError::Internal(m) => m,
        }
    }
}

impl fmt::Display for HyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.stage(), self.message())
    }
}

impl std::error::Error for HyError {}

/// Build an [`HyError::Internal`] with `format!` semantics.
#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        $crate::HyError::Internal(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_message_roundtrip() {
        let e = HyError::Parse("unexpected token".into());
        assert_eq!(e.stage(), "parse");
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(e.to_string(), "parse error: unexpected token");
    }

    #[test]
    fn internal_macro_formats() {
        let e = internal_err!("bad index {}", 7);
        assert_eq!(e, HyError::Internal("bad index 7".into()));
    }

    #[test]
    fn all_stages_distinct() {
        let errs = [
            HyError::Parse(String::new()),
            HyError::Bind(String::new()),
            HyError::Plan(String::new()),
            HyError::Execution(String::new()),
            HyError::Storage(String::new()),
            HyError::Catalog(String::new()),
            HyError::Type(String::new()),
            HyError::Analytics(String::new()),
            HyError::Transaction(String::new()),
            HyError::Cancelled(String::new()),
            HyError::Timeout(String::new()),
            HyError::BudgetExceeded(String::new()),
            HyError::Unavailable(String::new()),
            HyError::ReadOnly(String::new()),
            HyError::DiskFull(String::new()),
            HyError::Protocol(String::new()),
            HyError::Internal(String::new()),
        ];
        let mut stages: Vec<_> = errs.iter().map(|e| e.stage()).collect();
        stages.sort_unstable();
        stages.dedup();
        assert_eq!(stages.len(), errs.len());
    }
}
