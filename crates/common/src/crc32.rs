//! CRC-32 (IEEE 802.3 polynomial) — the checksum guarding WAL frames and
//! checkpoint files against torn writes and bit rot.
//!
//! `hylite-common` is dependency-free, so this is the classic one-table
//! implementation: 1 KiB of lookup table built at compile time, one
//! table probe per input byte. Throughput is irrelevant next to the
//! `fsync` that follows every checksummed write.

/// The reflected IEEE polynomial used by zlib, PNG, Ethernet, ...
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF` — the
/// standard `crc32()` everyone else computes).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for IEEE CRC-32.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = b"hello durable world".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), reference, "bit {i} flip undetected");
        }
    }
}
