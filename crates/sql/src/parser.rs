//! Recursive-descent SQL parser.

use hylite_common::{DataType, HyError, Result, Value};

use crate::ast::*;
use crate::token::{Keyword, Token, Tokenizer};

/// Parse a script of `;`-separated statements.
pub fn parse_sql(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if p.peek() == &Token::Eof {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut stmts = parse_sql(input)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("length checked")),
        n => Err(HyError::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Parse a standalone scalar expression (used in tests and by tools).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Tokenize and wrap.
    pub fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: Tokenizer::new(input).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        self.tokens.get(self.pos + n).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &Token::Keyword(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(HyError::Parse(format!(
                "expected {k:?}, found {}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: &'static str) -> bool {
        if self.peek() == &Token::Symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &'static str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(HyError::Parse(format!(
                "expected '{s}', found {}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(HyError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        while self.eat_symbol(";") {}
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(HyError::Parse(format!(
                "unexpected trailing input at {}",
                self.peek()
            )))
        }
    }

    // ---------------------------------------------------------- statements

    /// Parse one statement.
    pub fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Token::Keyword(Keyword::Select)
            | Token::Keyword(Keyword::With)
            | Token::Keyword(Keyword::Values)
            | Token::Symbol("(") => Ok(Statement::Query(self.query()?)),
            Token::Keyword(Keyword::Create) => self.create_table(),
            Token::Keyword(Keyword::Drop) => self.drop_table(),
            Token::Keyword(Keyword::Insert) => self.insert(),
            Token::Keyword(Keyword::Update) => self.update(),
            Token::Keyword(Keyword::Delete) => self.delete(),
            Token::Keyword(Keyword::Begin) => {
                self.bump();
                Ok(Statement::Begin)
            }
            Token::Keyword(Keyword::Commit) => {
                self.bump();
                Ok(Statement::Commit)
            }
            Token::Keyword(Keyword::Rollback) => {
                self.bump();
                Ok(Statement::Rollback)
            }
            Token::Keyword(Keyword::Set) => self.set_statement(),
            Token::Keyword(Keyword::Backup) => self.backup(),
            Token::Keyword(Keyword::Explain) => {
                self.bump();
                let analyze = self.eat_keyword(Keyword::Analyze);
                Ok(Statement::Explain {
                    statement: Box::new(self.statement()?),
                    analyze,
                })
            }
            other => Err(HyError::Parse(format!("unexpected token {other}"))),
        }
    }

    /// `BACKUP TO 'dir' [FROM 'base'] [VERIFY]`. `TO` and `VERIFY` are
    /// not reserved words — they arrive as identifiers.
    fn backup(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Backup)?;
        match self.bump() {
            Token::Ident(ref s) if s == "to" => {}
            other => {
                return Err(HyError::Parse(format!("expected TO, found {other}")));
            }
        }
        let dir = self.expect_string("backup destination")?;
        let base = if self.eat_keyword(Keyword::From) {
            Some(self.expect_string("incremental base")?)
        } else {
            None
        };
        let verify = match self.peek() {
            Token::Ident(s) if s == "verify" => {
                self.bump();
                true
            }
            _ => false,
        };
        Ok(Statement::Backup { dir, base, verify })
    }

    fn expect_string(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Token::Str(s) => Ok(s),
            other => Err(HyError::Parse(format!(
                "expected a quoted {what}, found {other}"
            ))),
        }
    }

    /// `SET <setting> = <int>` / `SET <setting> TO <int>`.
    fn set_statement(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Set)?;
        let name = self.expect_ident()?;
        if !self.eat_symbol("=") {
            match self.bump() {
                Token::Ident(kw) if kw == "to" => {}
                other => {
                    return Err(HyError::Parse(format!(
                        "expected '=' or TO after SET {name}, found {other}"
                    )))
                }
            }
        }
        let negative = self.eat_symbol("-");
        let value = match self.bump() {
            Token::Int(v) => {
                if negative {
                    -v
                } else {
                    v
                }
            }
            other => {
                return Err(HyError::Parse(format!(
                    "expected an integer value for SET {name}, found {other}"
                )))
            }
        };
        Ok(Statement::Set { name, value })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Create)?;
        self.expect_keyword(Keyword::Table)?;
        let if_not_exists = if self.eat_keyword(Keyword::If) {
            self.expect_keyword(Keyword::Not)?;
            self.expect_keyword(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let dt = self.data_type()?;
            columns.push((col, dt));
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.expect_ident()?;
        let dt = DataType::from_sql_name(&name)?;
        // `DOUBLE PRECISION` — swallow the second word.
        if name.eq_ignore_ascii_case("double") {
            if let Token::Ident(s) = self.peek() {
                if s == "precision" {
                    self.bump();
                }
            }
        }
        // `VARCHAR(500)` — size is accepted and ignored.
        if self.eat_symbol("(") {
            match self.bump() {
                Token::Int(_) => {}
                other => {
                    return Err(HyError::Parse(format!(
                        "expected type length, found {other}"
                    )))
                }
            }
            self.expect_symbol(")")?;
        }
        Ok(dt)
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Drop)?;
        self.expect_keyword(Keyword::Table)?;
        let if_exists = if self.eat_keyword(Keyword::If) {
            self.expect_keyword(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Insert)?;
        self.expect_keyword(Keyword::Into)?;
        let table = self.expect_ident()?;
        let columns = if self.peek() == &Token::Symbol("(")
            && matches!(self.peek_ahead(1), Token::Ident(_))
            && (self.peek_ahead(2) == &Token::Symbol(",")
                || self.peek_ahead(2) == &Token::Symbol(")"))
        {
            self.expect_symbol("(")?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            Some(cols)
        } else {
            None
        };
        let source = Box::new(self.query()?);
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Update)?;
        let table = self.expect_ident()?;
        self.expect_keyword(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol("=")?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Delete)?;
        self.expect_keyword(Keyword::From)?;
        let table = self.expect_ident()?;
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    // --------------------------------------------------------------- query

    /// Parse a full query (CTEs, body, ORDER BY, LIMIT, OFFSET).
    pub fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        let mut recursive = false;
        if self.eat_keyword(Keyword::With) {
            recursive = self.eat_keyword(Keyword::Recursive);
            loop {
                let name = self.expect_ident()?;
                let columns = if self.eat_symbol("(") {
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.expect_ident()?);
                        if !self.eat_symbol(",") {
                            break;
                        }
                    }
                    self.expect_symbol(")")?;
                    Some(cols)
                } else {
                    None
                };
                self.expect_keyword(Keyword::As)?;
                self.expect_symbol("(")?;
                let query = Box::new(self.query()?);
                self.expect_symbol(")")?;
                ctes.push(Cte {
                    name,
                    columns,
                    query,
                });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_keyword(Keyword::Desc) {
                    false
                } else {
                    self.eat_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderByExpr { expr, asc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword(Keyword::Limit) {
            Some(self.expr()?)
        } else {
            None
        };
        let offset = if self.eat_keyword(Keyword::Offset) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Query {
            ctes,
            recursive,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_primary()?;
        while self.eat_keyword(Keyword::Union) {
            let all = self.eat_keyword(Keyword::All);
            let right = self.set_primary()?;
            left = SetExpr::Union {
                left: Box::new(left),
                right: Box::new(right),
                all,
            };
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr> {
        match self.peek() {
            Token::Keyword(Keyword::Select) => Ok(SetExpr::Select(Box::new(self.select()?))),
            Token::Keyword(Keyword::Values) => {
                self.bump();
                let mut rows = Vec::new();
                loop {
                    self.expect_symbol("(")?;
                    let mut row = Vec::new();
                    loop {
                        row.push(self.expr()?);
                        if !self.eat_symbol(",") {
                            break;
                        }
                    }
                    self.expect_symbol(")")?;
                    rows.push(row);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                Ok(SetExpr::Values(rows))
            }
            Token::Symbol("(") => {
                self.bump();
                let q = self.query()?;
                self.expect_symbol(")")?;
                Ok(SetExpr::Query(Box::new(q)))
            }
            other => Err(HyError::Parse(format!(
                "expected SELECT, VALUES or subquery, found {other}"
            ))),
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_keyword(Keyword::From) {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let selection = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* wildcard
        if let (Token::Ident(q), Token::Symbol("."), Token::Symbol("*")) =
            (self.peek(), self.peek_ahead(1), self.peek_ahead(2))
        {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Token::Ident(s) = self.peek() {
            // Implicit alias: `SELECT 7 x`.
            let s = s.clone();
            self.pos += 1;
            Some(s)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---------------------------------------------------------- table refs

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.eat_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                Some((JoinKind::Cross, false))
            } else if self.eat_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                Some((JoinKind::Inner, true))
            } else if self.eat_keyword(Keyword::Left) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some((JoinKind::Left, true))
            } else if self.eat_keyword(Keyword::Join) {
                Some((JoinKind::Inner, true))
            } else {
                None
            };
            let Some((kind, needs_on)) = kind else {
                return Ok(left);
            };
            let right = self.table_primary()?;
            let on = if needs_on {
                self.expect_keyword(Keyword::On)?;
                Some(self.expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn table_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword(Keyword::As) {
            Ok(Some(self.expect_ident()?))
        } else if let Token::Ident(s) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            Ok(Some(s))
        } else {
            Ok(None)
        }
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.eat_symbol("(") {
            let query = Box::new(self.query()?);
            self.expect_symbol(")")?;
            let alias = self.table_alias()?;
            return Ok(TableRef::Subquery { query, alias });
        }
        // ITERATE is a keyword-free identifier in our lexer? No — it's an
        // ordinary identifier; check for the table-function names.
        let mut name = self.expect_ident()?;
        if self.peek() == &Token::Symbol("(") && is_table_function(&name) {
            let func = self.table_function(&name)?;
            let alias = self.table_alias()?;
            return Ok(TableRef::TableFunction { func, alias });
        }
        // Qualified name (`schema.table`) — used by the `hylite.*`
        // system views; the binder resolves the dotted name as a whole.
        if self.eat_symbol(".") {
            let rest = self.expect_ident()?;
            name = format!("{name}.{rest}");
        }
        let alias = self.table_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    /// Parse one argument of a table function: a parenthesized query.
    fn query_arg(&mut self) -> Result<Box<Query>> {
        self.expect_symbol("(")?;
        let q = self.query()?;
        self.expect_symbol(")")?;
        Ok(Box::new(q))
    }

    /// Parse a lambda: `LAMBDA (a, b) body` or `λ(a, b) body`.
    fn lambda(&mut self) -> Result<Lambda> {
        self.expect_keyword(Keyword::Lambda)?;
        self.expect_symbol("(")?;
        let mut params = Vec::new();
        loop {
            params.push(self.expect_ident()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        let body = self.expr()?;
        Ok(Lambda { params, body })
    }

    fn table_function(&mut self, name: &str) -> Result<TableFunc> {
        self.expect_symbol("(")?;
        let func = match name {
            "iterate" => {
                let init = self.query_arg()?;
                self.expect_symbol(",")?;
                let step = self.query_arg()?;
                self.expect_symbol(",")?;
                let stop = self.query_arg()?;
                let max_iterations = if self.eat_symbol(",") {
                    Some(self.expr()?)
                } else {
                    None
                };
                TableFunc::Iterate {
                    init,
                    step,
                    stop,
                    max_iterations,
                }
            }
            "kmeans" | "kmeans_assign" => {
                let data = self.query_arg()?;
                self.expect_symbol(",")?;
                let centers = self.query_arg()?;
                let mut distance = None;
                let mut max_iterations = None;
                while self.eat_symbol(",") {
                    if self.peek() == &Token::Keyword(Keyword::Lambda) {
                        if distance.is_some() {
                            return Err(HyError::Parse(
                                "duplicate lambda argument in KMEANS".into(),
                            ));
                        }
                        distance = Some(self.lambda()?);
                    } else {
                        if max_iterations.is_some() {
                            return Err(HyError::Parse("too many arguments to KMEANS".into()));
                        }
                        max_iterations = Some(self.expr()?);
                    }
                }
                if name == "kmeans" {
                    TableFunc::KMeans {
                        data,
                        centers,
                        distance,
                        max_iterations,
                    }
                } else {
                    if let Some(e) = max_iterations {
                        return Err(HyError::Parse(format!(
                            "KMEANS_ASSIGN takes no iteration count (got {e})"
                        )));
                    }
                    TableFunc::KMeansAssign {
                        data,
                        centers,
                        distance,
                    }
                }
            }
            "pagerank" | "page_rank" => {
                let edges = self.query_arg()?;
                self.expect_symbol(",")?;
                let damping = self.expr()?;
                self.expect_symbol(",")?;
                let epsilon = self.expr()?;
                let max_iterations = if self.eat_symbol(",") {
                    Some(self.expr()?)
                } else {
                    None
                };
                TableFunc::PageRank {
                    edges,
                    damping,
                    epsilon,
                    max_iterations,
                }
            }
            "naive_bayes_train" => {
                let data = self.query_arg()?;
                let label_column = if self.eat_symbol(",") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                TableFunc::NaiveBayesTrain { data, label_column }
            }
            "naive_bayes_predict" => {
                let model = self.query_arg()?;
                self.expect_symbol(",")?;
                let data = self.query_arg()?;
                TableFunc::NaiveBayesPredict { model, data }
            }
            "class_stats" => {
                let data = self.query_arg()?;
                let label_column = if self.eat_symbol(",") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                TableFunc::ClassStats { data, label_column }
            }
            other => {
                return Err(HyError::Internal(format!(
                    "is_table_function admitted unknown function '{other}'"
                )))
            }
        };
        self.expect_symbol(")")?;
        Ok(func)
    }

    // ---------------------------------------------------------- expressions

    /// Parse an expression (lowest precedence: OR).
    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] IN / BETWEEN / LIKE.
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek() == &Token::Keyword(Keyword::Not)
            && matches!(
                self.peek_ahead(1),
                Token::Keyword(Keyword::In)
                    | Token::Keyword(Keyword::Between)
                    | Token::Keyword(Keyword::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_keyword(Keyword::In) {
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword(Keyword::Between) {
            let low = self.additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword(Keyword::Like) {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(HyError::Parse(
                "expected IN, BETWEEN or LIKE after NOT".into(),
            ));
        }
        let op = match self.peek() {
            Token::Symbol("=") => Some(BinOp::Eq),
            Token::Symbol("<>") => Some(BinOp::NotEq),
            Token::Symbol("<") => Some(BinOp::Lt),
            Token::Symbol("<=") => Some(BinOp::LtEq),
            Token::Symbol(">") => Some(BinOp::Gt),
            Token::Symbol(">=") => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("+") => BinOp::Add,
                Token::Symbol("-") => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.power()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("*") => BinOp::Mul,
                Token::Symbol("/") => BinOp::Div,
                Token::Symbol("%") => BinOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.power()?;
            left = Expr::bin(op, left, right);
        }
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.unary()?;
        if self.eat_symbol("^") {
            // Right-associative.
            let exp = self.power()?;
            return Ok(Expr::bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            // Fold negated numeric literals so `-1` is a literal, keeping
            // Display → parse a round trip.
            return Ok(match self.unary()? {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat_symbol("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Keyword(Keyword::Null) => Ok(Expr::Literal(Value::Null)),
            Token::Keyword(Keyword::True) => Ok(Expr::Literal(Value::Bool(true))),
            Token::Keyword(Keyword::False) => Ok(Expr::Literal(Value::Bool(false))),
            Token::Keyword(Keyword::Case) => self.case_expr(),
            Token::Keyword(Keyword::Cast) => {
                self.expect_symbol("(")?;
                let e = self.expr()?;
                self.expect_keyword(Keyword::As)?;
                let target = self.data_type()?;
                self.expect_symbol(")")?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    target,
                })
            }
            Token::Symbol("(") => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                // Function call?
                if self.peek() == &Token::Symbol("(") {
                    self.bump();
                    if self.eat_symbol("*") {
                        self.expect_symbol(")")?;
                        return Ok(Expr::Function {
                            name,
                            args: vec![],
                            star: true,
                            distinct: false,
                        });
                    }
                    let distinct = self.eat_keyword(Keyword::Distinct);
                    let mut args = Vec::new();
                    if self.peek() != &Token::Symbol(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(")")?;
                    return Ok(Expr::Function {
                        name,
                        args,
                        star: false,
                        distinct,
                    });
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::col(name))
            }
            other => Err(HyError::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let cond = self.expr()?;
            self.expect_keyword(Keyword::Then)?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(HyError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_expr = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }
}

/// Names recognized as built-in table functions in FROM position.
fn is_table_function(name: &str) -> bool {
    matches!(
        name,
        "iterate"
            | "kmeans"
            | "kmeans_assign"
            | "pagerank"
            | "page_rank"
            | "naive_bayes_train"
            | "naive_bayes_predict"
            | "class_stats"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_basics() {
        let s =
            parse_statement("SELECT a, b AS x FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5").unwrap();
        let Statement::Query(q) = s else {
            panic!("expected query")
        };
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(Expr::lit(5i64)));
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        assert_eq!(sel.projection.len(), 2);
        assert!(sel.selection.is_some());
    }

    #[test]
    fn implicit_alias_and_quoted() {
        let s = parse_statement("SELECT 7 \"x\"").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        assert_eq!(
            sel.projection[0],
            SelectItem::Expr {
                expr: Expr::lit(7i64),
                alias: Some("x".into())
            }
        );
    }

    #[test]
    fn joins() {
        let s = parse_statement("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id")
            .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        let TableRef::Join { kind, .. } = &sel.from[0] else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::Left);
    }

    #[test]
    fn group_by_having_union() {
        let s = parse_statement(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2 \
             UNION ALL SELECT b, 0 FROM u",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.body, SetExpr::Union { all: true, .. }));
    }

    #[test]
    fn recursive_cte() {
        let s = parse_statement(
            "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 10) \
             SELECT * FROM r",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(q.recursive);
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.ctes[0].columns, Some(vec!["n".to_string()]));
    }

    #[test]
    fn paper_listing_1_iterate() {
        // Listing 1 of the paper, verbatim modulo whitespace.
        let s = parse_statement(
            "SELECT * FROM ITERATE ((SELECT 7 \"x\"), (SELECT x+7 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 100))",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        let TableRef::TableFunction { func, .. } = &sel.from[0] else {
            panic!("expected ITERATE table function")
        };
        assert!(matches!(func, TableFunc::Iterate { .. }));
    }

    #[test]
    fn paper_listing_2_pagerank() {
        let s =
            parse_statement("SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0001)")
                .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        let TableRef::TableFunction { func, .. } = &sel.from[0] else {
            panic!()
        };
        let TableFunc::PageRank {
            damping, epsilon, ..
        } = func
        else {
            panic!()
        };
        assert_eq!(*damping, Expr::lit(0.85));
        assert_eq!(*epsilon, Expr::lit(0.0001));
    }

    #[test]
    fn paper_listing_3_kmeans_lambda() {
        let s = parse_statement(
            "SELECT * FROM KMEANS((SELECT x, y FROM data), (SELECT x, y FROM center), \
             λ(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, 3)",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        let TableRef::TableFunction { func, .. } = &sel.from[0] else {
            panic!()
        };
        let TableFunc::KMeans {
            distance,
            max_iterations,
            ..
        } = func
        else {
            panic!()
        };
        let l = distance.as_ref().expect("lambda parsed");
        assert_eq!(l.params, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(*max_iterations, Some(Expr::lit(3i64)));
    }

    #[test]
    fn kmeans_lambda_keyword_spelling() {
        let s = parse_statement(
            "SELECT * FROM KMEANS((SELECT x FROM d), (SELECT x FROM c), \
             LAMBDA(a, b) abs(a.x - b.x))",
        )
        .unwrap();
        let Statement::Query(_) = s else { panic!() };
    }

    #[test]
    fn naive_bayes_functions() {
        parse_statement("SELECT * FROM NAIVE_BAYES_TRAIN((SELECT f1, f2, label FROM t), label)")
            .unwrap();
        parse_statement(
            "SELECT * FROM NAIVE_BAYES_PREDICT((SELECT * FROM model), (SELECT f1, f2 FROM u))",
        )
        .unwrap();
        parse_statement("SELECT * FROM CLASS_STATS((SELECT f1, label FROM t))").unwrap();
    }

    #[test]
    fn table_function_name_not_reserved() {
        // A plain table named `kmeans` still works when not followed by `(`.
        let s = parse_statement("SELECT * FROM kmeans").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        assert!(matches!(&sel.from[0], TableRef::Table { name, .. } if name == "kmeans"));
    }

    #[test]
    fn ddl_dml() {
        let s =
            parse_statement("CREATE TABLE data (x FLOAT, y INTEGER, desc2 VARCHAR(500))").unwrap();
        let Statement::CreateTable { columns, .. } = s else {
            panic!()
        };
        assert_eq!(columns.len(), 3);
        assert_eq!(columns[0].1, DataType::Float64);
        assert_eq!(columns[2].1, DataType::Varchar);

        parse_statement("DROP TABLE IF EXISTS data").unwrap();
        parse_statement("INSERT INTO t VALUES (1, 2.5, 'x'), (2, 3.5, 'y')").unwrap();
        parse_statement("INSERT INTO t (a, b) SELECT x, y FROM u").unwrap();
        parse_statement("UPDATE t SET a = a + 1 WHERE b < 3").unwrap();
        parse_statement("DELETE FROM t WHERE a IS NOT NULL").unwrap();
        parse_statement("BEGIN").unwrap();
        parse_statement("COMMIT").unwrap();
        parse_statement("ROLLBACK").unwrap();
    }

    #[test]
    fn explain_wraps() {
        let s = parse_statement("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
    }

    #[test]
    fn explain_analyze_wraps() {
        let s = parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap();
        let Statement::Explain { statement, analyze } = s else {
            panic!("expected EXPLAIN");
        };
        assert!(analyze);
        assert!(matches!(*statement, Statement::Query(_)));
        let s = parse_statement("EXPLAIN ANALYZE INSERT INTO t VALUES (1)").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3 ^ 2").unwrap();
        // 1 + (2 * (3 ^ 2))
        assert_eq!(e.to_string(), "(1 + (2 * (3 ^ 2)))");
        let e = parse_expression("a OR b AND NOT c").unwrap();
        assert_eq!(e.to_string(), "(a OR (b AND (NOT c)))");
        let e = parse_expression("2 ^ 3 ^ 2").unwrap();
        assert_eq!(e.to_string(), "(2 ^ (3 ^ 2))", "power is right-assoc");
        let e = parse_expression("-2 ^ 2").unwrap();
        assert_eq!(e.to_string(), "(-2 ^ 2)", "literal fold keeps -2 atomic");
    }

    #[test]
    fn predicates() {
        parse_expression("x BETWEEN 1 AND 10 AND y NOT IN (1, 2)").unwrap();
        parse_expression("name LIKE 'a%' OR name IS NULL").unwrap();
        let e = parse_expression("x NOT BETWEEN 1 AND 2").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn case_and_cast() {
        let e =
            parse_expression("CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END")
                .unwrap();
        let Expr::Case { branches, .. } = e else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        parse_expression("CAST(x AS DOUBLE)").unwrap();
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_sql("SELECT 1; SELECT 2;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT * FROM ITERATE((SELECT 1))").is_err());
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("CASE END").is_err());
        assert!(parse_statement("SELECT 1 SELECT 2").is_err());
    }

    #[test]
    fn values_statement() {
        let s = parse_statement("VALUES (1, 'a'), (2, 'b')").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.body, SetExpr::Values(ref rows) if rows.len() == 2));
    }

    #[test]
    fn nested_subquery_in_from() {
        let s = parse_statement("SELECT * FROM (SELECT a FROM t) sub WHERE sub.a > 0").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else {
            panic!()
        };
        assert!(matches!(&sel.from[0], TableRef::Subquery { alias: Some(a), .. } if a == "sub"));
    }

    #[test]
    fn backup_statement_forms() {
        assert_eq!(
            parse_statement("BACKUP TO '/tmp/b0'").unwrap(),
            Statement::Backup {
                dir: "/tmp/b0".into(),
                base: None,
                verify: false,
            }
        );
        assert_eq!(
            parse_statement("backup to '/tmp/b1' from '/tmp/b0' verify").unwrap(),
            Statement::Backup {
                dir: "/tmp/b1".into(),
                base: Some("/tmp/b0".into()),
                verify: true,
            }
        );
        assert!(parse_statement("BACKUP '/tmp/b0'").is_err());
        assert!(parse_statement("BACKUP TO").is_err());
        assert!(parse_statement("BACKUP TO '/x' FROM").is_err());
    }
}
