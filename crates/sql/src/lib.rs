//! SQL front end: tokenizer, AST and recursive-descent parser.
//!
//! The dialect is a PostgreSQL-flavoured subset extended with the paper's
//! constructs:
//!
//! * `ITERATE(init, step, stop [, max_iter])` — the non-appending
//!   iteration table function of §5.1 (Listing 1);
//! * analytics table functions `KMEANS`, `KMEANS_ASSIGN`, `PAGERANK`,
//!   `NAIVE_BAYES_TRAIN`, `NAIVE_BAYES_PREDICT`, `CLASS_STATS` (§6,
//!   Listings 2 and 3);
//! * lambda expressions `LAMBDA(a, b) expr` — `λ` is accepted as a
//!   synonym (§7, Listing 3).
//!
//! The parser produces an *unbound* [`ast`] — names are resolved and
//! types inferred later by `hylite-planner`.

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    Cte, Expr, JoinKind, Lambda, OrderByExpr, Query, Select, SelectItem, SetExpr, Statement,
    TableFunc, TableRef,
};
pub use parser::{parse_expression, parse_sql, parse_statement, Parser};
pub use token::{Keyword, Token, Tokenizer};
