//! SQL tokenizer.

use std::fmt;

use hylite_common::{HyError, Result};

/// Reserved words. Analytics table-function names (`KMEANS`, ...) are
/// deliberately *not* keywords — they are ordinary identifiers recognized
/// positionally in `FROM`, so user tables may reuse those names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Offset,
    As,
    And,
    Or,
    Not,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    Is,
    In,
    Between,
    Like,
    Join,
    Left,
    Right,
    Inner,
    Outer,
    Full,
    Cross,
    On,
    Union,
    All,
    Distinct,
    With,
    Recursive,
    Create,
    Table,
    Drop,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Begin,
    Commit,
    Rollback,
    Explain,
    Analyze,
    If,
    Exists,
    Lambda,
    Backup,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "OFFSET" => Offset,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "CAST" => Cast,
            "IS" => Is,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "JOIN" => Join,
            "LEFT" => Left,
            "RIGHT" => Right,
            "INNER" => Inner,
            "OUTER" => Outer,
            "FULL" => Full,
            "CROSS" => Cross,
            "ON" => On,
            "UNION" => Union,
            "ALL" => All,
            "DISTINCT" => Distinct,
            "WITH" => With,
            "RECURSIVE" => Recursive,
            "CREATE" => Create,
            "TABLE" => Table,
            "DROP" => Drop,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "UPDATE" => Update,
            "SET" => Set,
            "DELETE" => Delete,
            "BEGIN" => Begin,
            "COMMIT" => Commit,
            "ROLLBACK" => Rollback,
            "EXPLAIN" => Explain,
            "ANALYZE" => Analyze,
            "IF" => If,
            "EXISTS" => Exists,
            "LAMBDA" => Lambda,
            "BACKUP" => Backup,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A reserved word.
    Keyword(Keyword),
    /// An identifier, stored lowercase (SQL identifiers fold case).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` unescaped).
    Str(String),
    /// `( ) , . ; *` and operators `+ - / % ^ = <> < <= > >=`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Streaming tokenizer over SQL text.
pub struct Tokenizer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// 1-based position of the next character (for error messages).
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Tokenizer over `input`.
    pub fn new(input: &'a str) -> Tokenizer<'a> {
        Tokenizer {
            chars: input.chars().peekable(),
            pos: 0,
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn bump(&mut self) -> Option<char> {
        self.pos += 1;
        self.chars.next()
    }

    fn next_token(&mut self) -> Result<Token> {
        // Skip whitespace and `--` comments.
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') => {
                    // Could be a comment or minus; peek ahead by cloning.
                    let mut look = self.chars.clone();
                    look.next();
                    if look.peek() == Some(&'-') {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let Some(&c) = self.chars.peek() else {
            return Ok(Token::Eof);
        };
        // λ is lexed as the LAMBDA keyword (paper syntax, Listing 3).
        if c == 'λ' {
            self.bump();
            return Ok(Token::Keyword(Keyword::Lambda));
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c) = self.chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(match Keyword::from_str(&s) {
                Some(k) => Token::Keyword(k),
                None => Token::Ident(s.to_ascii_lowercase()),
            });
        }
        if c.is_ascii_digit() {
            return self.lex_number();
        }
        if c == '\'' {
            return self.lex_string();
        }
        if c == '"' {
            // Quoted identifier: preserves content but still folded to
            // lowercase for simplicity (we don't support case-sensitive
            // identifiers).
            self.bump();
            let mut s = String::new();
            loop {
                match self.bump() {
                    Some('"') => break,
                    Some(c) => s.push(c),
                    None => return Err(HyError::Parse("unterminated quoted identifier".into())),
                }
            }
            return Ok(Token::Ident(s.to_ascii_lowercase()));
        }
        self.bump();
        let sym: &'static str = match c {
            '(' => "(",
            ')' => ")",
            ',' => ",",
            '.' => {
                // `.5` style float literal.
                if self.chars.peek().is_some_and(char::is_ascii_digit) {
                    let mut s = String::from("0.");
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_digit() {
                            s.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    return s
                        .parse::<f64>()
                        .map(Token::Float)
                        .map_err(|_| HyError::Parse(format!("bad number '{s}'")));
                }
                "."
            }
            ';' => ";",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            '%' => "%",
            '^' => "^",
            '=' => "=",
            '<' => match self.chars.peek() {
                Some('=') => {
                    self.bump();
                    "<="
                }
                Some('>') => {
                    self.bump();
                    "<>"
                }
                _ => "<",
            },
            '>' => {
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    ">="
                } else {
                    ">"
                }
            }
            '!' => {
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    "<>"
                } else {
                    return Err(HyError::Parse(format!(
                        "unexpected character '!' at position {}",
                        self.pos
                    )));
                }
            }
            other => {
                return Err(HyError::Parse(format!(
                    "unexpected character '{other}' at position {}",
                    self.pos
                )))
            }
        };
        Ok(Token::Symbol(sym))
    }

    fn lex_number(&mut self) -> Result<Token> {
        let mut s = String::new();
        let mut is_float = false;
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float {
                // Lookahead: `1.5` is a float, `1.x` would be nonsense in
                // SQL, `1.` is a float too.
                is_float = true;
                s.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E') && !s.is_empty() {
                let mut look = self.chars.clone();
                look.next();
                match look.peek() {
                    Some(&d) if d.is_ascii_digit() || d == '+' || d == '-' => {
                        is_float = true;
                        s.push('e');
                        self.bump();
                        if let Some(&sign) = self.chars.peek() {
                            if sign == '+' || sign == '-' {
                                s.push(sign);
                                self.bump();
                            }
                        }
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| HyError::Parse(format!("bad number '{s}'")))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| HyError::Parse(format!("integer '{s}' out of range")))
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    // `''` escapes a quote.
                    if self.chars.peek() == Some(&'\'') {
                        s.push('\'');
                        self.bump();
                    } else {
                        return Ok(Token::Str(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(HyError::Parse("unterminated string literal".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Tokenizer::new(s).tokenize().unwrap()
    }

    #[test]
    fn keywords_and_idents() {
        let t = lex("SELECT foo FROM Bar");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("foo".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("bar".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42")[0], Token::Int(42));
        assert_eq!(lex("1.5")[0], Token::Float(1.5));
        assert_eq!(lex("0.0001")[0], Token::Float(0.0001));
        assert_eq!(lex("1e3")[0], Token::Float(1000.0));
        assert_eq!(lex("2.5e-2")[0], Token::Float(0.025));
        assert_eq!(lex(".85")[0], Token::Float(0.85));
    }

    #[test]
    fn strings_with_escape() {
        assert_eq!(lex("'it''s'")[0], Token::Str("it's".into()));
        assert!(Tokenizer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn operators() {
        let t = lex("a <= b <> c >= d != e");
        let syms: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<=", "<>", ">=", "<>"]);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("SELECT -- a comment\n 1");
        assert_eq!(t[1], Token::Int(1));
    }

    #[test]
    fn minus_vs_comment() {
        let t = lex("1 - 2");
        assert_eq!(t[1], Token::Symbol("-"));
    }

    #[test]
    fn lambda_unicode() {
        let t = lex("λ(a, b) a.x");
        assert_eq!(t[0], Token::Keyword(Keyword::Lambda));
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(lex("\"My Table\"")[0], Token::Ident("my table".into()));
    }

    #[test]
    fn punctuation_and_power() {
        let t = lex("(a.x)^2;");
        assert_eq!(
            t,
            vec![
                Token::Symbol("("),
                Token::Ident("a".into()),
                Token::Symbol("."),
                Token::Ident("x".into()),
                Token::Symbol(")"),
                Token::Symbol("^"),
                Token::Int(2),
                Token::Symbol(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(Tokenizer::new("a ? b").tokenize().is_err());
    }
}
