//! Unbound SQL abstract syntax tree.
//!
//! Produced by [`crate::parser`], consumed by `hylite-planner`'s binder.
//! Expressions here carry names, not resolved column indices or types.

use std::fmt;

use hylite_common::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...` (possibly with CTEs, set ops, ORDER BY, LIMIT).
    Query(Query),
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
        /// `IF NOT EXISTS` given.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// `IF EXISTS` given.
        if_exists: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES ... | SELECT ...`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row source.
        source: Box<Query>,
    },
    /// `UPDATE name SET col = expr, ... [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM name [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// `BEGIN`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// `SET <setting> = <value>` (also `SET <setting> TO <value>`) — a
    /// session knob such as `statement_timeout_ms` or `memory_budget_mb`.
    Set {
        /// Setting name (lower-cased identifier).
        name: String,
        /// Integer value; `0` disables a knob, negative values are
        /// rejected by the binder.
        value: i64,
    },
    /// `EXPLAIN [ANALYZE] <statement>` — show the optimized plan; with
    /// `ANALYZE`, execute the statement and annotate each operator with
    /// its actual row counts and timings.
    Explain {
        /// The statement being explained.
        statement: Box<Statement>,
        /// Whether `ANALYZE` was given.
        analyze: bool,
    },
    /// `BACKUP TO 'dir' [FROM 'base'] [VERIFY]` — online backup of the
    /// database into a directory; `FROM` makes it incremental against an
    /// earlier backup, `VERIFY` re-reads every copied file before the
    /// backup is marked complete.
    Backup {
        /// Destination directory.
        dir: String,
        /// Optional incremental base backup directory.
        base: Option<String>,
        /// Whether `VERIFY` was given.
        verify: bool,
    },
}

/// A query: optional CTEs around a set expression, plus ordering/limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH [RECURSIVE]` definitions, in order.
    pub ctes: Vec<Cte>,
    /// Whether `RECURSIVE` was given.
    pub recursive: bool,
    /// The query body.
    pub body: SetExpr,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderByExpr>,
    /// `LIMIT` expression (constant).
    pub limit: Option<Expr>,
    /// `OFFSET` expression (constant).
    pub offset: Option<Expr>,
}

impl Query {
    /// A plain query around a body with no CTEs/ordering.
    pub fn plain(body: SetExpr) -> Query {
        Query {
            ctes: vec![],
            recursive: false,
            body,
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }
}

/// One common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Optional column alias list.
    pub columns: Option<Vec<String>>,
    /// Defining query.
    pub query: Box<Query>,
}

/// The body of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A `SELECT` block.
    Select(Box<Select>),
    /// `UNION [ALL]`.
    Union {
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
        /// `ALL` keeps duplicates.
        all: bool,
    },
    /// `VALUES (..), (..)`.
    Values(Vec<Vec<Expr>>),
    /// A parenthesized query.
    Query(Box<Query>),
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` given.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// Comma-separated `FROM` items (implicit cross join).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// An expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A `FROM` item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table (or CTE) by name.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Parenthesized subquery.
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Explicit join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// `ON` condition (absent for CROSS JOIN).
        on: Option<Expr>,
    },
    /// A built-in table function (ITERATE / analytics operators).
    TableFunction {
        /// The function with its arguments.
        func: TableFunc,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `CROSS JOIN`.
    Cross,
}

/// Built-in table functions — the paper's iteration and analytics
/// operators as they appear in SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFunc {
    /// `ITERATE(init, step, stop [, max_iterations])` (§5.1).
    Iterate {
        /// Initialization subquery; its result seeds the `iterate` table.
        init: Box<Query>,
        /// Step subquery; may reference `iterate`.
        step: Box<Query>,
        /// Stop condition subquery; iteration stops when it yields rows.
        stop: Box<Query>,
        /// Optional iteration cap (defaults to the engine guard limit).
        max_iterations: Option<Expr>,
    },
    /// `KMEANS(data, centers [, lambda] [, max_iterations])` (§6.1/§7).
    KMeans {
        /// Data subquery (numeric columns = dimensions).
        data: Box<Query>,
        /// Initial centers subquery (same width as data).
        centers: Box<Query>,
        /// Distance lambda `λ(a, b) ...`; default is squared L2.
        distance: Option<Lambda>,
        /// Maximum iterations (defaults to convergence).
        max_iterations: Option<Expr>,
    },
    /// `KMEANS_ASSIGN(data, centers [, lambda])` — the model-application
    /// step: returns data rows plus their nearest center's index.
    KMeansAssign {
        /// Data subquery.
        data: Box<Query>,
        /// Centers subquery.
        centers: Box<Query>,
        /// Distance lambda; default squared L2.
        distance: Option<Lambda>,
    },
    /// `PAGERANK(edges, damping, epsilon [, max_iterations])` (§6.3).
    PageRank {
        /// Edge list subquery: two integer columns (src, dest).
        edges: Box<Query>,
        /// Damping factor d.
        damping: Expr,
        /// Convergence threshold ε.
        epsilon: Expr,
        /// Maximum iterations.
        max_iterations: Option<Expr>,
    },
    /// `NAIVE_BAYES_TRAIN(data [, label_column])` (§6.2); the label
    /// defaults to the last column.
    NaiveBayesTrain {
        /// Training data subquery (features + label).
        data: Box<Query>,
        /// Label column name.
        label_column: Option<String>,
    },
    /// `NAIVE_BAYES_PREDICT(model, data)` — applies a trained model.
    NaiveBayesPredict {
        /// Model subquery (as produced by NAIVE_BAYES_TRAIN).
        model: Box<Query>,
        /// Unlabeled data subquery.
        data: Box<Query>,
    },
    /// `CLASS_STATS(data [, label_column])` — the reusable per-class
    /// statistics building block (count, mean, stddev per class and
    /// attribute).
    ClassStats {
        /// Data subquery (features + label).
        data: Box<Query>,
        /// Label column name.
        label_column: Option<String>,
    },
}

impl TableFunc {
    /// The SQL name of this function.
    pub fn name(&self) -> &'static str {
        match self {
            TableFunc::Iterate { .. } => "ITERATE",
            TableFunc::KMeans { .. } => "KMEANS",
            TableFunc::KMeansAssign { .. } => "KMEANS_ASSIGN",
            TableFunc::PageRank { .. } => "PAGERANK",
            TableFunc::NaiveBayesTrain { .. } => "NAIVE_BAYES_TRAIN",
            TableFunc::NaiveBayesPredict { .. } => "NAIVE_BAYES_PREDICT",
            TableFunc::ClassStats { .. } => "CLASS_STATS",
        }
    }
}

/// A lambda expression `LAMBDA(a, b) body` / `λ(a, b) body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameter names (tuple variables).
    pub params: Vec<String>,
    /// Body over `param.attribute` references.
    pub body: Expr,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub asc: bool,
}

/// AST binary operators (unbound; `hylite-expr` has the bound version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, possibly qualified.
    Column {
        /// Table/alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `NOT expr`.
    Not(Box<Expr>),
    /// Function call — scalar or aggregate, resolved by the binder.
    Function {
        /// Function name (lowercase).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(*)` is represented as `count` with `star = true`.
        star: bool,
        /// `DISTINCT` inside an aggregate (only COUNT supported).
        distinct: bool,
    },
    /// Searched CASE.
    Case {
        /// `(condition, result)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// ELSE result.
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        target: DataType,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidates.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern (must be a string literal).
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary helper.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    if *distinct {
                        write!(f, "DISTINCT ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, target } => write!(f, "CAST({expr} AS {target})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_expressions() {
        let e = Expr::bin(BinOp::Add, Expr::col("x"), Expr::lit(1i64));
        assert_eq!(e.to_string(), "(x + 1)");
        let e = Expr::Function {
            name: "count".into(),
            args: vec![],
            star: true,
            distinct: false,
        };
        assert_eq!(e.to_string(), "count(*)");
        let e = Expr::Literal(Value::from("a'b"));
        assert_eq!(e.to_string(), "'a''b'");
    }

    #[test]
    fn table_func_names() {
        let q = Box::new(Query::plain(SetExpr::Values(vec![vec![Expr::lit(1i64)]])));
        let f = TableFunc::PageRank {
            edges: q,
            damping: Expr::lit(0.85),
            epsilon: Expr::lit(0.0),
            max_iterations: None,
        };
        assert_eq!(f.name(), "PAGERANK");
    }
}
