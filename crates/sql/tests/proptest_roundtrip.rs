//! Property: pretty-printing an expression AST and re-parsing it yields
//! the same AST (Display output is fully parenthesized, so associativity
//! and precedence cannot drift).
//!
//! ASTs are generated from a seeded RNG so every run replays the same
//! cases (the offline stand-in for proptest).

use hylite_common::Value;
use hylite_sql::ast::{BinOp, Expr};
use hylite_sql::parse_expression;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u32..5) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(-1000i64..1000)),
        // Finite floats whose Display re-parses exactly.
        2 => Value::Float(rng.gen_range(-1000i64..1000) as f64 / 4.0),
        3 => Value::Bool(rng.gen_bool(0.5)),
        _ => {
            let n = rng.gen_range(0usize..=8);
            let s: String = (0..n)
                .map(|_| {
                    let alphabet = b"abcdefghijklmnopqrstuvwxyz ";
                    alphabet[rng.gen_range(0usize..alphabet.len())] as char
                })
                .collect();
            Value::Str(s)
        }
    }
}

fn arb_ident(rng: &mut StdRng) -> String {
    // Avoid reserved words by prefixing.
    let n = rng.gen_range(1usize..=7);
    let mut s = String::from("c_");
    for i in 0..n {
        let alphabet: &[u8] = if i == 0 {
            b"abcdefghijklmnopqrstuvwxyz"
        } else {
            b"abcdefghijklmnopqrstuvwxyz0123456789_"
        };
        s.push(alphabet[rng.gen_range(0usize..alphabet.len())] as char);
    }
    s
}

fn arb_binop(rng: &mut StdRng) -> BinOp {
    const OPS: [BinOp; 14] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Pow,
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
        BinOp::And,
        BinOp::Or,
    ];
    OPS[rng.gen_range(0usize..OPS.len())]
}

fn arb_leaf(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0u32..3) {
        0 => Expr::Literal(arb_value(rng)),
        1 => Expr::col(arb_ident(rng)),
        _ => Expr::Column {
            qualifier: Some(arb_ident(rng)),
            name: arb_ident(rng),
        },
    }
}

fn arb_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        return arb_leaf(rng);
    }
    match rng.gen_range(0u32..8) {
        0 => arb_leaf(rng),
        1 => Expr::Binary {
            op: arb_binop(rng),
            left: Box::new(arb_expr(rng, depth - 1)),
            right: Box::new(arb_expr(rng, depth - 1)),
        },
        // Neg over literals is not parser-reachable (the parser folds
        // `-<literal>` into a negative literal), so negate columns.
        2 => Expr::Neg(Box::new(Expr::col(arb_ident(rng)))),
        3 => Expr::Not(Box::new(arb_expr(rng, depth - 1))),
        4 => Expr::IsNull {
            expr: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
        5 => {
            let n = rng.gen_range(1usize..3);
            Expr::InList {
                expr: Box::new(arb_expr(rng, depth - 1)),
                list: (0..n).map(|_| arb_expr(rng, depth - 1)).collect(),
                negated: rng.gen_bool(0.5),
            }
        }
        6 => {
            let n = rng.gen_range(1usize..3);
            let branches = (0..n)
                .map(|_| (arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)))
                .collect();
            let else_expr = if rng.gen_bool(0.5) {
                Some(Box::new(arb_expr(rng, depth - 1)))
            } else {
                None
            };
            Expr::Case {
                branches,
                else_expr,
            }
        }
        _ => {
            let n = rng.gen_range(0usize..3);
            Expr::Function {
                name: arb_ident(rng),
                args: (0..n).map(|_| arb_expr(rng, depth - 1)).collect(),
                star: false,
                distinct: false,
            }
        }
    }
}

#[test]
fn display_reparse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x50_1C_AF_E5);
    for case in 0..256 {
        let depth = rng.gen_range(1usize..=4);
        let e = arb_expr(&mut rng, depth);
        let text = e.to_string();
        let reparsed = parse_expression(&text)
            .unwrap_or_else(|err| panic!("case {case}: failed to reparse `{text}`: {err}"));
        assert_eq!(reparsed, e, "case {case}: text was `{text}`");
    }
}
