//! Property: pretty-printing an expression AST and re-parsing it yields
//! the same AST (Display output is fully parenthesized, so associativity
//! and precedence cannot drift).

use hylite_common::Value;
use hylite_sql::ast::{BinOp, Expr};
use hylite_sql::parse_expression;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1000i64..1000).prop_map(Value::Int),
        // Finite floats whose Display re-parses exactly.
        (-1000i64..1000).prop_map(|v| Value::Float(v as f64 / 4.0)),
        any::<bool>().prop_map(Value::Bool),
        "[a-z ]{0,8}".prop_map(Value::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid reserved words by prefixing.
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("c_{s}"))
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Literal),
        arb_ident().prop_map(Expr::col),
        (arb_ident(), arb_ident()).prop_map(|(q, name)| Expr::Column {
            qualifier: Some(q),
            name,
        }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            // Neg over literals is not parser-reachable (the parser folds
            // `-<literal>` into a negative literal), so negate columns.
            arb_ident().prop_map(|c| Expr::Neg(Box::new(Expr::col(c)))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone())
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (arb_ident(), proptest::collection::vec(inner, 0..3)).prop_map(|(name, args)| {
                Expr::Function {
                    name,
                    args,
                    star: false,
                    distinct: false,
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_reparse_roundtrip(e in arb_expr()) {
        let text = e.to_string();
        let reparsed = parse_expression(&text)
            .unwrap_or_else(|err| panic!("failed to reparse `{text}`: {err}"));
        prop_assert_eq!(reparsed, e, "text was `{}`", text);
    }
}
