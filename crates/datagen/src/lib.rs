//! Synthetic dataset generators for the paper's evaluation (§8.1).
//!
//! The paper uses "artificial, uniformly distributed datasets because
//! [...] the performance of plain k-Means with a fixed number of
//! iterations is irrespective of data skew". [`vectors`] generates those,
//! [`table1`] encodes the experiment grid of Table 1, and graph data
//! comes from [`hylite_graph::ldbc`].

pub mod table1;
pub mod vectors;

pub use table1::{KMeansExperiment, Table1};
pub use vectors::VectorDataset;
