//! Table 1 of the paper: the k-Means experiment grid.
//!
//! Three lines of experiments varying one parameter at a time around the
//! defaults n = 4,000,000, d = 10, k = 5, i = 3. The starred (n=4M, d=10,
//! k=5) configuration appears in every line, "connecting the three lines
//! of experiments".

/// One k-Means experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansExperiment {
    /// Number of tuples.
    pub n: usize,
    /// Number of dimensions.
    pub d: usize,
    /// Number of clusters.
    pub k: usize,
    /// Number of iterations.
    pub iterations: usize,
}

/// Default iteration count (§8.1.1: "we chose to perform three
/// iterations").
pub const DEFAULT_ITERATIONS: usize = 3;

/// The paper's parameter grid.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Scale factor applied to tuple counts (1.0 = the paper's sizes).
    pub scale: f64,
}

impl Table1 {
    /// The grid at the paper's original sizes.
    pub fn paper() -> Table1 {
        Table1 { scale: 1.0 }
    }

    /// The grid with tuple counts scaled by `scale`.
    pub fn scaled(scale: f64) -> Table1 {
        Table1 { scale }
    }

    fn n(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.scale) as usize).max(100)
    }

    /// Line 1: varying the number of tuples (d = 10, k = 5).
    pub fn varying_tuples(&self) -> Vec<KMeansExperiment> {
        [
            160_000,
            800_000,
            4_000_000,
            20_000_000,
            100_000_000,
            500_000_000,
        ]
        .iter()
        .map(|&n| KMeansExperiment {
            n: self.n(n),
            d: 10,
            k: 5,
            iterations: DEFAULT_ITERATIONS,
        })
        .collect()
    }

    /// Line 2: varying the number of dimensions (n = 4M, k = 5).
    pub fn varying_dimensions(&self) -> Vec<KMeansExperiment> {
        [3, 5, 10, 25, 50]
            .iter()
            .map(|&d| KMeansExperiment {
                n: self.n(4_000_000),
                d,
                k: 5,
                iterations: DEFAULT_ITERATIONS,
            })
            .collect()
    }

    /// Line 3: varying the number of clusters (n = 4M, d = 10).
    pub fn varying_clusters(&self) -> Vec<KMeansExperiment> {
        [3, 5, 10, 25, 50]
            .iter()
            .map(|&k| KMeansExperiment {
                n: self.n(4_000_000),
                d: 10,
                k,
                iterations: DEFAULT_ITERATIONS,
            })
            .collect()
    }

    /// The starred configuration shared by all three lines.
    pub fn connecting_point(&self) -> KMeansExperiment {
        KMeansExperiment {
            n: self.n(4_000_000),
            d: 10,
            k: 5,
            iterations: DEFAULT_ITERATIONS,
        }
    }

    /// Render the grid as the paper's Table 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("#tuples n    #dimensions d    k\n");
        let mut section = |title: &str, rows: &[KMeansExperiment]| {
            out.push_str(&format!("-- {title}\n"));
            for e in rows {
                let star = if *e == self.connecting_point() {
                    "*"
                } else {
                    " "
                };
                out.push_str(&format!("{:>12} {:>12} {:>6}{star}\n", e.n, e.d, e.k));
            }
        };
        section("Varying number of tuples", &self.varying_tuples());
        section("Varying number of dimensions", &self.varying_dimensions());
        section("Varying number of clusters", &self.varying_clusters());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_table_1() {
        let t = Table1::paper();
        let tuples = t.varying_tuples();
        assert_eq!(tuples.len(), 6);
        assert_eq!(tuples[0].n, 160_000);
        assert_eq!(tuples[5].n, 500_000_000);
        assert!(tuples.iter().all(|e| e.d == 10 && e.k == 5));
        let dims = t.varying_dimensions();
        assert_eq!(
            dims.iter().map(|e| e.d).collect::<Vec<_>>(),
            vec![3, 5, 10, 25, 50]
        );
        let ks = t.varying_clusters();
        assert_eq!(
            ks.iter().map(|e| e.k).collect::<Vec<_>>(),
            vec![3, 5, 10, 25, 50]
        );
    }

    #[test]
    fn connecting_point_present_in_all_lines() {
        let t = Table1::paper();
        let star = t.connecting_point();
        assert!(t.varying_tuples().contains(&star));
        assert!(t.varying_dimensions().contains(&star));
        assert!(t.varying_clusters().contains(&star));
    }

    #[test]
    fn scaling_shrinks() {
        let t = Table1::scaled(0.001);
        assert_eq!(t.varying_tuples()[0].n, 160);
        assert_eq!(t.connecting_point().n, 4000);
    }

    #[test]
    fn render_contains_sections() {
        let s = Table1::scaled(0.01).render();
        assert!(s.contains("Varying number of tuples"));
        assert!(s.contains("Varying number of clusters"));
        assert!(s.contains('*'));
    }
}
