//! Uniform vector data (n tuples × d dimensions) and labeled variants.

use hylite_common::{Chunk, ColumnVector, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic uniform vector dataset.
#[derive(Debug, Clone, Copy)]
pub struct VectorDataset {
    /// Number of tuples.
    pub n: usize,
    /// Number of dimensions.
    pub d: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Rows per generated chunk (matches the storage segment size so inserts
/// map 1:1 onto segments).
pub const GEN_CHUNK_ROWS: usize = 64 * 1024;

impl VectorDataset {
    /// A dataset of `n`×`d` uniform values in [0, 1).
    pub fn new(n: usize, d: usize, seed: u64) -> VectorDataset {
        VectorDataset { n, d, seed }
    }

    /// Generate the data as columnar chunks (all DOUBLE).
    pub fn chunks(&self) -> Vec<Chunk> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.n.div_ceil(GEN_CHUNK_ROWS));
        let mut remaining = self.n;
        while remaining > 0 {
            let rows = remaining.min(GEN_CHUNK_ROWS);
            let cols: Vec<ColumnVector> = (0..self.d)
                .map(|_| ColumnVector::from_f64((0..rows).map(|_| rng.gen::<f64>()).collect()))
                .collect();
            out.push(Chunk::new(cols));
            remaining -= rows;
        }
        out
    }

    /// Chunks with a uniform 0/1 BIGINT label appended (Naive Bayes,
    /// §8.1.2: "a uniform probability density function of two labels").
    /// Class means are shifted apart so the learning task is non-trivial.
    pub fn labeled_chunks(&self, separation: f64) -> Vec<Chunk> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e3779b97f4a7c15);
        let mut out = Vec::with_capacity(self.n.div_ceil(GEN_CHUNK_ROWS));
        let mut remaining = self.n;
        while remaining > 0 {
            let rows = remaining.min(GEN_CHUNK_ROWS);
            let labels: Vec<i64> = (0..rows).map(|_| i64::from(rng.gen_bool(0.5))).collect();
            let mut cols: Vec<ColumnVector> = Vec::with_capacity(self.d + 1);
            for _ in 0..self.d {
                let col: Vec<f64> = labels
                    .iter()
                    .map(|&l| rng.gen::<f64>() + l as f64 * separation)
                    .collect();
                cols.push(ColumnVector::from_f64(col));
            }
            cols.push(ColumnVector::from_i64(labels));
            out.push(Chunk::new(cols));
            remaining -= rows;
        }
        out
    }

    /// The paper's cluster initialization: "random selection of k initial
    /// cluster centers" — a seeded sample of k data rows.
    pub fn initial_centers(&self, k: usize) -> Vec<Vec<f64>> {
        let chunks = self.chunks();
        let total: usize = chunks.iter().map(Chunk::len).sum();
        let k = k.min(total);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5851f42d4c957f2d);
        let mut centers = Vec::with_capacity(k);
        let mut picked = std::collections::HashSet::new();
        while centers.len() < k {
            let idx = rng.gen_range(0..total);
            if !picked.insert(idx) {
                continue;
            }
            // Locate the row across chunks.
            let mut row = idx;
            for c in &chunks {
                if row < c.len() {
                    centers.push(
                        (0..c.num_columns())
                            .map(|col| c.column(col).as_f64().expect("f64 data")[row])
                            .collect(),
                    );
                    break;
                }
                row -= c.len();
            }
        }
        centers
    }

    /// Create a table `name(c0 DOUBLE, ..., c{d-1} DOUBLE)` in the
    /// catalog and load the data (plus commit).
    pub fn load_into(&self, catalog: &hylite_storage::Catalog, name: &str) -> Result<()> {
        use hylite_common::{DataType, Field, Schema};
        let fields: Vec<Field> = (0..self.d)
            .map(|i| Field::new(format!("c{i}"), DataType::Float64))
            .collect();
        let table = catalog.create_table(name, Schema::new(fields))?;
        let mut guard = table.write();
        for chunk in self.chunks() {
            guard.insert_chunk(chunk)?;
        }
        guard.commit();
        Ok(())
    }

    /// Create and load a labeled table `name(c0.., label BIGINT)`.
    pub fn load_labeled_into(
        &self,
        catalog: &hylite_storage::Catalog,
        name: &str,
        separation: f64,
    ) -> Result<()> {
        use hylite_common::{DataType, Field, Schema};
        let mut fields: Vec<Field> = (0..self.d)
            .map(|i| Field::new(format!("c{i}"), DataType::Float64))
            .collect();
        fields.push(Field::new("label", DataType::Int64));
        let table = catalog.create_table(name, Schema::new(fields))?;
        let mut guard = table.write();
        for chunk in self.labeled_chunks(separation) {
            guard.insert_chunk(chunk)?;
        }
        guard.commit();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let a = VectorDataset::new(1000, 3, 7).chunks();
        let b = VectorDataset::new(1000, 3, 7).chunks();
        assert_eq!(a, b);
        assert_eq!(a.iter().map(Chunk::len).sum::<usize>(), 1000);
        assert_eq!(a[0].num_columns(), 3);
        let c = VectorDataset::new(1000, 3, 8).chunks();
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_unit_interval() {
        let chunks = VectorDataset::new(500, 2, 1).chunks();
        for c in &chunks {
            for col in 0..2 {
                for &v in c.column(col).as_f64().unwrap() {
                    assert!((0.0..1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn chunking_respects_limit() {
        let chunks = VectorDataset::new(GEN_CHUNK_ROWS + 5, 1, 0).chunks();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 5);
    }

    #[test]
    fn labels_roughly_balanced_and_separated() {
        let chunks = VectorDataset::new(4000, 2, 3).labeled_chunks(4.0);
        let mut ones = 0usize;
        let mut total = 0usize;
        for c in &chunks {
            let labels = c.column(2).as_i64().unwrap();
            let xs = c.column(0).as_f64().unwrap();
            for (i, &l) in labels.iter().enumerate() {
                ones += l as usize;
                total += 1;
                if l == 1 {
                    assert!(xs[i] >= 4.0);
                } else {
                    assert!(xs[i] < 1.0);
                }
            }
        }
        let frac = ones as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "label fraction {frac}");
    }

    #[test]
    fn centers_are_data_rows() {
        let ds = VectorDataset::new(100, 2, 9);
        let centers = ds.initial_centers(5);
        assert_eq!(centers.len(), 5);
        let chunks = ds.chunks();
        for center in &centers {
            let found = chunks.iter().any(|c| {
                (0..c.len())
                    .any(|i| (0..2).all(|col| c.column(col).as_f64().unwrap()[i] == center[col]))
            });
            assert!(found, "center {center:?} must be a data row");
        }
    }

    #[test]
    fn load_into_catalog() {
        let catalog = hylite_storage::Catalog::new();
        VectorDataset::new(100, 3, 1)
            .load_into(&catalog, "data")
            .unwrap();
        let t = catalog.get_table("data").unwrap();
        assert_eq!(t.read().committed_live_rows(), 100);
        VectorDataset::new(50, 2, 1)
            .load_labeled_into(&catalog, "labeled", 3.0)
            .unwrap();
        let t = catalog.get_table("labeled").unwrap();
        assert_eq!(t.read().schema().len(), 3);
    }
}
