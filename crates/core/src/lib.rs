//! The HyLite database facade: parse → bind → optimize → execute.
//!
//! [`Database`] owns the shared catalog; [`Session`]s run SQL (with
//! single-writer transactions and snapshot-isolated readers);
//! [`QueryResult`] carries the result relation plus execution statistics.

pub mod csv;
pub mod database;
pub mod result;
pub mod session;

pub use csv::CsvOptions;
pub use database::Database;
pub use result::QueryResult;
pub use session::{Session, SessionSettings};
