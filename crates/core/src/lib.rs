//! The HyLite database facade: parse → bind → optimize → execute.
//!
//! [`Database`] owns the shared catalog; [`Session`]s run SQL (with
//! single-writer transactions and snapshot-isolated readers);
//! [`QueryResult`] carries the result relation plus execution statistics.

pub mod csv;
pub mod database;
pub mod result;
pub mod session;

pub use csv::CsvOptions;
pub use database::Database;
pub use result::QueryResult;
pub use session::{Session, SessionSettings};

// Durability surface, re-exported so embedders and the server do not need
// a direct hylite-storage dependency to open a durable database.
pub use hylite_storage::{
    restore_backup, BackupSummary, CheckpointStats, Durability, DurabilityOptions, RawFrame,
    RecoveryReport, ReplRole, ReplState, ReplTail, RestoreSummary, SyncMode, CRASH_POINTS,
};

// Compile-time thread-safety contract: a network server shares one
// `Arc<Database>` across connection threads, each of which owns a
// `Session` and may move `QueryResult`s between threads. If a field ever
// regresses to `Rc`/`RefCell`/raw pointers, these assertions fail the
// build rather than the deployment.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<hylite_storage::Catalog>();
    assert_send_sync::<hylite_common::CancelToken>();
    assert_send_sync::<hylite_common::MetricsRegistry>();
    assert_send::<Session>();
    assert_send::<QueryResult>();
};

#[cfg(test)]
mod thread_safety_tests {
    use super::*;
    use std::sync::Arc;

    /// One `Arc<Database>` shared across threads, each with its own
    /// session — the exact sharing model of `hylite-server`.
    #[test]
    fn one_database_many_threads() {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE t (x BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut session = db.session();
                    let r = session.execute("SELECT sum(x) FROM t").unwrap();
                    assert_eq!(r.scalar().unwrap(), hylite_common::Value::Int(6));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
