//! The database handle.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use hylite_common::faultfs::{StdVfs, Vfs};
use hylite_common::sysview::{SlowQueryLog, SystemView, SystemViewHub, SystemViewProvider};
use hylite_common::telemetry::{MetricsRegistry, MetricsSnapshot};
use hylite_common::{Result, Value};
use hylite_storage::{
    Catalog, CheckpointStats, Durability, DurabilityOptions, RecoveryReport, ReplRole, SyncMode,
};
use parking_lot::Mutex;

use crate::result::QueryResult;
use crate::session::{Session, SessionStat};

/// Weak registry of per-session counters, keyed by engine session id.
/// Dead entries (closed sessions) are pruned on every touch.
type SessionStats = Arc<Mutex<BTreeMap<u64, Weak<SessionStat>>>>;

/// The database core's [`SystemViewProvider`]: contributes the metrics,
/// WAL, sessions, and slow-query views. Connection- and replication-level
/// views are contributed by the server layer, which registers its own
/// providers on the same hub.
struct CoreViews {
    catalog: Arc<Catalog>,
    metrics: Arc<MetricsRegistry>,
    durability: Option<Arc<Durability>>,
    session_stats: SessionStats,
    slow_log: Arc<SlowQueryLog>,
}

impl CoreViews {
    fn metrics_rows(&self) -> Vec<Vec<Value>> {
        let snap = self.metrics.snapshot();
        let mut rows =
            Vec::with_capacity(snap.counters.len() + snap.gauges.len() + snap.histograms.len());
        for (name, v) in &snap.counters {
            let mut row = vec![
                Value::from("counter"),
                Value::from(name.as_str()),
                Value::Int(*v as i64),
            ];
            row.extend(std::iter::repeat_n(Value::Null, 7));
            rows.push(row);
        }
        for (name, v) in &snap.gauges {
            let mut row = vec![
                Value::from("gauge"),
                Value::from(name.as_str()),
                Value::Int(*v),
            ];
            row.extend(std::iter::repeat_n(Value::Null, 7));
            rows.push(row);
        }
        for (name, h) in &snap.histograms {
            rows.push(vec![
                Value::from("histogram"),
                Value::from(name.as_str()),
                Value::Null,
                Value::Int(h.count as i64),
                Value::Int(h.sum as i64),
                Value::Int(h.min as i64),
                Value::Int(h.p50 as i64),
                Value::Int(h.p95 as i64),
                Value::Int(h.p99 as i64),
                Value::Int(h.max as i64),
            ]);
        }
        rows
    }

    fn wal_row(&self) -> Vec<Value> {
        match &self.durability {
            Some(d) => vec![
                Value::from(match d.role() {
                    ReplRole::Primary => "primary",
                    ReplRole::Replica => "replica",
                }),
                Value::Int(d.epoch() as i64),
                Value::Int(d.next_lsn() as i64),
                Value::Int(d.wal_durable_len() as i64),
                Value::from(match d.sync_mode() {
                    SyncMode::Commit => "commit",
                    SyncMode::Buffered => "buffered",
                }),
            ],
            None => vec![
                Value::from("memory"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
                Value::from("none"),
            ],
        }
    }

    fn session_rows(&self) -> Vec<Vec<Value>> {
        let mut stats = self.session_stats.lock();
        stats.retain(|_, w| w.strong_count() > 0);
        stats
            .values()
            .filter_map(Weak::upgrade)
            .map(|s| {
                vec![
                    Value::Int(s.id() as i64),
                    Value::Int(s.statements() as i64),
                    Value::Int(s.errors() as i64),
                    Value::Bool(s.in_transaction()),
                    Value::Int(s.last_trace_id() as i64),
                    Value::Int(s.age_seconds() as i64),
                ]
            })
            .collect()
    }

    fn storage_rows(&self) -> Vec<Vec<Value>> {
        // One pool serves every table; its hit rate repeats per row so
        // the view stays flat (joins against it stay trivial). In-memory
        // databases have no pool and report NULL.
        let pool_pct = match &self.durability {
            Some(d) => Value::Int((d.buffer_pool().stats().hit_rate() * 100.0).round() as i64),
            None => Value::Null,
        };
        let mut names = self.catalog.table_names();
        names.sort_unstable();
        names
            .into_iter()
            .filter_map(|name| self.catalog.get_table(&name).ok().map(|t| (name, t)))
            .map(|(name, t)| {
                let (segments, disk_segments, disk_bytes, raw_bytes) = t.read().segment_storage();
                let ratio = (raw_bytes * 100)
                    .checked_div(disk_bytes)
                    .map_or(Value::Null, |r| Value::Int(r as i64));
                vec![
                    Value::from(name.as_str()),
                    Value::Int(segments as i64),
                    Value::Int(disk_segments as i64),
                    Value::Int(disk_bytes as i64),
                    Value::Int(raw_bytes as i64),
                    ratio,
                    pool_pct.clone(),
                ]
            })
            .collect()
    }

    fn backups_rows(&self) -> Vec<Vec<Value>> {
        let Some(d) = &self.durability else {
            return Vec::new();
        };
        let (watermark, lag) = match d.archive_watermark() {
            Some(w) => (
                Value::Int(w as i64),
                Value::Int((d.next_lsn().saturating_sub(1).saturating_sub(w)) as i64),
            ),
            None => (Value::Null, Value::Null),
        };
        match d.last_backup() {
            Some(b) => vec![vec![
                Value::Int(b.at_unix_ms as i64),
                Value::from(b.dest.as_str()),
                Value::Int(b.lsn as i64),
                Value::Int(b.bytes as i64),
                Value::Int(b.segments as i64),
                Value::Bool(b.verified),
                Value::Bool(b.incremental),
                watermark,
                lag,
            ]],
            // No backup yet: still surface the archive state.
            None => vec![vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                watermark,
                lag,
            ]],
        }
    }

    fn slow_rows(&self) -> Vec<Vec<Value>> {
        self.slow_log
            .entries()
            .into_iter()
            .map(|e| {
                vec![
                    Value::Int(e.trace_id as i64),
                    Value::Int(e.session_id as i64),
                    Value::from(e.sql.as_str()),
                    Value::Int(e.wall_us as i64),
                    Value::Int(e.rows as i64),
                    Value::from(e.verdict.as_str()),
                    Value::from(e.plan.as_str()),
                ]
            })
            .collect()
    }
}

impl SystemViewProvider for CoreViews {
    fn system_view_rows(&self, view: SystemView) -> Option<Vec<Vec<Value>>> {
        match view {
            SystemView::Metrics => Some(self.metrics_rows()),
            SystemView::Wal => Some(vec![self.wal_row()]),
            SystemView::Sessions => Some(self.session_rows()),
            SystemView::SlowQueries => Some(self.slow_rows()),
            SystemView::Storage => Some(self.storage_rows()),
            SystemView::Backups => Some(self.backups_rows()),
            SystemView::Connections | SystemView::Replication => None,
        }
    }
}

/// An in-memory HyLite database.
///
/// `Database` owns the catalog; [`Database::session`] opens independent
/// sessions (each with its own transaction state), and
/// [`Database::execute`] runs SQL on a built-in convenience session.
/// All sessions report into one engine-wide [`MetricsRegistry`].
///
/// # Quickstart
///
/// ```
/// use hylite_core::Database;
///
/// let db = Database::new();
/// db.execute("CREATE TABLE t (x BIGINT)").unwrap();
/// db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
/// let r = db.execute("SELECT sum(x) FROM t").unwrap();
/// assert_eq!(r.scalar().unwrap(), hylite_common::Value::Int(6));
/// ```
///
/// Long-running statements can be governed per session — see
/// [`Session`] for timeouts, memory budgets, and
/// cancellation.
pub struct Database {
    catalog: Arc<Catalog>,
    metrics: Arc<MetricsRegistry>,
    durability: Option<Arc<Durability>>,
    recovery: Option<RecoveryReport>,
    default_session: Mutex<Session>,
    /// Hub behind the `hylite.*` system views; server layers register
    /// additional providers (connections, replication streams) here.
    sysviews: Arc<SystemViewHub>,
    /// Shared slow-query ring (`hylite.slow_queries`).
    slow_log: Arc<SlowQueryLog>,
    /// Weak per-session counters (`hylite.sessions`).
    session_stats: SessionStats,
    /// Next engine session id (the default session takes id 1).
    next_session_id: AtomicU64,
    /// Strong handle keeping the core provider registered on the hub.
    _core_views: Arc<CoreViews>,
}

impl Database {
    /// A fresh, empty, purely in-memory database (no durability; data is
    /// lost when the process exits). Alias: [`Database::in_memory`].
    pub fn new() -> Database {
        let catalog = Arc::new(Catalog::new());
        let metrics = Arc::new(MetricsRegistry::new());
        Database::assemble(catalog, metrics, None, None)
    }

    /// Wire the observability plane (system-view hub, slow-query log,
    /// session registry) and the default session around an opened engine.
    fn assemble(
        catalog: Arc<Catalog>,
        metrics: Arc<MetricsRegistry>,
        durability: Option<Arc<Durability>>,
        recovery: Option<RecoveryReport>,
    ) -> Database {
        let sysviews = Arc::new(SystemViewHub::new());
        let slow_log = Arc::new(SlowQueryLog::default());
        let session_stats: SessionStats = Arc::new(Mutex::new(BTreeMap::new()));
        let core_views = Arc::new(CoreViews {
            catalog: Arc::clone(&catalog),
            metrics: Arc::clone(&metrics),
            durability: durability.clone(),
            session_stats: Arc::clone(&session_stats),
            slow_log: Arc::clone(&slow_log),
        });
        sysviews.register(Arc::downgrade(&core_views) as Weak<dyn SystemViewProvider>);

        let stat = Arc::new(SessionStat::new(1));
        session_stats.lock().insert(1, Arc::downgrade(&stat));
        let mut session = Session::with_durability(
            Arc::clone(&catalog),
            Arc::clone(&metrics),
            durability.clone(),
        )
        .with_observability(stat, Arc::clone(&sysviews), Arc::clone(&slow_log));
        if durability
            .as_ref()
            .is_some_and(|d| d.role() == ReplRole::Replica)
        {
            session.set_read_only("(unknown; this database is in replica mode)");
        }

        Database {
            catalog,
            metrics,
            durability,
            recovery,
            default_session: Mutex::new(session),
            sysviews,
            slow_log,
            session_stats,
            next_session_id: AtomicU64::new(2),
            _core_views: core_views,
        }
    }

    /// A fresh, empty, purely in-memory database.
    pub fn in_memory() -> Database {
        Database::new()
    }

    /// Open (or create) a durable database rooted at `dir` on the real
    /// filesystem: recover the latest checkpoint plus the WAL tail, then
    /// accept commits with WAL-before-acknowledge semantics.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(
            Arc::new(StdVfs) as Arc<dyn Vfs>,
            dir.as_ref(),
            DurabilityOptions::default(),
        )
    }

    /// [`Database::open`] with an explicit [`Vfs`] (fault injection) and
    /// durability options.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        options: DurabilityOptions,
    ) -> Result<Database> {
        let metrics = Arc::new(MetricsRegistry::new());
        let (durability, catalog, report) =
            Durability::open(vfs, dir, options, Arc::clone(&metrics))?;
        let catalog = Arc::new(catalog);
        let durability = Arc::new(durability);
        Ok(Database::assemble(
            catalog,
            metrics,
            Some(durability),
            Some(report),
        ))
    }

    /// Whether this database persists commits to disk.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability engine, when the database was opened with
    /// [`Database::open`].
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// What recovery found when this database was opened (durable
    /// databases only).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Take a checkpoint now: snapshot all committed data, publish it
    /// atomically, and truncate the WAL. Errors on an in-memory database.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        match &self.durability {
            Some(d) => d.checkpoint(&self.catalog),
            None => Err(hylite_common::HyError::Storage(
                "checkpoint requires a durable database (Database::open)".into(),
            )),
        }
    }

    /// Graceful shutdown: flush and take a final checkpoint so restart
    /// recovery is instant. No-op for in-memory databases.
    pub fn close(&self) -> Result<Option<CheckpointStats>> {
        match &self.durability {
            Some(d) => d.close(&self.catalog).map(Some),
            None => Ok(None),
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The engine-wide metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time snapshot of every counter, gauge, and histogram.
    /// Render with [`MetricsSnapshot::render_text`] or
    /// [`MetricsSnapshot::render_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Whether this database was opened in the replica role (its data
    /// directory follows a primary and must not take local writes).
    pub fn is_replica(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|d| d.role() == hylite_storage::ReplRole::Replica)
    }

    /// Open a new session (reports into the shared metrics registry; on a
    /// durable database, the session's commits go through the WAL).
    ///
    /// Sessions on a replica-role database are born read-only; the server
    /// overrides the generic redirect message with the actual primary
    /// address via [`Session::set_read_only`].
    pub fn session(&self) -> Session {
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        let stat = Arc::new(SessionStat::new(id));
        {
            let mut stats = self.session_stats.lock();
            stats.retain(|_, w| w.strong_count() > 0);
            stats.insert(id, Arc::downgrade(&stat));
        }
        let mut session = Session::with_durability(
            Arc::clone(&self.catalog),
            Arc::clone(&self.metrics),
            self.durability.clone(),
        )
        .with_observability(stat, Arc::clone(&self.sysviews), Arc::clone(&self.slow_log));
        if self.is_replica() {
            session.set_read_only("(unknown; this database is in replica mode)");
        }
        session
    }

    /// The hub behind the `hylite.*` system views. Server layers register
    /// their own [`SystemViewProvider`]s (connections, replication
    /// streams) on it; the hub holds providers weakly, so dropping the
    /// provider unregisters it.
    pub fn system_views(&self) -> &Arc<SystemViewHub> {
        &self.sysviews
    }

    /// The shared slow-query ring buffer backing `hylite.slow_queries`.
    pub fn slow_query_log(&self) -> &Arc<SlowQueryLog> {
        &self.slow_log
    }

    /// Execute SQL on the database's default session (transactions on
    /// this session persist across `execute` calls).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.default_session.lock().execute(sql)
    }

    /// A handle that cancels the default session's running (or next)
    /// statement from any thread — see
    /// [`Session::cancel_handle`].
    pub fn cancel_handle(&self) -> Arc<hylite_common::CancelToken> {
        self.default_session.lock().cancel_handle()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::Value;

    #[test]
    fn create_insert_select() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)").unwrap();
        let r = db
            .execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
            .unwrap();
        assert_eq!(r.rows_affected, 3);
        let r = db
            .execute("SELECT a, b FROM t WHERE a >= 2 ORDER BY a")
            .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.value(0, 0).unwrap(), Value::Int(2));
        assert_eq!(r.value(1, 1).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn expressions_and_aggregates() {
        let db = Database::new();
        db.execute("CREATE TABLE n (x BIGINT)").unwrap();
        db.execute("INSERT INTO n VALUES (1), (2), (3), (4), (5)")
            .unwrap();
        let r = db
            .execute("SELECT count(*), sum(x), avg(x), min(x), max(x) FROM n")
            .unwrap();
        let row = &r.to_rows()[0];
        assert_eq!(row.values()[0], Value::Int(5));
        assert_eq!(row.values()[1], Value::Int(15));
        assert_eq!(row.values()[2], Value::Float(3.0));
        assert_eq!(row.values()[3], Value::Int(1));
        assert_eq!(row.values()[4], Value::Int(5));
    }

    #[test]
    fn group_by_having() {
        let db = Database::new();
        db.execute("CREATE TABLE g (k BIGINT, v BIGINT)").unwrap();
        db.execute("INSERT INTO g VALUES (1, 10), (1, 20), (2, 5), (2, 5), (3, 1)")
            .unwrap();
        let r = db
            .execute("SELECT k, sum(v) AS s FROM g GROUP BY k HAVING count(*) > 1 ORDER BY k")
            .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.value(0, 1).unwrap(), Value::Int(30));
        assert_eq!(r.value(1, 1).unwrap(), Value::Int(10));
    }

    #[test]
    fn joins_and_subqueries() {
        let db = Database::new();
        db.execute("CREATE TABLE a (id BIGINT, name VARCHAR)")
            .unwrap();
        db.execute("CREATE TABLE b (id BIGINT, score DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.execute("INSERT INTO b VALUES (2, 9.5), (3, 1.0)")
            .unwrap();
        let r = db
            .execute("SELECT a.name, b.score FROM a JOIN b ON a.id = b.id")
            .unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.value(0, 0).unwrap(), Value::from("y"));
        let r = db
            .execute("SELECT t.name FROM (SELECT name FROM a WHERE id > 1) t")
            .unwrap();
        assert_eq!(r.row_count(), 1);
        // LEFT JOIN pads.
        let r = db
            .execute("SELECT a.id, b.score FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id")
            .unwrap();
        assert_eq!(r.row_count(), 2);
        assert!(r.value(0, 1).unwrap().is_null());
    }

    #[test]
    fn paper_listing_1_iterate_sql() {
        let db = Database::new();
        let r = db
            .execute(
                "SELECT * FROM ITERATE ((SELECT 7 \"x\"), (SELECT x+7 FROM iterate), \
                 (SELECT x FROM iterate WHERE x >= 100))",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(105));
    }

    #[test]
    fn recursive_cte_sql() {
        let db = Database::new();
        let r = db
            .execute(
                "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 10) \
                 SELECT count(*), sum(n) FROM r",
            )
            .unwrap();
        let row = &r.to_rows()[0];
        assert_eq!(row.values()[0], Value::Int(10));
        assert_eq!(row.values()[1], Value::Int(55));
    }

    #[test]
    fn kmeans_sql_with_lambda() {
        let db = Database::new();
        db.execute("CREATE TABLE data (x DOUBLE, y DOUBLE)")
            .unwrap();
        db.execute("CREATE TABLE center (x DOUBLE, y DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO data VALUES (0.0, 0.0), (0.5, 0.5), (10.0, 10.0), (10.5, 10.5)")
            .unwrap();
        db.execute("INSERT INTO center VALUES (1.0, 1.0), (9.0, 9.0)")
            .unwrap();
        let r = db
            .execute(
                "SELECT * FROM KMEANS((SELECT x, y FROM data), (SELECT x, y FROM center), \
                 λ(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, 10)",
            )
            .unwrap();
        assert_eq!(r.row_count(), 2);
        // sizes column is last.
        assert_eq!(r.value(0, 3).unwrap(), Value::Int(2));
        assert_eq!(r.value(1, 3).unwrap(), Value::Int(2));
    }

    #[test]
    fn pagerank_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
            .unwrap();
        db.execute("INSERT INTO edges VALUES (1,2),(2,3),(3,4),(4,1)")
            .unwrap();
        let r = db
            .execute("SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0001)")
            .unwrap();
        assert_eq!(r.row_count(), 4);
        for i in 0..4 {
            let rank = r.value(i, 1).unwrap().as_float().unwrap();
            assert!((rank - 0.25).abs() < 1e-3);
        }
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let db = Database::new();
        db.execute("CREATE TABLE t (x BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        // Same session sees its own uncommitted row.
        assert_eq!(
            db.execute("SELECT count(*) FROM t")
                .unwrap()
                .scalar()
                .unwrap(),
            Value::Int(2)
        );
        // Another session sees only committed data.
        let mut other = db.session();
        assert_eq!(
            other
                .execute("SELECT count(*) FROM t")
                .unwrap()
                .scalar()
                .unwrap(),
            Value::Int(1)
        );
        db.execute("ROLLBACK").unwrap();
        assert_eq!(
            db.execute("SELECT count(*) FROM t")
                .unwrap()
                .scalar()
                .unwrap(),
            Value::Int(1)
        );
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        db.execute("COMMIT").unwrap();
        assert_eq!(
            other
                .execute("SELECT count(*) FROM t")
                .unwrap()
                .scalar()
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn update_and_delete() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id BIGINT, v DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
            .unwrap();
        let r = db.execute("UPDATE t SET v = v * 10 WHERE id >= 2").unwrap();
        assert_eq!(r.rows_affected, 2);
        let r = db.execute("SELECT sum(v) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Float(51.0));
        let r = db.execute("DELETE FROM t WHERE id = 1").unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(
            db.execute("SELECT count(*) FROM t")
                .unwrap()
                .scalar()
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn explain_shows_plan() {
        let db = Database::new();
        db.execute("CREATE TABLE t (x BIGINT)").unwrap();
        let r = db.execute("EXPLAIN SELECT x FROM t WHERE x > 1").unwrap();
        let text = r.to_table_string();
        assert!(text.contains("TableScan"), "{text}");
        assert!(text.contains("filter"), "{text}");
    }

    #[test]
    fn error_paths() {
        let db = Database::new();
        assert!(db.execute("SELEC 1").is_err());
        assert!(db.execute("SELECT * FROM missing").is_err());
        assert!(db.execute("COMMIT").is_err());
        db.execute("BEGIN").unwrap();
        assert!(db.execute("BEGIN").is_err());
        db.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn insert_from_select_and_column_list() {
        let db = Database::new();
        db.execute("CREATE TABLE src (a BIGINT, b VARCHAR)")
            .unwrap();
        db.execute("CREATE TABLE dst (a BIGINT, b VARCHAR, c DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO src VALUES (1, 'x')").unwrap();
        db.execute("INSERT INTO dst (b, a) SELECT b, a FROM src")
            .unwrap();
        let r = db.execute("SELECT a, b, c FROM dst").unwrap();
        assert_eq!(r.value(0, 0).unwrap(), Value::Int(1));
        assert_eq!(r.value(0, 1).unwrap(), Value::from("x"));
        assert!(r.value(0, 2).unwrap().is_null(), "unlisted column is NULL");
    }

    #[test]
    fn naive_bayes_sql_roundtrip() {
        let db = Database::new();
        db.execute("CREATE TABLE train (f1 DOUBLE, f2 DOUBLE, label BIGINT)")
            .unwrap();
        db.execute(
            "INSERT INTO train VALUES (0.1, 0.2, 0), (0.2, 0.1, 0), (0.0, 0.0, 0), \
             (5.1, 5.2, 1), (5.2, 5.1, 1), (5.0, 5.0, 1)",
        )
        .unwrap();
        db.execute("CREATE TABLE model (class BIGINT, attribute VARCHAR, prior DOUBLE, mean DOUBLE, stddev DOUBLE)").unwrap();
        db.execute(
            "INSERT INTO model SELECT * FROM NAIVE_BAYES_TRAIN((SELECT f1, f2, label FROM train), label)",
        )
        .unwrap();
        let r = db
            .execute(
                "SELECT * FROM NAIVE_BAYES_PREDICT((SELECT * FROM model), \
                 (SELECT 0.15 f1, 0.15 f2)) ",
            )
            .unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.value(0, 2).unwrap(), Value::Int(0), "predicted label");
    }

    #[test]
    fn class_stats_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE t (x DOUBLE, label VARCHAR)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1.0, 'a'), (3.0, 'a'), (10.0, 'b')")
            .unwrap();
        let r = db
            .execute("SELECT * FROM CLASS_STATS((SELECT x, label FROM t), label) ORDER BY class")
            .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.value(0, 0).unwrap(), Value::from("a"));
        assert_eq!(r.value(0, 2).unwrap(), Value::Int(2));
        assert_eq!(r.value(0, 3).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn durable_database_survives_reopen() {
        use hylite_common::FaultVfs;
        use std::path::PathBuf;

        let fault = FaultVfs::new();
        let dir = PathBuf::from("data");
        let open = |fault: &FaultVfs| {
            Database::open_with(
                Arc::new(fault.clone()) as Arc<dyn Vfs>,
                &dir,
                DurabilityOptions::default(),
            )
            .unwrap()
        };
        {
            let db = open(&fault);
            assert!(db.is_durable());
            db.execute("CREATE TABLE t (x BIGINT, s VARCHAR)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
                .unwrap();
            db.execute("UPDATE t SET s = 'z' WHERE x = 2").unwrap();
            db.execute("DELETE FROM t WHERE x = 1").unwrap();
            // No close(): reopen must replay the WAL alone.
        }
        let db = open(&fault);
        let report = db.recovery_report().unwrap().clone();
        assert!(!report.checkpoint_loaded);
        assert!(report.replayed_records >= 4);
        let r = db.execute("SELECT x, s FROM t").unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.value(0, 0).unwrap(), Value::Int(2));
        assert_eq!(r.value(0, 1).unwrap(), Value::from("z"));

        // Checkpoint, add more, reopen: checkpoint + WAL tail combine.
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t VALUES (3, 'c')").unwrap();
        drop(db);
        let db = open(&fault);
        let report = db.recovery_report().unwrap().clone();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(
            db.execute("SELECT count(*) FROM t")
                .unwrap()
                .scalar()
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn durable_transactions_are_atomic_in_the_wal() {
        use hylite_common::FaultVfs;
        use std::path::PathBuf;

        let fault = FaultVfs::new();
        let dir = PathBuf::from("data");
        let open = |fault: &FaultVfs| {
            Database::open_with(
                Arc::new(fault.clone()) as Arc<dyn Vfs>,
                &dir,
                DurabilityOptions::default(),
            )
            .unwrap()
        };
        {
            let db = open(&fault);
            db.execute("CREATE TABLE t (x BIGINT)").unwrap();
            db.execute("BEGIN").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.execute("INSERT INTO t VALUES (2)").unwrap();
            db.execute("COMMIT").unwrap();
            // A rolled-back transaction must leave no WAL trace.
            db.execute("BEGIN").unwrap();
            db.execute("INSERT INTO t VALUES (99)").unwrap();
            db.execute("ROLLBACK").unwrap();
            // An open transaction at "crash" time is likewise invisible.
            db.execute("BEGIN").unwrap();
            db.execute("INSERT INTO t VALUES (100)").unwrap();
        }
        let db = open(&fault);
        let r = db.execute("SELECT sum(x) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(3));
    }

    #[test]
    fn checkpoint_errors_on_in_memory_database() {
        let db = Database::new();
        assert!(!db.is_durable());
        assert!(db.checkpoint().is_err());
        assert!(db.close().unwrap().is_none());
    }

    #[test]
    fn system_views_answer_plain_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE t (x BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();

        // Metrics: the inserts above bumped counters, so rows exist.
        let r = db
            .execute("SELECT count(*) FROM hylite.metrics WHERE kind = 'counter'")
            .unwrap();
        assert!(matches!(r.scalar().unwrap(), Value::Int(n) if n > 0));

        // WAL: an in-memory database reports the 'memory' pseudo-role.
        let r = db
            .execute("SELECT role, sync_mode FROM hylite.wal")
            .unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.value(0, 0).unwrap(), Value::from("memory"));
        assert_eq!(r.value(0, 1).unwrap(), Value::from("none"));

        // Sessions: at least the default session (id 1) is registered,
        // and its statement counter moves.
        let r = db
            .execute("SELECT statements FROM hylite.sessions WHERE session_id = 1")
            .unwrap();
        assert!(matches!(r.scalar().unwrap(), Value::Int(n) if n >= 3));

        // A second session shows up and vanishes when dropped.
        let mut s2 = db.session();
        s2.execute("SELECT 1").unwrap();
        let count = |db: &Database| {
            db.execute("SELECT count(*) FROM hylite.sessions")
                .unwrap()
                .scalar()
                .unwrap()
        };
        assert_eq!(count(&db), Value::Int(2));
        drop(s2);
        assert_eq!(count(&db), Value::Int(1));
    }

    #[test]
    fn slow_query_log_captures_and_traces() {
        let db = Database::new();
        db.execute("SET slow_query_ms = 1").unwrap();
        // An ITERATE loop with enough rounds comfortably exceeds 1ms.
        db.execute(
            "SELECT * FROM ITERATE ((SELECT 0 \"x\"), (SELECT x+1 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 50000))",
        )
        .unwrap();
        let entries = db.slow_query_log().entries();
        assert!(!entries.is_empty(), "slow query was not captured");
        let e = entries.last().unwrap();
        assert_eq!(e.session_id, 1);
        assert_eq!(e.verdict, "ok");
        assert!(e.sql.contains("ITERATE"), "{}", e.sql);
        assert!(e.wall_us >= 1000, "wall_us={}", e.wall_us);
        assert!(e.plan.contains("Iterate"), "plan: {}", e.plan);
        // Trace anatomy: session id in the high bits.
        assert_eq!(e.trace_id >> 20, 1);

        // The ring is queryable through SQL, on the same database.
        let r = db
            .execute("SELECT count(*) FROM hylite.slow_queries")
            .unwrap();
        assert!(matches!(r.scalar().unwrap(), Value::Int(n) if n >= 1));

        // EXPLAIN ANALYZE prints the same trace id scheme.
        let r = db.execute("EXPLAIN ANALYZE SELECT 1").unwrap();
        let text = r.to_table_string();
        assert!(text.contains("trace="), "{text}");
    }

    #[test]
    fn analytics_composes_with_sql_postprocessing() {
        // The paper's key claim: operators are relational — results can be
        // post-processed in the same query.
        let db = Database::new();
        db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
            .unwrap();
        db.execute("INSERT INTO edges VALUES (1,2),(2,1),(3,1),(4,1)")
            .unwrap();
        let r = db
            .execute(
                "SELECT pr.vertex FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0) pr \
                 ORDER BY pr.rank DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(1), "vertex 1 is the hub");
    }
}
