//! Sessions: statement execution with single-writer transactions.

use std::collections::HashSet;
use std::sync::Arc;

use hylite_common::{Chunk, HyError, Result, Value};
use hylite_exec::{ExecContext, Executor};
use hylite_expr::ScalarExpr;
use hylite_planner::binder::{Binder, BoundStatement};
use hylite_planner::{LogicalPlan, Optimizer};
use hylite_sql::{parse_sql, Statement};
use hylite_storage::{Catalog, Transaction};

use crate::result::QueryResult;

/// One client session. Holds the transaction state; queries read their
/// own uncommitted changes and the committed state of everything else.
pub struct Session {
    catalog: Arc<Catalog>,
    tx: Option<Transaction>,
    /// Names of tables mutated by the open transaction.
    own_tables: HashSet<String>,
}

impl Session {
    /// New session over a catalog.
    pub fn new(catalog: Arc<Catalog>) -> Session {
        Session {
            catalog,
            tx: None,
            own_tables: HashSet::new(),
        }
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Execute a script of `;`-separated statements; returns the last
    /// statement's result.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let statements = parse_sql(sql)?;
        if statements.is_empty() {
            return Err(HyError::Parse("empty statement".into()));
        }
        let mut last = None;
        for stmt in &statements {
            last = Some(self.execute_statement(stmt)?);
        }
        Ok(last.expect("non-empty checked"))
    }

    /// Execute one parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        let bound = Binder::new(&self.catalog).bind_statement(stmt)?;
        self.execute_bound(bound)
    }

    fn execute_bound(&mut self, bound: BoundStatement) -> Result<QueryResult> {
        match bound {
            BoundStatement::Query(plan) => self.run_query(plan),
            BoundStatement::CreateTable {
                name,
                schema,
                if_not_exists,
            } => {
                if if_not_exists && self.catalog.has_table(&name) {
                    return Ok(QueryResult::affected(0));
                }
                self.catalog.create_table(&name, schema)?;
                Ok(QueryResult::affected(0))
            }
            BoundStatement::DropTable { name, if_exists } => {
                self.catalog.drop_table(&name, if_exists)?;
                self.own_tables.remove(&name.to_ascii_lowercase());
                Ok(QueryResult::affected(0))
            }
            BoundStatement::Insert { table, source } => {
                let plan = Optimizer::new().optimize(source)?;
                let chunks = self.run_plan(&plan)?;
                let types = plan.schema().types();
                let data = Chunk::concat(&types, &chunks)?;
                let n = data.len();
                let t = self.catalog.get_table(&table)?;
                t.write().insert_chunk(data)?;
                self.after_write(&table);
                Ok(QueryResult::affected(n))
            }
            BoundStatement::Update {
                table,
                exprs,
                filter,
            } => self.run_update(&table, &exprs, filter.as_ref()),
            BoundStatement::Delete { table, filter } => {
                self.run_delete(&table, filter.as_ref())
            }
            BoundStatement::Begin => {
                if self.tx.is_some() {
                    return Err(HyError::Transaction(
                        "a transaction is already in progress".into(),
                    ));
                }
                self.tx = Some(Transaction::new());
                Ok(QueryResult::affected(0))
            }
            BoundStatement::Commit => match self.tx.take() {
                Some(tx) => {
                    tx.commit();
                    self.own_tables.clear();
                    Ok(QueryResult::affected(0))
                }
                None => Err(HyError::Transaction("no transaction in progress".into())),
            },
            BoundStatement::Rollback => match self.tx.take() {
                Some(tx) => {
                    tx.rollback();
                    self.own_tables.clear();
                    Ok(QueryResult::affected(0))
                }
                None => Err(HyError::Transaction("no transaction in progress".into())),
            },
            BoundStatement::Explain(inner) => {
                let text = match *inner {
                    BoundStatement::Query(plan) => {
                        let optimized = Optimizer::new().optimize(plan)?;
                        optimized.explain()
                    }
                    other => format!("{other:?}\n"),
                };
                Ok(QueryResult::text(
                    "plan",
                    text.lines().map(str::to_owned).collect(),
                ))
            }
        }
    }

    fn run_query(&mut self, plan: LogicalPlan) -> Result<QueryResult> {
        let optimized = Optimizer::new().optimize(plan)?;
        let schema = Arc::new(optimized.schema().without_qualifiers());
        let mut executor = Executor::new(self.exec_context());
        let chunks = executor.execute(&optimized)?;
        Ok(QueryResult::rows(schema, chunks, executor.ctx.stats))
    }

    fn run_plan(&mut self, plan: &LogicalPlan) -> Result<Vec<Chunk>> {
        let mut executor = Executor::new(self.exec_context());
        executor.execute(plan)
    }

    fn exec_context(&self) -> ExecContext {
        ExecContext::new(Arc::clone(&self.catalog))
            .with_own_tables(self.own_tables.iter().cloned())
    }

    fn table_snapshot(&self, table: &str) -> Result<hylite_storage::TableSnapshot> {
        let t = self.catalog.get_table(table)?;
        let guard = t.read();
        Ok(if self.own_tables.contains(&table.to_ascii_lowercase()) {
            guard.snapshot()
        } else {
            guard.committed_snapshot()
        })
    }

    fn run_update(
        &mut self,
        table: &str,
        exprs: &[ScalarExpr],
        filter: Option<&ScalarExpr>,
    ) -> Result<QueryResult> {
        let snapshot = self.table_snapshot(table)?;
        let hits = hylite_exec::scan::scan_with_row_ids(&snapshot, filter)?;
        let mut ids = Vec::new();
        let mut new_rows: Vec<Vec<Value>> = Vec::new();
        for (chunk, row_ids) in &hits {
            let cols: Vec<hylite_common::ColumnVector> = exprs
                .iter()
                .map(|e| e.eval(chunk))
                .collect::<Result<_>>()?;
            for i in 0..chunk.len() {
                new_rows.push(cols.iter().map(|c| c.value(i)).collect());
            }
            ids.extend_from_slice(row_ids);
        }
        let n = ids.len();
        if n > 0 {
            let t = self.catalog.get_table(table)?;
            t.write().update_rows(&ids, new_rows)?;
            self.after_write(table);
        }
        Ok(QueryResult::affected(n))
    }

    fn run_delete(&mut self, table: &str, filter: Option<&ScalarExpr>) -> Result<QueryResult> {
        let snapshot = self.table_snapshot(table)?;
        let hits = hylite_exec::scan::scan_with_row_ids(&snapshot, filter)?;
        let ids: Vec<usize> = hits.into_iter().flat_map(|(_, ids)| ids).collect();
        let n = ids.len();
        if n > 0 {
            let t = self.catalog.get_table(table)?;
            t.write().delete_rows(&ids)?;
            self.after_write(table);
        }
        Ok(QueryResult::affected(n))
    }

    /// Post-write bookkeeping: inside a transaction, record the touched
    /// table; in autocommit mode, publish immediately.
    fn after_write(&mut self, table: &str) {
        let t = self
            .catalog
            .get_table(table)
            .expect("table existed during the write");
        match &mut self.tx {
            Some(tx) => {
                tx.touch(&t);
                self.own_tables.insert(table.to_ascii_lowercase());
            }
            None => t.write().commit(),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // An open transaction rolls back when the session ends.
        if let Some(tx) = self.tx.take() {
            tx.rollback();
        }
    }
}
