//! Sessions: statement execution with single-writer transactions.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_common::governor::{CancelToken, Governor};
use hylite_common::sysview::{SlowQueryEntry, SlowQueryLog, SystemViewHub};
use hylite_common::telemetry::MetricsRegistry;
use hylite_common::{Chunk, HyError, Result, Schema, Value};
use hylite_exec::{ExecContext, Executor};
use hylite_expr::ScalarExpr;
use hylite_planner::binder::{Binder, BoundStatement};
use hylite_planner::{stats, LogicalPlan, Optimizer};
use hylite_sql::{parse_sql, Statement};
use hylite_storage::{Catalog, Durability, RedoOp, Transaction};

use crate::result::QueryResult;

/// Session-level resource knobs, adjusted with `SET <name> = <value>`.
///
/// | Setting                | Default | Meaning                                   |
/// |------------------------|---------|-------------------------------------------|
/// | `statement_timeout_ms` | `0`     | Per-statement wall-clock cap; `0` = none  |
/// | `memory_budget_mb`     | `0`     | Per-statement memory cap; `0` = unlimited |
/// | `slow_query_ms`        | `0`     | Capture statements at least this slow into `hylite.slow_queries`; `0` = off |
/// | `slow_query_log_size`  | `128`   | Capacity of the shared slow-query ring    |
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSettings {
    /// Statement timeout in milliseconds; `0` disables the deadline.
    pub statement_timeout_ms: u64,
    /// Per-statement memory budget in mebibytes; `0` means unlimited.
    pub memory_budget_mb: u64,
    /// Slow-query capture threshold in milliseconds; `0` disables capture.
    pub slow_query_ms: u64,
}

/// Shared, lock-free observability counters for one session, surfaced by
/// the `hylite.sessions` system view. The owning database keeps only a
/// weak handle in its session registry while the session itself holds the
/// strong one, so a closed session disappears from the view on its own.
#[derive(Debug)]
pub struct SessionStat {
    id: u64,
    statements: AtomicU64,
    errors: AtomicU64,
    in_transaction: AtomicBool,
    last_trace_id: AtomicU64,
    created: Instant,
}

impl SessionStat {
    /// Fresh counters for engine session `id` (id `0` = a bare session
    /// created outside any [`crate::Database`]).
    pub fn new(id: u64) -> SessionStat {
        SessionStat {
            id,
            statements: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_transaction: AtomicBool::new(false),
            last_trace_id: AtomicU64::new(0),
            created: Instant::now(),
        }
    }

    /// The engine session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Statements executed so far (including failed ones).
    pub fn statements(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    /// Statements that ended in an error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Whether a transaction was open after the last statement.
    pub fn in_transaction(&self) -> bool {
        self.in_transaction.load(Ordering::Relaxed)
    }

    /// Trace id of the session's most recent statement.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id.load(Ordering::Relaxed)
    }

    /// Seconds since the session was opened.
    pub fn age_seconds(&self) -> u64 {
        self.created.elapsed().as_secs()
    }

    fn set_last_trace(&self, trace: u64) {
        self.last_trace_id.store(trace, Ordering::Relaxed);
    }

    fn record_statement(&self, failed: bool, in_tx: bool) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.in_transaction.store(in_tx, Ordering::Relaxed);
    }
}

/// One client session. Holds the transaction state; queries read their
/// own uncommitted changes and the committed state of everything else.
///
/// Every statement runs under a fresh [`Governor`] built from the
/// session's [`SessionSettings`] and its shared [`CancelToken`] (see
/// [`cancel_handle`](Session::cancel_handle)), so cancellation, timeouts,
/// and budget violations abort exactly one statement and leave the
/// session usable.
///
/// # Quickstart
///
/// ```
/// use hylite_core::Database;
///
/// let db = Database::new();
/// let mut session = db.session();
/// session.execute("CREATE TABLE t (x BIGINT)").unwrap();
/// session.execute("INSERT INTO t VALUES (1), (2)").unwrap();
///
/// // Resource knobs are per session; 0 disables a knob again.
/// session.execute("SET statement_timeout_ms = 5000").unwrap();
/// session.execute("SET memory_budget_mb = 256").unwrap();
/// assert_eq!(session.settings().statement_timeout_ms, 5000);
///
/// let r = session.execute("SELECT count(*) FROM t").unwrap();
/// assert_eq!(r.scalar().unwrap(), hylite_common::Value::Int(2));
/// ```
pub struct Session {
    catalog: Arc<Catalog>,
    tx: Option<Transaction>,
    /// Names of tables mutated by the open transaction.
    own_tables: HashSet<String>,
    /// Engine-wide metrics registry, shared with the owning database.
    metrics: Arc<MetricsRegistry>,
    /// Resource knobs (`SET statement_timeout_ms`, `SET memory_budget_mb`).
    settings: SessionSettings,
    /// Cancel token shared with [`cancel_handle`](Session::cancel_handle)
    /// callers; observed by the currently running statement.
    cancel: Arc<CancelToken>,
    /// The governor of the statement currently executing (an unlimited
    /// placeholder between statements).
    governor: Arc<Governor>,
    /// Durability engine of the owning database; `None` for an in-memory
    /// database.
    durability: Option<Arc<Durability>>,
    /// Redo ops staged by the open transaction, logged as one WAL commit
    /// record on COMMIT. Empty outside transactions (autocommit logs per
    /// statement) and when `durability` is `None`.
    redo: Vec<RedoOp>,
    /// Whether this session holds the database's writer gate. Acquired
    /// at the first table mutation of a statement (or transaction) and
    /// held through publish/rollback, so at most one session ever has
    /// staged (uncommitted) changes — the invariant `Table::commit` /
    /// `Table::rollback` rely on — and WAL frame order matches physical
    /// append order.
    holds_gate: bool,
    /// When set, the session serves a read replica: every write
    /// statement is rejected with [`HyError::ReadOnly`] naming this
    /// primary address, before binding even runs.
    read_only_primary: Option<String>,
    /// Observability counters shared with the database's session
    /// registry (`hylite.sessions`). Bare sessions get a private id-0
    /// stat that nothing else observes.
    stat: Arc<SessionStat>,
    /// The database-wide slow-query ring (`hylite.slow_queries`);
    /// `None` for bare sessions, which then never capture.
    slow_log: Option<Arc<SlowQueryLog>>,
    /// System-view hub threaded into executors so `hylite.*` scans see
    /// live engine state; `None` for bare sessions.
    sysviews: Option<Arc<SystemViewHub>>,
    /// Monotonic per-session statement counter; the low 20 bits of every
    /// trace id minted by this session.
    trace_seq: u64,
}

impl Session {
    /// New session over a catalog, with a private metrics registry.
    pub fn new(catalog: Arc<Catalog>) -> Session {
        Session::with_metrics(catalog, Arc::new(MetricsRegistry::new()))
    }

    /// New session reporting into a shared metrics registry.
    pub fn with_metrics(catalog: Arc<Catalog>, metrics: Arc<MetricsRegistry>) -> Session {
        Session::with_durability(catalog, metrics, None)
    }

    /// New session for a durable database: commits are acknowledged only
    /// after their redo record reaches the WAL (per the configured sync
    /// mode).
    pub fn with_durability(
        catalog: Arc<Catalog>,
        metrics: Arc<MetricsRegistry>,
        durability: Option<Arc<Durability>>,
    ) -> Session {
        Session {
            catalog,
            tx: None,
            own_tables: HashSet::new(),
            metrics,
            settings: SessionSettings::default(),
            cancel: Arc::new(CancelToken::new()),
            governor: Arc::new(Governor::unlimited()),
            durability,
            redo: Vec::new(),
            holds_gate: false,
            read_only_primary: None,
            stat: Arc::new(SessionStat::new(0)),
            slow_log: None,
            sysviews: None,
            trace_seq: 0,
        }
    }

    /// Attach the database's observability plane: a registered
    /// [`SessionStat`], the system-view hub (so this session's queries can
    /// scan `hylite.*`), and the shared slow-query ring.
    pub fn with_observability(
        mut self,
        stat: Arc<SessionStat>,
        sysviews: Arc<SystemViewHub>,
        slow_log: Arc<SlowQueryLog>,
    ) -> Session {
        self.stat = stat;
        self.sysviews = Some(sysviews);
        self.slow_log = Some(slow_log);
        self
    }

    /// The engine session id (`0` for bare sessions).
    pub fn id(&self) -> u64 {
        self.stat.id()
    }

    /// Trace id of the most recently executed statement. The same id is
    /// printed by `EXPLAIN ANALYZE` and recorded in `hylite.slow_queries`,
    /// tying a wire request to its plan and its slow-log entry.
    pub fn last_trace_id(&self) -> u64 {
        self.stat.last_trace_id()
    }

    /// This session's shared observability counters.
    pub fn stat(&self) -> &Arc<SessionStat> {
        &self.stat
    }

    /// Mark this session read-only on behalf of a replica following
    /// `primary`. Write statements then fail with [`HyError::ReadOnly`]
    /// (wire code `ReadOnlyReplica`, retryable) naming the primary, so a
    /// client knows where to send the write — or to retry here after a
    /// promotion.
    pub fn set_read_only(&mut self, primary: impl Into<String>) {
        self.read_only_primary = Some(primary.into());
    }

    /// The primary address writes are redirected to, if this session is
    /// read-only.
    pub fn read_only_primary(&self) -> Option<&str> {
        self.read_only_primary.as_deref()
    }

    /// Whether `stmt` would mutate data or schema. `EXPLAIN ANALYZE`
    /// executes its inner statement, so it counts as a write when the
    /// inner statement does; plain `EXPLAIN` never executes anything.
    fn statement_writes(stmt: &Statement) -> bool {
        match stmt {
            Statement::CreateTable { .. }
            | Statement::DropTable { .. }
            | Statement::Insert { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. } => true,
            Statement::Explain {
                statement,
                analyze: true,
            } => Session::statement_writes(statement),
            _ => false,
        }
    }

    /// Reject `stmt` if the session is read-only and the statement
    /// writes.
    fn check_read_only(&self, stmt: &Statement) -> Result<()> {
        if let Some(primary) = &self.read_only_primary {
            if Session::statement_writes(stmt) {
                return Err(HyError::ReadOnly(format!(
                    "this server is a read-only replica; send writes to the primary at {primary}"
                )));
            }
        }
        Ok(())
    }

    /// Acquire the database-wide writer gate if this session doesn't
    /// hold it yet. Must be called before the first table mutation of
    /// any write statement.
    fn begin_write(&mut self) {
        if !self.holds_gate {
            self.catalog.writer_gate().acquire();
            self.holds_gate = true;
        }
    }

    /// Release the writer gate at the end of a write statement — unless
    /// a transaction is open, which keeps the gate until COMMIT/ROLLBACK
    /// (single-writer transactions).
    fn end_statement_write(&mut self) {
        if self.holds_gate && self.tx.is_none() {
            self.holds_gate = false;
            self.catalog.writer_gate().release();
        }
    }

    /// The session's current resource settings.
    pub fn settings(&self) -> SessionSettings {
        self.settings
    }

    /// A shareable handle that cancels the session's running (or next)
    /// statement from any thread. Cancellation is sticky until a
    /// statement actually aborts with [`HyError::Cancelled`]; the session
    /// then clears it so subsequent statements run normally.
    pub fn cancel_handle(&self) -> Arc<CancelToken> {
        Arc::clone(&self.cancel)
    }

    /// The metrics registry this session reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Execute a script of `;`-separated statements; returns the last
    /// statement's result.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let statements = parse_sql(sql)?;
        if statements.is_empty() {
            return Err(HyError::Parse("empty statement".into()));
        }
        let mut last = None;
        for stmt in &statements {
            last = Some(self.execute_traced(stmt, Some(sql))?);
        }
        Ok(last.expect("non-empty checked"))
    }

    /// Execute one parsed statement under a fresh per-statement governor.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        self.execute_traced(stmt, None)
    }

    /// Mint the next trace id: session id in the high bits, a per-session
    /// statement sequence in the low 20. Recorded in [`SessionStat`]
    /// *before* execution so `EXPLAIN ANALYZE` can print it.
    fn next_trace_id(&mut self) -> u64 {
        self.trace_seq = self.trace_seq.wrapping_add(1);
        let trace = (self.stat.id() << 20) | (self.trace_seq & 0xF_FFFF);
        self.stat.set_last_trace(trace);
        trace
    }

    /// The statement-execution spine: governor setup, trace-id minting,
    /// metrics, session counters, and slow-query capture. `sql` is the
    /// original text when known (it is recorded in the slow-query log).
    fn execute_traced(&mut self, stmt: &Statement, sql: Option<&str>) -> Result<QueryResult> {
        self.check_read_only(stmt)?;
        let started = Instant::now();
        let trace_id = self.next_trace_id();
        self.governor = self.new_statement_governor();
        let governor = Arc::clone(&self.governor);
        // Capture the optimizer input up front when slow-query logging is
        // armed: by the time we know the statement was slow, the bound
        // plan has been consumed.
        let capture = self.slow_log.is_some() && self.settings.slow_query_ms > 0;
        let mut plan_text = String::new();
        let result = Binder::new(&self.catalog)
            .bind_statement(stmt)
            .and_then(|bound| {
                if capture {
                    if let BoundStatement::Query(plan) = &bound {
                        plan_text = plan.explain();
                    }
                }
                self.execute_bound(bound)
            });
        self.governor = Arc::new(Governor::unlimited());
        let wall_us = started.elapsed().as_micros() as u64;
        self.metrics.histogram("query.wall_us").record(wall_us);
        let peak = governor.budget().peak();
        if peak > 0 {
            self.metrics
                .histogram("governor.peak_reserved_bytes")
                .record(peak);
        }
        let denied = governor.budget().denied();
        if denied > 0 {
            self.metrics
                .counter("governor.denied_reservations")
                .add(denied);
        }
        let verdict = match &result {
            Ok(_) => {
                self.metrics.counter("query.executed").inc();
                "ok"
            }
            Err(e) => {
                self.metrics.counter("query.failed").inc();
                match e {
                    HyError::Cancelled(_) => {
                        // One cancel request kills at most one statement:
                        // clear the sticky token now that it has fired.
                        self.cancel.reset();
                        self.metrics.counter("query.cancelled").inc();
                        "cancelled"
                    }
                    HyError::Timeout(_) => {
                        self.metrics.counter("query.timed_out").inc();
                        "timeout"
                    }
                    HyError::BudgetExceeded(_) => {
                        self.metrics.counter("query.budget_exceeded").inc();
                        "budget_exceeded"
                    }
                    _ => "error",
                }
            }
        };
        self.stat
            .record_statement(result.is_err(), self.tx.is_some());
        if capture && wall_us >= self.settings.slow_query_ms.saturating_mul(1000) {
            let rows = result
                .as_ref()
                .map(|r| r.row_count().max(r.rows_affected) as u64)
                .unwrap_or(0);
            if let Some(log) = &self.slow_log {
                log.push(SlowQueryEntry {
                    trace_id,
                    session_id: self.stat.id(),
                    sql: match sql {
                        Some(text) => text.to_owned(),
                        None => format!("{stmt:?}"),
                    },
                    wall_us,
                    rows,
                    verdict: verdict.to_owned(),
                    plan: std::mem::take(&mut plan_text),
                });
            }
        }
        result
    }

    /// Build the governor for the next statement from the current
    /// settings: the shared cancel token, a deadline if
    /// `statement_timeout_ms` is set, and a byte budget if
    /// `memory_budget_mb` is set.
    fn new_statement_governor(&self) -> Arc<Governor> {
        let timeout = (self.settings.statement_timeout_ms > 0)
            .then(|| Duration::from_millis(self.settings.statement_timeout_ms));
        let budget = (self.settings.memory_budget_mb > 0)
            .then(|| self.settings.memory_budget_mb.saturating_mul(1024 * 1024));
        Arc::new(Governor::new(Arc::clone(&self.cancel), timeout, budget))
    }

    /// Apply `SET <name> = <value>`. Unknown names are a bind error; the
    /// session's settings are unchanged on failure.
    fn apply_setting(&mut self, name: &str, value: u64) -> Result<QueryResult> {
        match name {
            "statement_timeout_ms" => self.settings.statement_timeout_ms = value,
            "memory_budget_mb" => self.settings.memory_budget_mb = value,
            "slow_query_ms" => self.settings.slow_query_ms = value,
            "slow_query_log_size" => match &self.slow_log {
                Some(log) => log.set_capacity(value as usize),
                None => {
                    return Err(HyError::Bind(
                        "slow_query_log_size needs a database-backed session \
                         (bare sessions have no slow-query log)"
                            .into(),
                    ))
                }
            },
            other => {
                return Err(HyError::Bind(format!(
                    "unknown session setting '{other}' (available: statement_timeout_ms, \
                     memory_budget_mb, slow_query_ms, slow_query_log_size)"
                )))
            }
        }
        Ok(QueryResult::affected(0))
    }

    fn execute_bound(&mut self, bound: BoundStatement) -> Result<QueryResult> {
        match bound {
            BoundStatement::Query(plan) => self.run_query(plan),
            BoundStatement::CreateTable {
                name,
                schema,
                if_not_exists,
            } => {
                let r = self.run_create_table(&name, schema, if_not_exists);
                self.end_statement_write();
                r
            }
            BoundStatement::DropTable { name, if_exists } => {
                let r = self.run_drop_table(&name, if_exists);
                self.end_statement_write();
                r
            }
            BoundStatement::Insert { table, source } => {
                let r = self.run_insert(&table, source);
                self.end_statement_write();
                r
            }
            BoundStatement::Update {
                table,
                exprs,
                filter,
            } => {
                let r = self.run_update(&table, &exprs, filter.as_ref());
                self.end_statement_write();
                r
            }
            BoundStatement::Delete { table, filter } => {
                let r = self.run_delete(&table, filter.as_ref());
                self.end_statement_write();
                r
            }
            BoundStatement::Begin => {
                if self.tx.is_some() {
                    return Err(HyError::Transaction(
                        "a transaction is already in progress".into(),
                    ));
                }
                self.tx = Some(Transaction::new());
                self.metrics.counter("tx.begin").inc();
                Ok(QueryResult::affected(0))
            }
            BoundStatement::Commit => match self.tx.take() {
                Some(tx) => {
                    // The transaction's staged redo ops become one WAL
                    // commit record; the WAL append and the in-memory
                    // publish share one commit-mutex critical section (see
                    // `after_write`), so an acknowledged commit can never be
                    // truncated away by a concurrent checkpoint. A WAL
                    // failure rolls the whole transaction back, so recovery
                    // can never observe half a transaction.
                    let ops = std::mem::take(&mut self.redo);
                    let published = match &self.durability {
                        Some(d) if !ops.is_empty() => {
                            d.with_commit_lock(|wal| match wal.log_commit(&ops) {
                                Ok(_) => {
                                    tx.commit();
                                    Ok(())
                                }
                                Err(e) => {
                                    tx.rollback();
                                    Err(e)
                                }
                            })
                        }
                        _ => {
                            tx.commit();
                            Ok(())
                        }
                    };
                    self.own_tables.clear();
                    self.end_statement_write();
                    match published {
                        Ok(()) => {
                            self.metrics.counter("tx.commit").inc();
                            Ok(QueryResult::affected(0))
                        }
                        Err(e) => {
                            self.metrics.counter("tx.rollback").inc();
                            Err(e)
                        }
                    }
                }
                None => Err(HyError::Transaction("no transaction in progress".into())),
            },
            BoundStatement::Rollback => match self.tx.take() {
                Some(tx) => {
                    tx.rollback();
                    self.redo.clear();
                    self.own_tables.clear();
                    self.end_statement_write();
                    self.metrics.counter("tx.rollback").inc();
                    Ok(QueryResult::affected(0))
                }
                None => Err(HyError::Transaction("no transaction in progress".into())),
            },
            BoundStatement::Set { name, value } => self.apply_setting(&name, value),
            BoundStatement::Explain { statement, analyze } => self.run_explain(*statement, analyze),
            BoundStatement::Backup { dir, base, verify } => {
                self.run_backup(&dir, base.as_deref(), verify)
            }
        }
    }

    /// `BACKUP TO 'dir' [FROM 'base'] [VERIFY]`: online backup through the
    /// durability engine. Allowed on replicas (a backup is a read), but
    /// meaningless without a data directory.
    fn run_backup(&mut self, dir: &str, base: Option<&str>, verify: bool) -> Result<QueryResult> {
        let Some(d) = &self.durability else {
            return Err(HyError::Storage(
                "BACKUP requires a durable database (start the server with --data-dir)".into(),
            ));
        };
        let summary = d.backup(
            std::path::Path::new(dir),
            base.map(std::path::Path::new),
            verify,
        )?;
        Ok(QueryResult::text(
            "backup",
            vec![format!(
                "backed up to {} (lsn {}, {} segments copied, {} bytes{}{})",
                summary.dest.display(),
                summary.backup_lsn,
                summary.segments_copied,
                summary.bytes,
                if summary.incremental {
                    ", incremental"
                } else {
                    ""
                },
                if summary.verified { ", verified" } else { "" },
            )],
        ))
    }

    /// EXPLAIN / EXPLAIN ANALYZE. The plain form annotates each plan node
    /// with its estimated cardinality; the ANALYZE form additionally runs
    /// the statement under a profiling executor and reports actual rows,
    /// chunk counts, wall time, and peak operator memory per node.
    fn run_explain(&mut self, inner: BoundStatement, analyze: bool) -> Result<QueryResult> {
        let plan = match inner {
            BoundStatement::Query(plan) => plan,
            other if analyze => {
                // Non-query statements have no plan tree; ANALYZE still
                // executes them and reports the outcome.
                let result = self.execute_bound(other)?;
                return Ok(QueryResult::text(
                    "plan",
                    vec![format!(
                        "Statement (rows_affected={})",
                        result.rows_affected
                    )],
                ));
            }
            other => {
                return Ok(QueryResult::text(
                    "plan",
                    format!("{other:?}").lines().map(str::to_owned).collect(),
                ));
            }
        };
        let optimized = Optimizer::new().optimize(plan)?;
        let table_rows = |name: &str| -> usize {
            self.table_snapshot(name)
                .map(|s| s.live_rows())
                .unwrap_or(0)
        };
        let estimate = |p: &LogicalPlan| {
            format!(
                " (est_rows={})",
                stats::estimate_rows(p, &table_rows).round() as u64
            )
        };

        if !analyze {
            let text = optimized.explain_annotated(&estimate);
            return Ok(QueryResult::text(
                "plan",
                text.lines().map(str::to_owned).collect(),
            ));
        }

        let mut executor = Executor::new(self.exec_context());
        executor.ctx.enable_profiling();
        let started = Instant::now();
        let chunks = executor.execute(&optimized)?;
        let total_wall = started.elapsed();
        let profile = executor.ctx.take_profile();
        let exec_stats = executor.ctx.stats;
        let total_rows: usize = chunks.iter().map(Chunk::len).sum();

        let annotate = |p: &LogicalPlan| {
            let mut out = estimate(p);
            match profile.as_ref().and_then(|prof| prof.find(p.node_id())) {
                Some(span) => {
                    out.push_str(&format!(
                        " (actual rows={} chunks={} calls={} time={:.3}ms mem={}B)",
                        span.rows_out,
                        span.chunks_out,
                        span.calls,
                        span.wall.as_secs_f64() * 1e3,
                        span.peak_mem_bytes,
                    ));
                    for (k, v) in &span.extras {
                        out.push_str(&format!(" [{k}={v}]"));
                    }
                }
                None => out.push_str(" (never executed)"),
            }
            out
        };
        let mut lines: Vec<String> = optimized
            .explain_annotated(&annotate)
            .lines()
            .map(str::to_owned)
            .collect();
        lines.push(format!(
            "Execution: total={:.3}ms rows={} iterations={} peak_working_rows={} trace={}",
            total_wall.as_secs_f64() * 1e3,
            total_rows,
            exec_stats.iterations,
            exec_stats.peak_working_rows,
            self.stat.last_trace_id(),
        ));
        let mut qr = QueryResult::text("plan", lines);
        qr.stats = exec_stats;
        Ok(qr)
    }

    fn run_query(&mut self, plan: LogicalPlan) -> Result<QueryResult> {
        let optimized = Optimizer::new().optimize(plan)?;
        let schema = Arc::new(optimized.schema().without_qualifiers());
        let mut executor = Executor::new(self.exec_context());
        let chunks = executor.execute(&optimized)?;
        Ok(QueryResult::rows(schema, chunks, executor.ctx.stats))
    }

    fn run_plan(&mut self, plan: &LogicalPlan) -> Result<Vec<Chunk>> {
        let mut executor = Executor::new(self.exec_context());
        executor.execute(plan)
    }

    fn exec_context(&self) -> ExecContext {
        let mut ctx = ExecContext::new(Arc::clone(&self.catalog))
            .with_own_tables(self.own_tables.iter().cloned())
            .with_metrics(Arc::clone(&self.metrics))
            .with_governor(Arc::clone(&self.governor));
        if let Some(hub) = &self.sysviews {
            ctx = ctx.with_system_views(Arc::clone(hub));
        }
        ctx
    }

    fn table_snapshot(&self, table: &str) -> Result<hylite_storage::TableSnapshot> {
        let t = self.catalog.get_table(table)?;
        let guard = t.read();
        Ok(if self.own_tables.contains(&table.to_ascii_lowercase()) {
            guard.snapshot()
        } else {
            guard.committed_snapshot()
        })
    }

    fn run_update(
        &mut self,
        table: &str,
        exprs: &[ScalarExpr],
        filter: Option<&ScalarExpr>,
    ) -> Result<QueryResult> {
        // The gate is taken before the scan so the positional row ids it
        // produces cannot be shifted by a concurrent writer before the
        // delete+append lands.
        self.begin_write();
        let snapshot = self.table_snapshot(table)?;
        let hits = hylite_exec::scan::scan_with_row_ids(&snapshot, filter, &self.governor)?;
        let mut ids = Vec::new();
        let mut new_rows: Vec<Vec<Value>> = Vec::new();
        for (chunk, row_ids) in &hits {
            let cols: Vec<hylite_common::ColumnVector> =
                exprs.iter().map(|e| e.eval(chunk)).collect::<Result<_>>()?;
            for i in 0..chunk.len() {
                new_rows.push(cols.iter().map(|c| c.value(i)).collect());
            }
            ids.extend_from_slice(row_ids);
        }
        let n = ids.len();
        if n > 0 {
            let types = snapshot.schema().types();
            let chunk = Chunk::from_rows(&types, &new_rows)?;
            let t = self.catalog.get_table(table)?;
            {
                // Same delete+append shape as `Table::update_rows`, split so
                // the redo log captures the appended chunk verbatim.
                let mut guard = t.write();
                guard.delete_rows(&ids)?;
                guard.insert_chunk(chunk.clone())?;
            }
            let key = table.to_ascii_lowercase();
            self.after_write(
                table,
                vec![
                    RedoOp::Delete {
                        table: key.clone(),
                        row_ids: ids.iter().map(|&i| i as u64).collect(),
                    },
                    RedoOp::Insert {
                        table: key,
                        rows: chunk,
                    },
                ],
            )?;
        }
        Ok(QueryResult::affected(n))
    }

    fn run_delete(&mut self, table: &str, filter: Option<&ScalarExpr>) -> Result<QueryResult> {
        // Gate before the scan: see `run_update` on row-id stability.
        self.begin_write();
        let snapshot = self.table_snapshot(table)?;
        let hits = hylite_exec::scan::scan_with_row_ids(&snapshot, filter, &self.governor)?;
        let ids: Vec<usize> = hits.into_iter().flat_map(|(_, ids)| ids).collect();
        let n = ids.len();
        if n > 0 {
            let t = self.catalog.get_table(table)?;
            t.write().delete_rows(&ids)?;
            self.after_write(
                table,
                vec![RedoOp::Delete {
                    table: table.to_ascii_lowercase(),
                    row_ids: ids.iter().map(|&i| i as u64).collect(),
                }],
            )?;
        }
        Ok(QueryResult::affected(n))
    }

    /// Post-write bookkeeping: inside a transaction, record the touched
    /// table and stage the redo ops; in autocommit mode, log the commit to
    /// the WAL (when durable) and publish immediately. The WAL append
    /// happens *before* the in-memory commit so an acknowledged write is
    /// always recoverable; on WAL failure the write is rolled back.
    fn after_write(&mut self, table: &str, ops: Vec<RedoOp>) -> Result<()> {
        let t = self
            .catalog
            .get_table(table)
            .expect("table existed during the write");
        match &mut self.tx {
            Some(tx) => {
                tx.touch(&t);
                self.own_tables.insert(table.to_ascii_lowercase());
                if self.durability.is_some() {
                    self.redo.extend(ops);
                }
            }
            None => {
                debug_assert!(self.holds_gate, "autocommit write without the writer gate");
                match &self.durability {
                    Some(d) => {
                        // WAL append and in-memory publish happen inside one
                        // commit-mutex critical section so a concurrent
                        // checkpoint can never observe the log ahead of
                        // memory (or vice versa) and truncate a logged but
                        // unpublished commit away.
                        d.with_commit_lock(|wal| match wal.log_commit(&ops) {
                            Ok(_) => {
                                t.write().commit();
                                Ok(())
                            }
                            Err(e) => {
                                t.write().rollback();
                                Err(e)
                            }
                        })?;
                    }
                    None => t.write().commit(),
                }
            }
        }
        Ok(())
    }

    /// CREATE TABLE. DDL is logged immediately as its own commit record
    /// (the catalog is not transactional); the catalog mutation and the
    /// WAL append share one commit-mutex critical section so a concurrent
    /// checkpoint never snapshots a created-but-unlogged (or logged-but-
    /// uncreated) table, and on WAL failure the create is undone so memory
    /// and log agree.
    fn run_create_table(
        &mut self,
        name: &str,
        schema: Schema,
        if_not_exists: bool,
    ) -> Result<QueryResult> {
        self.begin_write();
        if if_not_exists && self.catalog.has_table(name) {
            return Ok(QueryResult::affected(0));
        }
        let key = name.to_ascii_lowercase();
        let catalog = &self.catalog;
        match &self.durability {
            Some(d) => d.with_commit_lock(|wal| {
                catalog.create_table(name, schema.clone())?;
                if let Err(e) = wal.log_commit(&[RedoOp::CreateTable {
                    name: key,
                    schema: schema.clone(),
                }]) {
                    let _ = catalog.drop_table(name, true);
                    return Err(e);
                }
                Ok(())
            })?,
            None => {
                catalog.create_table(name, schema)?;
            }
        }
        Ok(QueryResult::affected(0))
    }

    /// DROP TABLE. Same publish-under-commit-lock protocol as
    /// [`Self::run_create_table`]; on WAL failure the dropped table is
    /// restored unchanged.
    fn run_drop_table(&mut self, name: &str, if_exists: bool) -> Result<QueryResult> {
        self.begin_write();
        let key = name.to_ascii_lowercase();
        let catalog = &self.catalog;
        match &self.durability {
            Some(d) => d.with_commit_lock(|wal| {
                let dropped = catalog.drop_table(name, if_exists)?;
                if let Some(table) = dropped {
                    if let Err(e) = wal.log_commit(&[RedoOp::DropTable { name: key.clone() }]) {
                        catalog.restore_table(table);
                        return Err(e);
                    }
                }
                Ok(())
            })?,
            None => {
                catalog.drop_table(name, if_exists)?;
            }
        }
        self.own_tables.remove(&key);
        Ok(QueryResult::affected(0))
    }

    /// INSERT ... VALUES / INSERT ... SELECT. The source plan runs *before*
    /// the writer gate is taken (reads need no gate); the gate is held from
    /// the staging append through publish so no other session's staged rows
    /// can be swept into this commit.
    fn run_insert(&mut self, table: &str, source: LogicalPlan) -> Result<QueryResult> {
        let plan = Optimizer::new().optimize(source)?;
        let chunks = self.run_plan(&plan)?;
        let types = plan.schema().types();
        let data = Chunk::concat(&types, &chunks)?;
        let n = data.len();
        self.begin_write();
        let t = self.catalog.get_table(table)?;
        t.write().insert_chunk(data.clone())?;
        self.after_write(
            table,
            vec![RedoOp::Insert {
                table: table.to_ascii_lowercase(),
                rows: data,
            }],
        )?;
        Ok(QueryResult::affected(n))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // An open transaction rolls back when the session ends, and a held
        // writer gate is released so other sessions can make progress.
        if let Some(tx) = self.tx.take() {
            tx.rollback();
        }
        if self.holds_gate {
            self.holds_gate = false;
            self.catalog.writer_gate().release();
        }
    }
}
