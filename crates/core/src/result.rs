//! Query results.

use std::sync::Arc;

use hylite_common::{Chunk, Result, Row, Schema, Value};
use hylite_exec::ExecStats;

/// The result of executing one SQL statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    schema: Arc<Schema>,
    chunks: Vec<Chunk>,
    /// Rows inserted/updated/deleted by a DML statement.
    pub rows_affected: usize,
    /// Execution statistics (iterations, peak working-set rows).
    pub stats: ExecStats,
}

impl QueryResult {
    /// A relational result.
    pub fn rows(schema: Arc<Schema>, chunks: Vec<Chunk>, stats: ExecStats) -> QueryResult {
        QueryResult {
            schema,
            chunks,
            rows_affected: 0,
            stats,
        }
    }

    /// A DML/DDL acknowledgement.
    pub fn affected(rows_affected: usize) -> QueryResult {
        QueryResult {
            schema: Arc::new(Schema::empty()),
            chunks: vec![],
            rows_affected,
            stats: ExecStats::default(),
        }
    }

    /// A single-column textual result (EXPLAIN).
    pub fn text(column: &str, lines: Vec<String>) -> QueryResult {
        let schema = Arc::new(Schema::new(vec![hylite_common::Field::new(
            column,
            hylite_common::DataType::Varchar,
        )]));
        let chunk = Chunk::new(vec![hylite_common::ColumnVector::from_str(lines)]);
        QueryResult {
            schema,
            chunks: vec![chunk],
            rows_affected: 0,
            stats: ExecStats::default(),
        }
    }

    /// The result schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The result chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Consume the result into its chunks (no copy).
    pub fn into_chunks(self) -> Vec<Chunk> {
        self.chunks
    }

    /// Iterate the result as chunks of at most `target_rows` rows,
    /// re-slicing oversized chunks with `Arc`-backed windows (no data
    /// copy). This is the serving path: a network server can encode and
    /// ship each yielded chunk immediately instead of materializing the
    /// full row-set, so result memory on the server stays bounded by one
    /// chunk regardless of result size.
    pub fn stream_chunks(&self, target_rows: usize) -> impl Iterator<Item = Chunk> + '_ {
        let target = target_rows.max(1);
        self.chunks
            .iter()
            .filter(|c| !c.is_empty())
            .flat_map(move |c| {
                (0..c.len())
                    .step_by(target)
                    .map(move |off| c.slice(off, target.min(c.len() - off)))
            })
    }

    /// Total result rows.
    pub fn row_count(&self) -> usize {
        self.chunks.iter().map(Chunk::len).sum()
    }

    /// Materialize the whole result into one chunk.
    pub fn to_chunk(&self) -> Result<Chunk> {
        Chunk::concat(&self.schema.types(), &self.chunks)
    }

    /// Materialize all rows (tests/small results).
    pub fn to_rows(&self) -> Vec<Row> {
        self.chunks.iter().flat_map(|c| c.rows()).collect()
    }

    /// Value at (row, column) across chunk boundaries.
    pub fn value(&self, mut row: usize, col: usize) -> Result<Value> {
        for chunk in &self.chunks {
            if row < chunk.len() {
                return Ok(chunk.column(col).value(row));
            }
            row -= chunk.len();
        }
        Err(hylite_common::HyError::Execution(format!(
            "row {row} out of range"
        )))
    }

    /// Render as an ASCII table.
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        match self.to_chunk() {
            Ok(chunk) => chunk.to_table_string(&headers),
            Err(e) => format!("<error rendering result: {e}>"),
        }
    }

    /// Convenience: single value of a one-row, one-column result.
    pub fn scalar(&self) -> Result<Value> {
        if self.row_count() != 1 || self.schema.len() != 1 {
            return Err(hylite_common::HyError::Execution(format!(
                "expected a 1×1 result, got {}×{}",
                self.row_count(),
                self.schema.len()
            )));
        }
        self.value(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{ColumnVector, DataType, Field};

    fn sample() -> QueryResult {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        QueryResult::rows(
            schema,
            vec![
                Chunk::new(vec![ColumnVector::from_i64(vec![1, 2])]),
                Chunk::new(vec![ColumnVector::from_i64(vec![3])]),
            ],
            ExecStats::default(),
        )
    }

    #[test]
    fn counting_and_access() {
        let r = sample();
        assert_eq!(r.row_count(), 3);
        assert_eq!(r.value(2, 0).unwrap(), Value::Int(3));
        assert!(r.value(3, 0).is_err());
        assert_eq!(r.to_chunk().unwrap().len(), 3);
    }

    #[test]
    fn scalar_helper() {
        let r = sample();
        assert!(r.scalar().is_err());
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let one = QueryResult::rows(
            schema,
            vec![Chunk::new(vec![ColumnVector::from_i64(vec![42])])],
            ExecStats::default(),
        );
        assert_eq!(one.scalar().unwrap(), Value::Int(42));
    }

    #[test]
    fn text_result() {
        let r = QueryResult::text("plan", vec!["a".into(), "b".into()]);
        assert_eq!(r.row_count(), 2);
        assert!(r.to_table_string().contains("plan"));
    }

    #[test]
    fn stream_chunks_reslices_without_copy() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let r = QueryResult::rows(
            schema,
            vec![
                Chunk::new(vec![ColumnVector::from_i64((0..5).collect())]),
                Chunk::new(vec![ColumnVector::from_i64(vec![])]),
                Chunk::new(vec![ColumnVector::from_i64(vec![5, 6])]),
            ],
            ExecStats::default(),
        );
        let streamed: Vec<Chunk> = r.stream_chunks(2).collect();
        let sizes: Vec<usize> = streamed.iter().map(Chunk::len).collect();
        assert_eq!(sizes, vec![2, 2, 1, 2], "empty chunks dropped, rest split");
        let total = Chunk::concat(&[DataType::Int64], &streamed).unwrap();
        assert_eq!(total, r.to_chunk().unwrap(), "values survive re-slicing");
        // A chunk already at/below the target streams as one shared piece.
        let whole: Vec<Chunk> = r.stream_chunks(100).collect();
        assert_eq!(whole.len(), 2);
        assert!(Arc::ptr_eq(
            &whole[0].columns()[0],
            &r.chunks()[0].columns()[0]
        ));
    }
}
