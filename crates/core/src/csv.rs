//! Bulk CSV loading — the paper's §3 cites HyPer's Instant Loading
//! ("offers fast data loading, which is especially important for data
//! scientists"). This is a parallel, schema-directed CSV ingest: the
//! text is split into line batches that are parsed into columnar chunks
//! on the thread pool and appended as whole segments.

use hylite_common::{Chunk, ColumnVector, DataType, HyError, Result, Value};
use rayon::prelude::*;

use crate::database::Database;

/// Options for CSV ingestion.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first line is a header to skip (default true).
    pub header: bool,
    /// String that denotes NULL (default empty field).
    pub null_marker: String,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            header: true,
            null_marker: String::new(),
        }
    }
}

/// Lines per parse batch (one columnar chunk each).
const BATCH_LINES: usize = 64 * 1024;

impl Database {
    /// Bulk-load CSV text into an existing table. Returns rows loaded.
    ///
    /// Fields are parsed according to the table schema; parse failures
    /// report the 1-based line number. Quoted fields (`"a,b"` with `""`
    /// escapes) are supported.
    pub fn copy_csv(&self, table: &str, csv: &str, options: &CsvOptions) -> Result<usize> {
        if self.is_replica() {
            return Err(HyError::ReadOnly(
                "this database is a read-only replica; bulk loads must go to the primary".into(),
            ));
        }
        let t = self.catalog().get_table(table)?;
        let schema = std::sync::Arc::clone(t.read().schema());
        let types = schema.types();
        let mut lines: Vec<(usize, &str)> = csv
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        if options.header && !lines.is_empty() {
            lines.remove(0);
        }
        // Parallel parse: one columnar chunk per line batch.
        let chunks: Vec<Result<Chunk>> = lines
            .par_chunks(BATCH_LINES)
            .map(|batch| {
                let mut cols: Vec<ColumnVector> =
                    types.iter().map(|&t| ColumnVector::empty(t)).collect();
                for &(lineno, line) in batch {
                    let fields = split_csv_line(line, options.delimiter);
                    if fields.len() != types.len() {
                        return Err(HyError::Execution(format!(
                            "CSV line {lineno}: expected {} fields, found {}",
                            types.len(),
                            fields.len()
                        )));
                    }
                    for ((field, col), &ty) in fields.iter().zip(&mut cols).zip(&types) {
                        let v = parse_field(field, ty, &options.null_marker).map_err(|e| {
                            HyError::Execution(format!("CSV line {lineno}: {}", e.message()))
                        })?;
                        col.push_value(&v)?;
                    }
                }
                Ok(Chunk::new(cols))
            })
            .collect();
        // The load is a write statement: take the database-wide writer
        // gate so no other session's staged rows can be swept into (or
        // destroyed by) this load's commit/rollback, and so WAL frame
        // order matches physical append order.
        let _gate = self.catalog().writer_gate().lock();
        let mut total = 0usize;
        let mut redo = Vec::new();
        let key = table.to_ascii_lowercase();
        // Stage under a short-lived table guard. The guard must be
        // released before the WAL commit lock is taken below — the
        // checkpointer acquires the commit lock first and table locks
        // second, so holding a table guard across the WAL append would
        // invert the lock order and deadlock.
        let staged = (|| -> Result<()> {
            let mut guard = t.write();
            for chunk in chunks {
                let chunk = chunk?;
                total += chunk.len();
                if self.is_durable() {
                    redo.push(hylite_storage::RedoOp::Insert {
                        table: key.clone(),
                        rows: chunk.clone(),
                    });
                }
                guard.insert_chunk(chunk)?;
            }
            Ok(())
        })();
        if let Err(e) = staged {
            t.write().rollback();
            return Err(e);
        }
        // The whole load is one WAL commit record: after a crash it is
        // either fully replayed or absent, never half a file. Append and
        // publish share one commit-mutex critical section so a concurrent
        // checkpoint cannot truncate the logged-but-unpublished load.
        match self.durability() {
            Some(d) if !redo.is_empty() => {
                d.with_commit_lock(|wal| match wal.log_commit(&redo) {
                    Ok(_) => {
                        t.write().commit();
                        Ok(())
                    }
                    Err(e) => {
                        t.write().rollback();
                        Err(e)
                    }
                })?
            }
            _ => t.write().commit(),
        }
        Ok(total)
    }
}

/// Split one CSV line honoring quotes.
fn split_csv_line(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    fields.push(current);
    fields
}

fn parse_field(field: &str, ty: DataType, null_marker: &str) -> Result<Value> {
    let trimmed = field.trim();
    if trimmed == null_marker {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int64 => trimmed
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| HyError::Execution(format!("cannot parse '{trimmed}' as BIGINT"))),
        DataType::Float64 => trimmed
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| HyError::Execution(format!("cannot parse '{trimmed}' as DOUBLE"))),
        DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(HyError::Execution(format!(
                "cannot parse '{trimmed}' as BOOLEAN"
            ))),
        },
        DataType::Varchar => Ok(Value::Str(field.to_owned())),
        DataType::Null => Ok(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::Value;

    #[test]
    fn loads_typed_csv() {
        let db = Database::new();
        db.execute("CREATE TABLE m (id BIGINT, score DOUBLE, name VARCHAR, ok BOOLEAN)")
            .unwrap();
        let csv = "id,score,name,ok\n1,3.5,alice,true\n2,4.0,bob,false\n3,,carol,1\n";
        let n = db.copy_csv("m", csv, &CsvOptions::default()).unwrap();
        assert_eq!(n, 3);
        let r = db.execute("SELECT sum(id), count(score) FROM m").unwrap();
        assert_eq!(r.value(0, 0).unwrap(), Value::Int(6));
        assert_eq!(r.value(0, 1).unwrap(), Value::Int(2), "empty field is NULL");
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let db = Database::new();
        db.execute("CREATE TABLE q (s VARCHAR, n BIGINT)").unwrap();
        let csv = "s,n\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n";
        db.copy_csv("q", csv, &CsvOptions::default()).unwrap();
        let r = db.execute("SELECT s FROM q ORDER BY n").unwrap();
        assert_eq!(r.value(0, 0).unwrap(), Value::from("a,b"));
        assert_eq!(r.value(1, 0).unwrap(), Value::from("say \"hi\""));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let db = Database::new();
        db.execute("CREATE TABLE e (n BIGINT)").unwrap();
        let err = db
            .copy_csv("e", "n\n1\nnope\n", &CsvOptions::default())
            .unwrap_err();
        assert!(err.message().contains("line 3"), "{err}");
        // Nothing partially loaded from a failed batch... the failing
        // batch is atomic; earlier batches may have loaded. With one
        // batch here, the table stays empty.
        let r = db.execute("SELECT count(*) FROM e").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(0));
    }

    #[test]
    fn custom_delimiter_no_header() {
        let db = Database::new();
        db.execute("CREATE TABLE d (a BIGINT, b BIGINT)").unwrap();
        let opts = CsvOptions {
            delimiter: ';',
            header: false,
            null_marker: "NA".into(),
        };
        db.copy_csv("d", "1;2\n3;NA\n", &opts).unwrap();
        let r = db.execute("SELECT count(*), count(b) FROM d").unwrap();
        assert_eq!(r.value(0, 0).unwrap(), Value::Int(2));
        assert_eq!(r.value(0, 1).unwrap(), Value::Int(1));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = Database::new();
        db.execute("CREATE TABLE a (x BIGINT)").unwrap();
        let err = db
            .copy_csv("a", "x\n1,2\n", &CsvOptions::default())
            .unwrap_err();
        assert!(err.message().contains("expected 1 fields"));
    }

    #[test]
    fn large_csv_multiple_batches() {
        let db = Database::new();
        db.execute("CREATE TABLE big (i BIGINT)").unwrap();
        let mut csv = String::from("i\n");
        for i in 0..70_000 {
            csv.push_str(&format!("{i}\n"));
        }
        let n = db.copy_csv("big", &csv, &CsvOptions::default()).unwrap();
        assert_eq!(n, 70_000);
        let r = db.execute("SELECT max(i) FROM big").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(69_999));
    }
}
