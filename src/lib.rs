//! # HyLite
//!
//! A relational main-memory database with SQL- and operator-centric data
//! analytics — a from-scratch Rust reproduction of *"SQL- and
//! Operator-centric Data Analytics in Relational Main-Memory Databases"*
//! (EDBT 2017, HyPer group).
//!
//! This root crate is the public facade: it re-exports the engine API
//! ([`Database`], [`QueryResult`]) plus the building-block crates for users
//! who want to embed individual subsystems (storage, planner, analytics
//! operators, graph substrate, data generators, baseline simulations).
//!
//! ## Quickstart
//!
//! ```
//! use hylite::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
//! db.execute("INSERT INTO pts VALUES (0.0, 0.0), (0.1, 0.2), (9.0, 9.1), (9.2, 8.9)")
//!     .unwrap();
//! let centers = db
//!     .execute(
//!         "SELECT * FROM KMEANS((SELECT x, y FROM pts), \
//!          (SELECT x, y FROM pts LIMIT 2), \
//!          LAMBDA(a, b) (a.x-b.x)^2 + (a.y-b.y)^2, 10)",
//!     )
//!     .unwrap();
//! assert_eq!(centers.row_count(), 2);
//! ```

pub use hylite_core::{Database, QueryResult, Session, SessionSettings};

/// Physical analytics operators: k-Means, Naive Bayes, PageRank.
pub use hylite_analytics as analytics;
/// Comparator system simulations (single-threaded, UDF, dataflow).
pub use hylite_baselines as baselines;
/// Blocking wire-protocol client and the `hylite-cli` REPL.
pub use hylite_client as client;
/// Shared type system: values, chunks, schemas, errors.
pub use hylite_common as common;
/// Synthetic dataset generators for the evaluation grid.
pub use hylite_datagen as datagen;
/// Physical relational operators, recursive CTE and ITERATE.
pub use hylite_exec as exec;
/// Vectorized expressions and SQL lambda expressions.
pub use hylite_expr as expr;
/// CSR graphs and LDBC-like graph generation.
pub use hylite_graph as graph;
/// Binder, logical plans and optimizer.
pub use hylite_planner as planner;
/// TCP server exposing the engine over the binary frame protocol.
pub use hylite_server as server;
/// SQL tokenizer/parser with ITERATE and analytics extensions.
pub use hylite_sql as sql;
/// Main-memory column store with snapshot versioning.
pub use hylite_storage as storage;

pub use hylite_common::{CancelToken, Governor, MemoryBudget};
pub use hylite_common::{
    Chunk, ColumnVector, DataType, Field, HyError, Result, Row, Schema, Value,
};
pub use hylite_common::{MetricsRegistry, MetricsSnapshot, QueryProfile};

pub use hylite_client::{CancelHandle, HyliteClient, RemoteResult};
pub use hylite_common::wire::{ErrorCode, Frame, PROTOCOL_VERSION};
pub use hylite_server::{Server, ServerConfig, ServerHandle};
