//! Larger-than-RAM storage integration: compressed column segments, the
//! buffer pool, zone-map pruning, and incremental checkpoints — driven
//! end to end through SQL on a durable database whose buffer pool is
//! deliberately smaller than the data.

use std::path::PathBuf;
use std::sync::Arc;

use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_common::Value;
use hylite_core::{Database, DurabilityOptions};

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

/// A pool two blocks wide: any multi-segment table is larger than RAM
/// from the cache's point of view.
fn tiny_pool() -> DurabilityOptions {
    DurabilityOptions {
        buffer_pool_bytes: 64 * 1024,
        ..DurabilityOptions::default()
    }
}

fn open(fault: &FaultVfs, options: DurabilityOptions) -> Database {
    Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        options,
    )
    .expect("open durable database")
}

/// Load `rows` rows of (id, id*2, 'name-<id%97>') in 1000-row batches.
fn load(db: &Database, rows: usize) {
    db.execute("CREATE TABLE big (id BIGINT, v BIGINT, name VARCHAR)")
        .unwrap();
    insert(db, 0, rows);
}

fn insert(db: &Database, start: usize, n: usize) {
    let mut i = start;
    while i < start + n {
        let batch = (start + n - i).min(1000);
        let values: Vec<String> = (i..i + batch)
            .map(|k| format!("({k}, {}, 'name-{}')", k * 2, k % 97))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(",")))
            .unwrap();
        i += batch;
    }
}

/// The full table, rendered — byte-identical comparison across restarts.
fn fingerprint(db: &Database) -> String {
    db.execute("SELECT id, v, name FROM big ORDER BY id")
        .unwrap()
        .to_table_string()
}

#[test]
fn larger_than_pool_table_restarts_byte_identical() {
    let fault = FaultVfs::new();
    let db = open(&fault, tiny_pool());
    load(&db, 40_000);
    db.checkpoint().unwrap();

    // The sealed segments dwarf the 64KiB pool: a full read must evict.
    let before = fingerprint(&db);
    let evictions = db
        .metrics_snapshot()
        .counters
        .get("storage.pool.evictions")
        .copied()
        .unwrap_or(0);
    assert!(evictions > 0, "pool never evicted — data fits the cache?");

    // Restart (clean shutdown already checkpointed; drop is a crash).
    drop(db);
    let db = open(&fault, tiny_pool());
    assert_eq!(fingerprint(&db), before, "restart changed query results");

    // The storage view sees the sealed segments and the pool.
    let r = db
        .execute(
            "SELECT segments, disk_segments, on_disk_bytes, logical_bytes \
             FROM hylite.storage WHERE table_name = 'big'",
        )
        .unwrap();
    assert_eq!(r.row_count(), 1);
    let disk_segments = r.value(0, 1).unwrap();
    assert!(
        matches!(disk_segments, Value::Int(n) if n > 0),
        "{disk_segments:?}"
    );
    let on_disk = r.value(0, 2).unwrap().as_int().unwrap();
    let logical = r.value(0, 3).unwrap().as_int().unwrap();
    assert!(on_disk > 0);
    assert!(
        on_disk < logical,
        "compression made the file bigger: {on_disk} disk vs {logical} logical"
    );
}

#[test]
fn kill_minus_nine_after_segmented_checkpoint_loses_nothing() {
    let fault = FaultVfs::new();
    let db = open(&fault, tiny_pool());
    load(&db, 20_000);
    db.checkpoint().unwrap();
    // Acknowledged post-checkpoint commits live only in the WAL tail.
    insert(&db, 20_000, 50);
    let before = fingerprint(&db);
    // kill -9: drop the process, then reboot the "machine" (unsynced
    // page-cache state is discarded; Commit mode fsynced every ack).
    drop(db);
    fault.reboot();
    let db = open(&fault, tiny_pool());
    let report = db.recovery_report().unwrap();
    assert!(report.checkpoint_loaded, "manifest was not found");
    assert!(report.replayed_records > 0, "WAL tail was not replayed");
    assert_eq!(fingerprint(&db), before, "crash recovery changed results");
    assert_eq!(
        db.execute("SELECT count(*) FROM big")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(20_050)
    );
}

#[test]
fn explain_analyze_counts_pruned_blocks() {
    let fault = FaultVfs::new();
    let db = open(&fault, tiny_pool());
    load(&db, 40_000);
    db.checkpoint().unwrap();

    // 40k sorted ids make ~10 zone-mapped blocks of 4096; a selective
    // range should scan 1 and prune the other 9.
    let r = db
        .execute("EXPLAIN ANALYZE SELECT count(*) FROM big WHERE id < 1000")
        .unwrap();
    let text = r.to_table_string();
    assert!(text.contains("blocks_scanned="), "{text}");
    let pruned: u64 = text
        .split("blocks_pruned=")
        .nth(1)
        .and_then(|s| {
            s.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse().ok())
        })
        .unwrap_or_else(|| panic!("no blocks_pruned note in: {text}"));
    assert!(
        pruned >= 8,
        "expected most blocks pruned, got {pruned}: {text}"
    );

    // Pruning must not change answers: compare against an unprunable
    // predicate form of the same question.
    assert_eq!(
        db.execute("SELECT count(*) FROM big WHERE id < 1000")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(1000)
    );
    assert_eq!(
        db.execute("SELECT count(*) FROM big WHERE id % 100000 < 1000")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(1000),
        "computed predicate (no pruning) disagrees with pruned scan"
    );

    // A range beyond every zone map prunes everything.
    assert_eq!(
        db.execute("SELECT count(*) FROM big WHERE id > 1000000")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(0)
    );
}

#[test]
fn second_checkpoint_is_incremental() {
    let fault = FaultVfs::new();
    let db = open(&fault, tiny_pool());
    load(&db, 40_000);
    let first = db.checkpoint().unwrap();
    assert!(first.segments_sealed > 0);
    assert!(first.segment_bytes > 0);

    // A small delta: the second checkpoint must reuse the sealed prefix
    // and write only the new rows.
    insert(&db, 40_000, 100);
    let second = db.checkpoint().unwrap();
    assert_eq!(second.segments_sealed, 1, "delta should seal one segment");
    assert!(
        second.segment_bytes * 10 < first.segment_bytes,
        "incremental checkpoint rewrote the world: {} vs {}",
        second.segment_bytes,
        first.segment_bytes
    );

    // No delta at all: nothing to seal.
    let third = db.checkpoint().unwrap();
    assert_eq!(third.segments_sealed, 0, "no-op checkpoint sealed data");
    assert_eq!(third.segment_bytes, 0);

    // Deletes rewrite nothing either — they live in the manifest.
    db.execute("DELETE FROM big WHERE id < 10").unwrap();
    let fourth = db.checkpoint().unwrap();
    assert_eq!(fourth.segments_sealed, 0, "deletes resealed segments");
    assert_eq!(
        db.execute("SELECT count(*) FROM big")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(40_090)
    );
}

#[test]
fn updates_against_disk_segments_work() {
    let fault = FaultVfs::new();
    let db = open(&fault, tiny_pool());
    load(&db, 10_000);
    db.checkpoint().unwrap();
    // UPDATE reads target rows from disk segments (delete + append).
    let r = db
        .execute("UPDATE big SET v = v + 1 WHERE id < 100")
        .unwrap();
    assert_eq!(r.rows_affected, 100);
    assert_eq!(
        db.execute("SELECT sum(v) FROM big WHERE id < 100")
            .unwrap()
            .scalar()
            .unwrap(),
        // sum(2*id for id<100) + 100
        Value::Int(9900 + 100)
    );
    // Survives a restart (the delta replays over the manifest).
    drop(db);
    let db = open(&fault, tiny_pool());
    assert_eq!(
        db.execute("SELECT sum(v) FROM big WHERE id < 100")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(10_000)
    );
}
