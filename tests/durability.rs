//! Crash-safety integration tests: the crash-point matrix, torn writes,
//! failing fsyncs, kill-9 semantics, and the governor × durability
//! interaction — all driven deterministically through [`FaultVfs`].
//!
//! The core invariant under test: **after any crash and recovery, the
//! database contains exactly the acknowledged commits.** The one
//! documented exception is a crash *after* the WAL fsync but *before*
//! the acknowledgement reaches the client (`wal.post_fsync`): the commit
//! is durable but unacknowledged — the classic indeterminate window every
//! WAL-based system has.

use std::path::PathBuf;
use std::sync::Arc;

use hylite_common::faultfs::{CrashSpec, FaultVfs, KeepUnsynced, Vfs};
use hylite_common::Value;
use hylite_core::{Database, DurabilityOptions, SyncMode, CRASH_POINTS};
use hylite_storage::archive::CP_ARCHIVE_ROTATE;
use hylite_storage::backup::CP_BACKUP_SEG_COPY;
use hylite_storage::wal::{
    CP_WAL_AFTER_WRITE, CP_WAL_APPEND, CP_WAL_POST_FSYNC, CP_WAL_PRE_FSYNC, WAL_FILE,
};

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

fn open(fault: &FaultVfs) -> Database {
    open_with(fault, DurabilityOptions::default())
}

fn open_with(fault: &FaultVfs, options: DurabilityOptions) -> Database {
    Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        options,
    )
    .expect("open durable database")
}

/// Sum of `t.x`, or a description of the failure.
fn sum(db: &Database) -> Result<i64, String> {
    match db.execute("SELECT sum(x) FROM t") {
        Ok(r) => match r.scalar() {
            Ok(Value::Int(v)) => Ok(v),
            Ok(v) if v.is_null() => Ok(0),
            other => Err(format!("unexpected scalar {other:?}")),
        },
        Err(e) => Err(e.to_string()),
    }
}

/// Seed a database with table `t` holding x = 1, 2, 3 (three separate
/// acknowledged autocommits) and return it.
fn seed(fault: &FaultVfs) -> Database {
    let db = open(fault);
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 1..=3 {
        db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
    }
    db
}

/// What the matrix expects to find after crashing at a point and
/// recovering.
fn expected_sum_after(point: &str) -> i64 {
    match point {
        // The crash preempts the fsync: the in-flight commit was never
        // acknowledged and must be absent.
        "wal.append" | "wal.after_write" | "wal.pre_fsync" => 6,
        // The frame was fsynced before the crash: durable but
        // unacknowledged — the indeterminate window. Recovery replays it.
        "wal.post_fsync" => 106,
        // Checkpoint-path crashes happen after the commit workload
        // completed; every acknowledged commit must survive, exactly once.
        "checkpoint.segment_write"
        | "checkpoint.write"
        | "checkpoint.rename"
        | "checkpoint.after_rename"
        | "wal.truncate" => 106,
        // A crash inside a backup's segment copy aborts the backup but
        // never touches the live data dir; a crash inside the archive
        // span rotation happens after the checkpoint published, so the
        // commit survives and the torn span is invisible after reboot.
        "backup.segment_copy" | "archive.rotate" => 106,
        other => panic!("crash point {other} not in the matrix — extend expected_sum_after"),
    }
}

/// THE matrix: for every registered crash point, crash there under the
/// strict power-loss model, reboot, recover, and verify the database
/// contains exactly the acknowledged commits (modulo the documented
/// post-fsync window). Then verify the recovered database still accepts
/// and persists new commits.
#[test]
fn crash_point_matrix_recovers_exactly_the_acknowledged_commits() {
    for &point in CRASH_POINTS {
        let fault = FaultVfs::new();
        let mut db = seed(&fault);
        if point == CP_ARCHIVE_ROTATE {
            // Archiving only runs when an archive dir is configured.
            drop(db);
            db = open_with(
                &fault,
                DurabilityOptions {
                    archive_dir: Some(PathBuf::from("archive")),
                    ..DurabilityOptions::default()
                },
            );
        }

        fault.arm_crash(CrashSpec::first(point));
        if point == CP_BACKUP_SEG_COPY {
            // Backup-path point: commit and checkpoint first (a backup
            // copies sealed segments), then crash inside the copy. The
            // live database is untouched.
            db.execute("INSERT INTO t VALUES (100)").unwrap();
            db.checkpoint().unwrap();
            let err = db.durability().expect("durable database").backup(
                &PathBuf::from("backup"),
                None,
                false,
            );
            assert!(err.is_err(), "{point}: backup should fail at the crash");
        } else if point.starts_with("wal.") && point != "wal.truncate" {
            // Commit-path points: crash inside the WAL append of x=100.
            let err = db.execute("INSERT INTO t VALUES (100)");
            assert!(err.is_err(), "{point}: commit should fail at the crash");
        } else {
            // Checkpoint-path points (incl. wal.truncate, which only runs
            // as the checkpoint's last step, and archive.rotate, which
            // runs just before it): commit x=100 first, then crash inside
            // the checkpoint.
            db.execute("INSERT INTO t VALUES (100)").unwrap();
            let err = db.checkpoint();
            assert!(err.is_err(), "{point}: checkpoint should fail at the crash");
        }
        assert!(fault.crashed(), "{point}: the crash must have fired");
        assert_eq!(fault.hits(point), 1, "{point}: fired exactly once");
        drop(db);

        fault.reboot();
        let db = open(&fault);
        assert_eq!(
            sum(&db).unwrap(),
            expected_sum_after(point),
            "{point}: wrong surviving commits after recovery"
        );

        // Recovered databases are not read-only artifacts: they must keep
        // accepting commits that survive the *next* restart too.
        db.execute("INSERT INTO t VALUES (1000)").unwrap();
        drop(db);
        let db = open(&fault);
        assert_eq!(
            sum(&db).unwrap(),
            expected_sum_after(point) + 1000,
            "{point}: post-recovery commit lost"
        );
    }
}

/// A torn final WAL frame (partial write that made it to disk) is
/// detected by the CRC scan and discarded without failing recovery.
#[test]
fn torn_final_frame_is_discarded_without_error() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    // Crash before the fsync, but let a 7-byte prefix of the unsynced
    // frame reach the platter — a torn write.
    fault.arm_crash(CrashSpec::first_keeping(
        CP_WAL_PRE_FSYNC,
        KeepUnsynced::Prefix(7),
    ));
    assert!(db.execute("INSERT INTO t VALUES (100)").is_err());
    drop(db);
    fault.reboot();

    let wal = data_dir().join(WAL_FILE);
    let torn_len = fault.file_len(&wal).unwrap();
    let db = open(&fault);
    let report = db.recovery_report().unwrap();
    assert!(report.discarded_bytes > 0, "the torn tail was measured");
    assert_eq!(sum(&db).unwrap(), 6, "torn commit must not surface");
    assert!(
        fault.file_len(&wal).unwrap() < torn_len,
        "recovery truncates the torn tail in place"
    );
    // The WAL stays appendable at the truncated boundary.
    db.execute("INSERT INTO t VALUES (4)").unwrap();
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 10);
}

/// A bit flip inside the last WAL frame fails its CRC: recovery keeps
/// every frame before it and discards the corrupt tail, without error.
#[test]
fn bit_flipped_tail_frame_is_dropped_by_crc() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    drop(db);
    let wal = data_dir().join(WAL_FILE);
    let len = fault.file_len(&wal).unwrap();
    // Flip a bit in the last frame's payload (well past its header).
    fault.corrupt(&wal, len - 3, 0x10).unwrap();
    let db = open(&fault);
    let report = db.recovery_report().unwrap();
    assert!(report.discarded_bytes > 0);
    assert_eq!(sum(&db).unwrap(), 3, "x=3 lived in the corrupted frame");
}

/// A failing fsync must not acknowledge the commit, must not leave ghost
/// bytes that a *later* fsync would make durable, and must leave the WAL
/// usable for the next commit.
#[test]
fn failed_fsync_rejects_commit_and_later_commits_survive() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    fault.fail_fsyncs(1);
    let err = db.execute("INSERT INTO t VALUES (100)").unwrap_err();
    assert!(
        err.to_string().contains("fsync"),
        "commit surfaced the fsync failure: {err}"
    );
    // The engine rolled the row back in memory too.
    assert_eq!(sum(&db).unwrap(), 6);
    // The WAL is not poisoned: the next commit (with working fsyncs)
    // succeeds and survives restart; the failed one stays gone.
    db.execute("INSERT INTO t VALUES (4)").unwrap();
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 10);
}

/// kill -9 (process death without power loss): the page cache survives,
/// so even unsynced WAL bytes reach disk. Everything written — acked or
/// in-flight — is recovered. This is the Buffered-mode story too.
#[test]
fn kill_minus_nine_keeps_page_cache_and_buffered_mode_bounds_loss() {
    let fault = FaultVfs::new();
    let db = open_with(
        &fault,
        DurabilityOptions {
            sync_mode: SyncMode::Buffered,
            ..DurabilityOptions::default()
        },
    );
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 1..=3 {
        db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
    }
    // Buffered mode: commits are acknowledged from the group-commit
    // buffer, which lives in *process* memory — kill -9 loses it no
    // matter what the page cache holds. Dropping the database without a
    // close models exactly that.
    drop(db);
    let db = open(&fault);
    // The buffered commits (the DDL and 1..=3) are gone — the documented
    // loss window of Buffered mode. The database recovers to empty,
    // cleanly.
    let report = db.recovery_report().unwrap();
    assert_eq!(report.replayed_records, 0);
    assert!(
        db.execute("SELECT * FROM t").is_err(),
        "t never became durable"
    );

    // Same scenario in Commit mode: every ack carried an fsync, so
    // kill -9 loses nothing.
    let fault = FaultVfs::new();
    let db = seed(&fault);
    fault.arm_crash(CrashSpec::first_keeping(
        CP_WAL_PRE_FSYNC,
        KeepUnsynced::All,
    ));
    assert!(db.execute("INSERT INTO t VALUES (100)").is_err());
    drop(db);
    fault.reboot();
    let db = open(&fault);
    // Unsynced-but-written bytes survive a mere process kill: the
    // in-flight frame is complete on disk and replays.
    assert_eq!(sum(&db).unwrap(), 106);
}

/// Buffered mode: an explicit checkpoint flushes the group-commit buffer,
/// after which a power-loss crash loses nothing.
#[test]
fn buffered_mode_checkpoint_makes_commits_durable() {
    let fault = FaultVfs::new();
    let db = open_with(
        &fault,
        DurabilityOptions {
            sync_mode: SyncMode::Buffered,
            ..DurabilityOptions::default()
        },
    );
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.checkpoint().unwrap();
    drop(db);
    let db = open(&fault);
    assert!(db.recovery_report().unwrap().checkpoint_loaded);
    assert_eq!(sum(&db).unwrap(), 6);
}

/// Governor × durability: a transaction aborted mid-commit (its WAL
/// append fails) must be *fully* discarded — in memory immediately, and
/// on disk after recovery. A transaction that was acknowledged must be
/// *fully* present. No half-replayed transactions, ever.
#[test]
fn aborted_commit_is_all_or_nothing_after_recovery() {
    let fault = FaultVfs::new();
    let db = seed(&fault);

    // Multi-statement transaction whose commit record fails to persist.
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (10)").unwrap();
    db.execute("INSERT INTO t VALUES (20)").unwrap();
    db.execute("UPDATE t SET x = x + 1 WHERE x = 10").unwrap();
    fault.fail_fsyncs(1);
    assert!(
        db.execute("COMMIT").is_err(),
        "commit must surface the failure"
    );
    // Fully discarded in memory: the session rolled the transaction back.
    assert_eq!(sum(&db).unwrap(), 6);

    // The same shape, acknowledged this time.
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (10)").unwrap();
    db.execute("INSERT INTO t VALUES (20)").unwrap();
    db.execute("UPDATE t SET x = x + 1 WHERE x = 10").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(sum(&db).unwrap(), 37);

    drop(db);
    let db = open(&fault);
    // After recovery: the aborted transaction contributes nothing, the
    // acknowledged one contributes everything — 6 + 11 + 20.
    assert_eq!(sum(&db).unwrap(), 37);
}

/// Governor × durability: a statement cancelled before execution leaves
/// no WAL trace; the session and the database stay consistent across
/// recovery.
#[test]
fn cancelled_statement_leaves_no_wal_trace() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    db.cancel_handle().cancel();
    let err = db.execute("INSERT INTO t VALUES (100)").unwrap_err();
    assert_eq!(err.stage(), "cancelled");
    // Session recovered; a normal statement follows.
    db.execute("INSERT INTO t VALUES (4)").unwrap();
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 10, "cancelled insert must not replay");
}

/// Statement timeout firing inside a transaction: the failed statement
/// contributes nothing, the committed remainder survives recovery.
#[test]
fn timeout_inside_transaction_keeps_commit_atomic() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (50)").unwrap();
    db.execute("SET statement_timeout_ms = 30").unwrap();
    let err = db
        .execute(
            "SELECT * FROM ITERATE((SELECT 0 \"x\"), (SELECT x + 1 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 5000000))",
        )
        .unwrap_err();
    assert!(err.is_governed_abort(), "got: {err}");
    db.execute("SET statement_timeout_ms = 0").unwrap();
    db.execute("COMMIT").unwrap();
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 56, "committed work survives, no more");
}

/// DDL + DML interleaving across checkpoint and replay: CREATE, INSERT,
/// DROP, re-CREATE survive in order. Replay skips ops against dropped
/// tables instead of failing.
#[test]
fn ddl_dml_interleaving_replays_in_order() {
    let fault = FaultVfs::new();
    let db = open(&fault);
    db.execute("CREATE TABLE a (x BIGINT)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("DROP TABLE a").unwrap();
    db.execute("CREATE TABLE a (x BIGINT, y BIGINT)").unwrap();
    db.execute("INSERT INTO a VALUES (7, 8)").unwrap();
    drop(db);
    let db = open(&fault);
    let r = db.execute("SELECT x, y FROM a").unwrap();
    assert_eq!(r.row_count(), 1);
    assert_eq!(r.value(0, 0).unwrap(), Value::Int(7));
    assert_eq!(r.value(0, 1).unwrap(), Value::Int(8));
}

/// Row-id stability across a checkpoint: deletes logged *after* the
/// checkpoint must land on the same physical rows when replayed on top
/// of the restored image.
#[test]
fn post_checkpoint_deletes_hit_the_right_rows() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    db.execute("DELETE FROM t WHERE x = 1").unwrap();
    db.checkpoint().unwrap();
    // These deletes replay against the checkpoint image's row ids.
    db.execute("DELETE FROM t WHERE x = 2").unwrap();
    db.execute("INSERT INTO t VALUES (9)").unwrap();
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 12, "3 + 9 survive; 1 and 2 are deleted");
}

/// CSV ingestion is one atomic WAL record: after recovery the load is
/// fully present.
#[test]
fn copy_csv_is_one_atomic_commit() {
    let fault = FaultVfs::new();
    let db = open(&fault);
    db.execute("CREATE TABLE m (id BIGINT, v DOUBLE)").unwrap();
    let csv = "id,v\n1,0.5\n2,1.5\n3,2.5\n";
    let n = db
        .copy_csv("m", csv, &hylite_core::CsvOptions::default())
        .unwrap();
    assert_eq!(n, 3);
    drop(db);
    let db = open(&fault);
    assert_eq!(db.recovery_report().unwrap().replayed_records, 2);
    assert_eq!(
        db.execute("SELECT count(*) FROM m")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(3)
    );
}

/// The real-filesystem backend: a full write → close → reopen cycle on a
/// temp dir, exercising `StdVfs` end to end (creation, append, fsync,
/// atomic rename, truncate).
#[test]
fn std_vfs_roundtrip_on_a_real_directory() {
    let dir = std::env::temp_dir().join(format!("hylite-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (x BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t VALUES (4)").unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(sum_path(&db), 10);
        db.close().unwrap();
    }
    {
        // After close() the WAL is empty; recovery is checkpoint-only.
        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(sum_path(&db), 10);
    }
    let _ = std::fs::remove_dir_all(&dir);

    fn sum_path(db: &Database) -> i64 {
        match db
            .execute("SELECT sum(x) FROM t")
            .unwrap()
            .scalar()
            .unwrap()
        {
            Value::Int(v) => v,
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// Recovery metrics reach the shared registry, as the observability layer
/// expects.
#[test]
fn durability_metrics_are_published() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    db.checkpoint().unwrap();
    db.execute("INSERT INTO t VALUES (4)").unwrap();
    let snapshot = db.metrics_snapshot().render_text();
    for name in [
        "wal.commits",
        "wal.bytes_written",
        "wal.fsyncs",
        "checkpoint.count",
        "checkpoint.bytes_written",
    ] {
        assert!(snapshot.contains(name), "missing {name} in:\n{snapshot}");
    }
    drop(db);
    let db = open(&fault);
    let snapshot = db.metrics_snapshot().render_text();
    assert!(
        snapshot.contains("recovery.replayed_records"),
        "missing recovery metric in:\n{snapshot}"
    );
}

/// The crash points the matrix iterates are exactly the ones the
/// subsystem registers — adding a new point without extending the matrix
/// fails here.
#[test]
fn crash_point_matrix_is_complete() {
    assert_eq!(
        CRASH_POINTS,
        &[
            CP_WAL_APPEND,
            CP_WAL_AFTER_WRITE,
            CP_WAL_PRE_FSYNC,
            CP_WAL_POST_FSYNC,
            "checkpoint.segment_write",
            "checkpoint.write",
            "checkpoint.rename",
            "checkpoint.after_rename",
            "wal.truncate",
            CP_BACKUP_SEG_COPY,
            CP_ARCHIVE_ROTATE,
        ]
    );
    // And every one of them has an expectation in the matrix.
    for &p in CRASH_POINTS {
        expected_sum_after(p);
    }
}

/// Concurrent autocommit writers racing checkpoints. The writer gate
/// serializes the writers (WAL frame order == physical append order, so
/// replayed positional row ids match), and the commit mutex makes each
/// WAL append + in-memory publish atomic with respect to a checkpoint's
/// `base_lsn` capture — an acknowledged commit can never fall between a
/// checkpoint's snapshot and its WAL truncation. After a restart the
/// database must hold exactly the acknowledged state.
#[test]
fn concurrent_writers_and_checkpoints_survive_restart() {
    const WRITERS: usize = 4;
    const ROWS_PER_WRITER: i64 = 40;

    let fault = FaultVfs::new();
    let db = Arc::new(open(&fault));
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();

    std::thread::scope(|s| {
        for w in 0..WRITERS as i64 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let mut session = db.session();
                for i in 0..ROWS_PER_WRITER {
                    let v = w * 1000 + i;
                    session
                        .execute(&format!("INSERT INTO t VALUES ({v})"))
                        .unwrap();
                }
                // Deletes exercise positional row ids under concurrency:
                // if WAL order diverged from append order, replay would
                // renumber rows and these would hit the wrong ones.
                for i in (0..ROWS_PER_WRITER).step_by(4) {
                    let v = w * 1000 + i;
                    session
                        .execute(&format!("DELETE FROM t WHERE x = {v}"))
                        .unwrap();
                }
            });
        }
        let db = Arc::clone(&db);
        s.spawn(move || {
            for _ in 0..10 {
                db.checkpoint().unwrap();
                std::thread::yield_now();
            }
        });
    });

    let expected_rows: i64 = WRITERS as i64 * (ROWS_PER_WRITER - (ROWS_PER_WRITER + 3) / 4);
    let mut expected_sum: i64 = 0;
    for w in 0..WRITERS as i64 {
        for i in 0..ROWS_PER_WRITER {
            if i % 4 != 0 {
                expected_sum += w * 1000 + i;
            }
        }
    }
    let count = |db: &Database| -> i64 {
        match db
            .execute("SELECT count(*) FROM t")
            .unwrap()
            .scalar()
            .unwrap()
        {
            Value::Int(v) => v,
            other => panic!("unexpected count {other:?}"),
        }
    };
    assert_eq!(count(&db), expected_rows);
    assert_eq!(sum(&db).unwrap(), expected_sum);

    // Everything was acknowledged, so everything must survive a restart —
    // whether a row's commit landed before a checkpoint's base_lsn (in
    // the image) or after it (replayed from the WAL).
    drop(db);
    let db = open(&fault);
    assert_eq!(count(&db), expected_rows);
    assert_eq!(sum(&db).unwrap(), expected_sum);
}

/// An open transaction holds the writer gate, so another session's
/// autocommit write waits instead of getting swept into (or destroyed
/// by) the transaction's commit or rollback.
#[test]
fn open_transaction_excludes_concurrent_autocommit_writes() {
    let fault = FaultVfs::new();
    let db = Arc::new(open(&fault));
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();

    let mut tx_session = db.session();
    tx_session.execute("BEGIN").unwrap();
    tx_session.execute("INSERT INTO t VALUES (1)").unwrap();
    tx_session.execute("INSERT INTO t VALUES (2)").unwrap();

    // A second session's write must block on the gate until ROLLBACK.
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            db.session().execute("INSERT INTO t VALUES (100)").unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert_eq!(
        sum(&db).unwrap(),
        0,
        "neither the staged transaction nor the gated writer is visible"
    );

    tx_session.execute("ROLLBACK").unwrap();
    writer.join().unwrap();

    // The rollback discarded exactly the transaction's own rows; the
    // concurrent autocommit landed untouched — in memory and on disk.
    assert_eq!(sum(&db).unwrap(), 100);
    drop(tx_session);
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 100);
}

/// A transaction whose COMMIT fails at the WAL rolls back only itself:
/// a concurrent writer that was waiting on the gate commits cleanly
/// afterwards, unaffected by the failed session's rollback.
#[test]
fn failed_commit_rolls_back_only_its_own_session() {
    let fault = FaultVfs::new();
    let db = Arc::new(open(&fault));
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();

    let mut tx_session = db.session();
    tx_session.execute("BEGIN").unwrap();
    tx_session.execute("INSERT INTO t VALUES (1)").unwrap();

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            // Blocks on the gate until the failed COMMIT releases it.
            db.session().execute("INSERT INTO t VALUES (100)").unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    fault.fail_fsyncs(1);
    assert!(tx_session.execute("COMMIT").is_err());
    writer.join().unwrap();

    assert_eq!(sum(&db).unwrap(), 100);
    drop(tx_session);
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 100);
}

// ---------------------------------------------------------------------
// Disk pressure: ENOSPC degrades the node to read-only, and writes
// resume — without a restart — once space frees.
// ---------------------------------------------------------------------

#[test]
fn disk_full_degrades_to_read_only_and_probe_resumes_writes() {
    use hylite_common::wire::ErrorCode;

    let fault = FaultVfs::new();
    let db = seed(&fault);
    fault.set_disk_full(true);

    // The write fails with the typed, retryable DiskFull error (5005).
    let err = db.execute("INSERT INTO t VALUES (100)").unwrap_err();
    assert_eq!(ErrorCode::from_error(&err), ErrorCode::DiskFull, "{err}");
    assert!(ErrorCode::DiskFull.is_retryable());
    assert_eq!(ErrorCode::DiskFull.as_u16(), 5005);

    // The node is degraded: reads keep serving, writes are rejected up
    // front with the same code.
    let d = db.durability().unwrap();
    assert_eq!(d.node_state(), "degraded");
    assert_eq!(sum(&db).unwrap(), 6, "reads unaffected");
    let err = db.execute("INSERT INTO t VALUES (101)").unwrap_err();
    assert_eq!(ErrorCode::from_error(&err), ErrorCode::DiskFull);

    // While the disk is still full the probe refuses to resume.
    assert!(!d.try_resume_writes().unwrap());

    // Space frees: the probe re-enables writes in place.
    fault.set_disk_full(false);
    assert!(d.try_resume_writes().unwrap());
    assert_eq!(d.node_state(), "ok");
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    assert_eq!(sum(&db).unwrap(), 13);

    // Everything acknowledged — before and after the episode — survives
    // a restart; nothing from the rejected writes leaked in.
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 13);
}

/// A crash between sealing segment files and publishing the manifest
/// leaves orphaned `segments/seg_*` files no manifest references.
/// Recovery's GC must delete them — and must not touch live data.
#[test]
fn orphan_segments_from_a_checkpoint_crash_are_garbage_collected() {
    use hylite_storage::checkpoint::CP_SEG_WRITE;

    let fault = FaultVfs::new();
    let db = seed(&fault);
    // A second table so the checkpoint seals more than one segment: the
    // crash at the *second* seal leaves the first segment file durable
    // but unreferenced (the manifest publish never ran).
    db.execute("CREATE TABLE u (y BIGINT)").unwrap();
    db.execute("INSERT INTO u VALUES (10)").unwrap();
    fault.arm_crash(CrashSpec {
        point: CP_SEG_WRITE.into(),
        hit: 2,
        keep: KeepUnsynced::All,
    });
    assert!(
        db.checkpoint().is_err(),
        "checkpoint crashes at second seal"
    );
    assert!(fault.crashed());
    drop(db);

    fault.reboot();
    let segments_dir = data_dir().join("segments");
    let before = fault.list_dir(&segments_dir).unwrap().len();
    assert!(
        before >= 1,
        "the crash left at least one sealed file behind"
    );
    let db = open(&fault);
    let report = db.recovery_report().unwrap();
    assert!(
        report.orphan_segments_removed >= 1,
        "recovery deleted the unreferenced segment files: {report:?}"
    );
    // Data is exactly the acknowledged commits, from the WAL.
    assert_eq!(sum(&db).unwrap(), 6);
    assert_eq!(
        db.execute("SELECT sum(y) FROM u")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(10)
    );
    // And the next checkpoint + restart still work on the cleaned store.
    db.checkpoint().unwrap();
    drop(db);
    let db = open(&fault);
    assert_eq!(sum(&db).unwrap(), 6);
}
