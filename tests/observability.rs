//! EXPLAIN ANALYZE and the engine-wide metrics registry, end to end.

use hylite::{Database, Value};

fn plan_text(db: &Database, sql: &str) -> String {
    db.execute(sql).unwrap().to_table_string()
}

/// Pull `key=value` integers out of an annotated plan line.
fn extract_u64(text: &str, key: &str) -> Vec<u64> {
    let needle = format!("{key}=");
    text.match_indices(&needle)
        .map(|(i, _)| {
            let rest = &text[i + needle.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().unwrap()
        })
        .collect()
}

#[test]
fn explain_analyze_reports_actual_rows_for_join_and_aggregate() {
    let db = Database::new();
    db.execute("CREATE TABLE orders (id BIGINT, cust BIGINT, total DOUBLE)")
        .unwrap();
    db.execute("CREATE TABLE customers (id BIGINT, name VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO customers VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    db.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 2, 1.0), (13, 9, 2.0)")
        .unwrap();

    let sql = "SELECT c.name, sum(o.total) FROM orders o \
               JOIN customers c ON o.cust = c.id GROUP BY c.name";
    // The query itself: 3 orders match a customer, 2 output groups.
    let r = db.execute(sql).unwrap();
    assert_eq!(r.row_count(), 2);

    let text = plan_text(&db, &format!("EXPLAIN ANALYZE {sql}"));
    assert!(text.contains("Join kind=Inner"), "{text}");
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("est_rows="), "estimates present: {text}");
    assert!(text.contains("Execution: total="), "{text}");

    // Actual cardinalities in the annotations match what really flowed:
    // the join emits 3 rows, the aggregate 2, and the scans 4 and 3.
    let actuals = extract_u64(&text, "actual rows");
    assert!(actuals.contains(&3), "join rows in {actuals:?}\n{text}");
    assert!(actuals.contains(&2), "group rows in {actuals:?}\n{text}");
    assert!(actuals.contains(&4), "orders scan in {actuals:?}\n{text}");
}

#[test]
fn plain_explain_has_estimates_but_no_actuals() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1),(2),(3),(4),(5),(6),(7),(8)")
        .unwrap();
    let text = plan_text(&db, "EXPLAIN SELECT x FROM t WHERE x > 3");
    assert!(text.contains("est_rows="), "{text}");
    assert!(!text.contains("actual rows"), "{text}");
    // The scan estimate uses live table cardinality: 8 rows × the
    // default filter selectivity (0.25) = 2.
    let ests = extract_u64(&text, "est_rows");
    assert!(ests.contains(&2), "{ests:?}\n{text}");
}

#[test]
fn explain_analyze_iterate_reports_iteration_count() {
    let db = Database::new();
    let text = plan_text(
        &db,
        "EXPLAIN ANALYZE SELECT * FROM ITERATE ((SELECT 1 \"x\"), \
         (SELECT x + 1 FROM iterate), (SELECT x FROM iterate WHERE x >= 10))",
    );
    assert!(text.contains("Iterate"), "{text}");
    assert!(text.contains("[iterations=9]"), "{text}");
    assert!(
        text.contains("calls=9"),
        "loop body folded into one span: {text}"
    );
    assert!(text.contains("iterations=9"), "{text}");

    // The same count is queryable, not just printable.
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("iterate.iterations_total"), 9);
}

#[test]
fn explain_analyze_kmeans_exposes_per_iteration_metrics() {
    let db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("CREATE TABLE ctr (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (0.0,0.0),(0.5,0.5),(10.0,10.0),(10.5,10.5)")
        .unwrap();
    db.execute("INSERT INTO ctr VALUES (1.0,1.0),(9.0,9.0)")
        .unwrap();

    let text = plan_text(
        &db,
        "EXPLAIN ANALYZE SELECT * FROM KMEANS((SELECT x, y FROM pts), \
         (SELECT x, y FROM ctr), λ(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, 10)",
    );
    assert!(text.contains("KMeans"), "{text}");
    assert!(text.contains("[iterations="), "{text}");
    assert!(text.contains("[converged=true]"), "{text}");
    assert!(text.contains("[final_centroid_shift="), "{text}");

    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("kmeans.runs"), 1);
    let iters = snap.counter("kmeans.iterations_total");
    assert!(iters >= 1, "at least one iteration recorded");
    // Per-iteration wall-time histogram has one sample per iteration.
    let h = snap
        .histogram("kmeans.iteration_us")
        .expect("histogram exists");
    assert_eq!(h.count, iters);
    let shifts = snap
        .histogram("kmeans.centroid_shift_micro")
        .expect("shift histogram exists");
    assert_eq!(shifts.count, iters);
    // Converged: the final recorded centroid shift is zero.
    assert_eq!(shifts.min, 0);
}

#[test]
fn query_result_stats_carry_iterations_and_peak_memory() {
    let db = Database::new();
    db.execute("CREATE TABLE base (v BIGINT)").unwrap();
    db.execute("INSERT INTO base VALUES (1),(2),(3),(4)")
        .unwrap();

    let it = db
        .execute(
            "SELECT count(*) FROM ITERATE ((SELECT v, 0 AS i FROM base), \
             (SELECT v + 1, i + 1 FROM iterate), (SELECT i FROM iterate WHERE i >= 20))",
        )
        .unwrap();
    let cte = db
        .execute(
            "WITH RECURSIVE r (v, i) AS (SELECT v, 0 FROM base \
             UNION ALL SELECT v + 1, i + 1 FROM r WHERE i < 20) \
             SELECT count(*) FROM r",
        )
        .unwrap();
    assert_eq!(it.stats.iterations, 20);
    assert!(it.stats.peak_working_rows > 0);
    // The paper's §5.1 ablation: ITERATE keeps only the working set live,
    // the recursive CTE accumulates every iteration's tuples.
    assert!(
        cte.stats.peak_working_rows > 5 * it.stats.peak_working_rows,
        "ITERATE {} vs CTE {}",
        it.stats.peak_working_rows,
        cte.stats.peak_working_rows
    );
}

#[test]
fn metrics_snapshot_counters_are_monotonic() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    let before = db.metrics_snapshot();
    db.execute("SELECT x FROM t").unwrap();
    db.execute("SELECT x FROM t").unwrap();
    let _ = db.execute("SELECT nope FROM t");
    let after = db.metrics_snapshot();

    assert_eq!(
        after.counter("query.executed"),
        before.counter("query.executed") + 2
    );
    assert_eq!(
        after.counter("query.failed"),
        before.counter("query.failed") + 1
    );
    // Wall-time histogram saw every statement, pass or fail.
    let seen =
        |s: &hylite::MetricsSnapshot| s.histogram("query.wall_us").map(|h| h.count).unwrap_or(0);
    assert_eq!(seen(&after), seen(&before) + 3);

    // Sessions share the registry: a second session's queries land in the
    // same counters.
    let mut other = db.session();
    other.execute("SELECT x FROM t").unwrap();
    assert_eq!(
        db.metrics_snapshot().counter("query.executed"),
        after.counter("query.executed") + 1
    );

    // Transactions count too.
    db.execute("BEGIN").unwrap();
    db.execute("COMMIT").unwrap();
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("tx.begin"), 1);
    assert_eq!(snap.counter("tx.commit"), 1);
}

#[test]
fn metrics_snapshot_renders_text_and_json() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1),(2)").unwrap();
    db.execute("SELECT sum(x) FROM t").unwrap();

    let snap = db.metrics_snapshot();
    let text = snap.render_text();
    assert!(text.contains("query.executed"), "{text}");
    assert!(text.contains("query.wall_us"), "{text}");

    let json = snap.render_json();
    assert!(json.contains("\"counters\""), "{json}");
    assert!(json.contains("\"query.executed\""), "{json}");
    // Valid enough to round-trip the counter value.
    assert!(json.contains(&format!(
        "\"query.executed\":{}",
        snap.counter("query.executed")
    )));
}

#[test]
fn explain_analyze_pagerank_reports_residual() {
    let db = Database::new();
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1,2),(2,3),(3,1)")
        .unwrap();
    let text = plan_text(
        &db,
        "EXPLAIN ANALYZE SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0001)",
    );
    assert!(text.contains("PageRank"), "{text}");
    assert!(text.contains("[converged=true]"), "{text}");
    assert!(text.contains("[final_residual="), "{text}");

    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("pagerank.runs"), 1);
    assert!(snap.counter("pagerank.iterations_total") >= 1);
    assert!(snap.histogram("pagerank.residual_nano").is_some());
}

#[test]
fn explain_analyze_result_carries_exec_stats() {
    let db = Database::new();
    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT * FROM ITERATE ((SELECT 1 \"x\"), \
             (SELECT x + 1 FROM iterate), (SELECT x FROM iterate WHERE x >= 5))",
        )
        .unwrap();
    assert_eq!(r.stats.iterations, 4);
    assert!(r.stats.peak_working_rows > 0);
}

#[test]
fn explain_analyze_non_query_statement_executes() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    let r = db
        .execute("EXPLAIN ANALYZE INSERT INTO t VALUES (1), (2)")
        .unwrap();
    let text = r.to_table_string();
    assert!(text.contains("rows_affected=2"), "{text}");
    // The insert really happened.
    assert_eq!(
        db.execute("SELECT count(*) FROM t")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(2)
    );
}
