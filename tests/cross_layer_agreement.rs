//! Cross-layer result agreement: the paper's systems must compute the
//! *same* models/ranks on the same seeds, regardless of integration
//! depth — the physical operator, the ITERATE SQL formulation, the
//! recursive-CTE formulation, and the three comparator simulations.

use hylite_bench::queries;
use hylite_bench::systems::{run_kmeans, run_naive_bayes, System};
use hylite_bench::workloads;
use hylite_datagen::table1::KMeansExperiment;
use hylite_graph::LdbcConfig;

#[test]
fn kmeans_centers_agree_across_all_six_systems() {
    let ctx = workloads::setup_kmeans(
        KMeansExperiment {
            n: 600,
            d: 4,
            k: 3,
            iterations: 4,
        },
        7,
    )
    .unwrap();
    let reference = run_kmeans(System::HyperOperator, &ctx).unwrap().1;
    for system in System::all() {
        let (_, sum) = run_kmeans(system, &ctx).unwrap();
        assert!(
            (sum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "{system} diverged: {sum} vs {reference}"
        );
    }
}

#[test]
fn pagerank_ranks_agree_vertex_by_vertex() {
    let ctx = workloads::setup_pagerank(&LdbcConfig {
        vertices: 150,
        edges: 900,
        triangle_fraction: 0.25,
        seed: 3,
    })
    .unwrap();
    let iterations = 8;

    // Operator ranks by vertex.
    let op = ctx
        .db
        .execute(&queries::pagerank_operator(0.85, iterations))
        .unwrap();
    let mut op_ranks = std::collections::HashMap::new();
    for row in op.to_rows() {
        op_ranks.insert(row.int(0).unwrap(), row.float(1).unwrap());
    }

    // ITERATE SQL formulation.
    let it = ctx
        .db
        .execute(&queries::pagerank_iterate(ctx.vertices, 0.85, iterations))
        .unwrap();
    for row in it.to_rows() {
        let v = row.int(0).unwrap();
        let r = row.float(1).unwrap();
        let expect = op_ranks[&v];
        assert!(
            (r - expect).abs() < 1e-9,
            "ITERATE diverges at vertex {v}: {r} vs {expect}"
        );
    }

    // Recursive CTE formulation.
    let cte = ctx
        .db
        .execute(&queries::pagerank_recursive_cte(
            ctx.vertices,
            0.85,
            iterations,
        ))
        .unwrap();
    for row in cte.to_rows() {
        let v = row.int(0).unwrap();
        let r = row.float(1).unwrap();
        let expect = op_ranks[&v];
        assert!(
            (r - expect).abs() < 1e-9,
            "CTE diverges at vertex {v}: {r} vs {expect}"
        );
    }

    // Single-threaded reference.
    let st = hylite_baselines::single_thread::pagerank(&ctx.src, &ctx.dest, 0.85, 0.0, iterations);
    for (v, r) in st {
        assert!((op_ranks[&v] - r).abs() < 1e-9, "operator diverges at {v}");
    }
}

#[test]
fn naive_bayes_models_agree() {
    let ctx = workloads::setup_naive_bayes(800, 4, 21).unwrap();
    let reference = run_naive_bayes(System::HyperOperator, &ctx).unwrap().1;
    for system in System::all() {
        let (_, sum) = run_naive_bayes(system, &ctx).unwrap();
        assert!(
            (sum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "{system} diverged: {sum} vs {reference}"
        );
    }
}

#[test]
fn kmeans_sql_layers_return_k_rows() {
    // Cardinality sanity for the SQL formulations (the §5.2 estimator
    // special case: k-Means returns exactly k tuples).
    let ctx = workloads::setup_kmeans(
        KMeansExperiment {
            n: 200,
            d: 2,
            k: 4,
            iterations: 2,
        },
        13,
    )
    .unwrap();
    for sql in [
        queries::kmeans_operator(2, 2),
        queries::kmeans_iterate(2, 2),
        queries::kmeans_recursive_cte(2, 2),
    ] {
        let r = ctx.db.execute(&sql).unwrap();
        assert_eq!(r.row_count(), 4, "query: {sql}");
    }
}

#[test]
fn nb_sql_model_matches_operator_model() {
    let ctx = workloads::setup_naive_bayes(400, 3, 5).unwrap();
    let op = ctx
        .db
        .execute(&format!(
            "SELECT class, attribute, prior, mean, stddev FROM ({}) m \
             ORDER BY class, attribute",
            queries::naive_bayes_operator(3)
        ))
        .unwrap();
    let sql = ctx
        .db
        .execute(&format!(
            "SELECT class, attribute, prior, mean, stddev FROM ({}) m \
             ORDER BY class, attribute",
            queries::naive_bayes_sql(3)
        ))
        .unwrap();
    assert_eq!(op.row_count(), sql.row_count());
    for (a, b) in op.to_rows().iter().zip(sql.to_rows()) {
        assert_eq!(a.values()[0], b.values()[0], "class");
        assert_eq!(a.values()[1], b.values()[1], "attribute");
        for c in 2..5 {
            let x = a.float(c).unwrap();
            let y = b.float(c).unwrap();
            assert!((x - y).abs() < 1e-9, "column {c}: {x} vs {y}");
        }
    }
}
