//! WAL-shipping replication, end to end: a primary [`Server`] streaming
//! its redo WAL to a [`Replica`] over real TCP, with both sides backed by
//! [`FaultVfs`] so crashes land deterministically at registered crash
//! points.
//!
//! The invariant under test mirrors the durability matrix one level up:
//! **after any crash on either side, a restarted replica converges to
//! exactly the primary's acknowledged commits** — no loss, no
//! duplication, and never a silent fork (a replica that cannot vouch for
//! its state stops serving instead).

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_client::{HyliteClient, RetryPolicy};
use hylite_common::faultfs::{CrashSpec, FaultVfs, KeepUnsynced, Vfs};
use hylite_common::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use hylite_common::{crc32, HyError, Value};
use hylite_core::{Database, DurabilityOptions, ReplRole, CRASH_POINTS};
use hylite_server::{Replica, ReplicaConfig, ReplicaHandle, Server, ServerConfig, ServerHandle};
use hylite_storage::archive::CP_ARCHIVE_ROTATE;
use hylite_storage::backup::CP_BACKUP_SEG_COPY;
use hylite_storage::wal::{CP_WAL_AFTER_WRITE, CP_WAL_APPEND, CP_WAL_POST_FSYNC, CP_WAL_PRE_FSYNC};

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

fn open_primary(fault: &FaultVfs) -> Database {
    Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        DurabilityOptions::default(),
    )
    .expect("open primary database")
}

fn open_replica(fault: &FaultVfs) -> Database {
    Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        DurabilityOptions {
            role: ReplRole::Replica,
            ..DurabilityOptions::default()
        },
    )
    .expect("open replica database")
}

/// A server config with replication knobs tightened for fast tests.
fn fast_server_config() -> ServerConfig {
    ServerConfig {
        repl_poll_interval: Duration::from_millis(1),
        drain_timeout: Duration::from_millis(500),
        ..ServerConfig::ephemeral()
    }
}

/// A replica config that reconnects aggressively (tests kill the primary
/// and want the reconnect to land within milliseconds, not seconds).
fn fast_replica_config(primary_addr: impl Into<String>) -> ReplicaConfig {
    let mut config = ReplicaConfig::new(primary_addr);
    config.retry = RetryPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    config
}

fn start_replica(db: &Arc<Database>, primary_addr: &str) -> ReplicaHandle {
    Replica::start(
        Arc::clone(db),
        fast_server_config(),
        fast_replica_config(primary_addr),
    )
    .expect("start replica")
}

/// Start a server on `config.addr`, retrying briefly — rebinding a fixed
/// port right after a shutdown can race the kernel releasing it.
fn start_server_retrying(config: &ServerConfig, db: &Arc<Database>) -> ServerHandle {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Server::start(config.clone(), Arc::clone(db)) {
            Ok(handle) => return handle,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("could not rebind {}: {e}", config.addr),
        }
    }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// Canonical rendering of table `t` — byte-identical on two databases
/// iff they hold exactly the same committed rows.
fn dump(db: &Database) -> String {
    db.execute("SELECT x FROM t ORDER BY x")
        .expect("dump t")
        .to_table_string()
}

/// Like [`dump`] but tolerant of a database that is mid-bootstrap (the
/// table may not exist yet); errors render as a non-matching string.
fn try_dump(db: &Database) -> String {
    match db.execute("SELECT x FROM t ORDER BY x") {
        Ok(r) => r.to_table_string(),
        Err(e) => format!("<unavailable: {e}>"),
    }
}

fn converged(primary: &Database, replica: &Database) -> bool {
    try_dump(replica) == dump(primary)
}

fn seed_primary(fault: &FaultVfs) -> Arc<Database> {
    let db = Arc::new(open_primary(fault));
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 1..=3 {
        db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
    }
    db
}

/// SplitMix64 — drives the deterministic chaos schedule.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reserve a localhost port the test can rebind after restarting the
/// primary (std listeners set SO_REUSEADDR, so TIME_WAIT remnants from
/// the previous incarnation don't block the rebind).
fn reserved_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

// ---------------------------------------------------------------------
// The happy path: bootstrap, live streaming, read-only serving.
// ---------------------------------------------------------------------

#[test]
fn replica_bootstraps_streams_live_and_rejects_writes_naming_the_primary() {
    let pf = FaultVfs::new();
    let primary = seed_primary(&pf);
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let primary_addr = p_handle.local_addr().to_string();

    let rf = FaultVfs::new();
    let replica_db = Arc::new(open_replica(&rf));
    let replica = start_replica(&replica_db, &primary_addr);

    // A fresh replica (epoch 0) must bootstrap from a snapshot, then hold
    // exactly the primary's committed rows.
    wait_until("initial catch-up", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    assert_eq!(replica.status().bootstraps(), 1);
    assert!(replica.status().is_connected());

    // Live streaming: a commit after catch-up arrives without any
    // reconnect or re-bootstrap.
    primary.execute("INSERT INTO t VALUES (100)").unwrap();
    wait_until("live frame to apply", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    assert_eq!(
        replica.status().bootstraps(),
        1,
        "live frames, not snapshots"
    );

    // The replica serves ordinary read-only sessions over the wire.
    let mut client = HyliteClient::connect(replica.local_addr()).unwrap();
    let r = client.query("SELECT sum(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(106));

    // Writes are rejected with the typed retryable code, naming the
    // primary so the client knows where to go.
    let err = client.query("INSERT INTO t VALUES (7)").unwrap_err();
    assert!(matches!(err, HyError::ReadOnly(_)), "{err}");
    assert_eq!(client.last_error_code(), Some(ErrorCode::ReadOnlyReplica));
    assert!(ErrorCode::ReadOnlyReplica.is_retryable());
    assert!(
        err.to_string().contains(&primary_addr),
        "error must name the primary: {err}"
    );
    // DDL is a write too.
    let err = client.query("CREATE TABLE nope (x BIGINT)").unwrap_err();
    assert!(matches!(err, HyError::ReadOnly(_)), "{err}");

    // The rejection is per-statement: the session keeps working.
    let r = client.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(4));
    client.close().unwrap();

    // The rejected write never leaked into either side.
    assert!(
        !dump(&primary).contains('7'),
        "rejected write must not apply"
    );

    replica.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// Graceful restart: an intact replica resumes, it never re-bootstraps.
// ---------------------------------------------------------------------

#[test]
fn replica_restart_resumes_from_its_wal_without_rebootstrap() {
    let pf = FaultVfs::new();
    let primary = seed_primary(&pf);
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let primary_addr = p_handle.local_addr().to_string();

    let rf = FaultVfs::new();
    let replica_db = Arc::new(open_replica(&rf));
    let replica = start_replica(&replica_db, &primary_addr);
    wait_until("initial catch-up", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    replica.shutdown();
    drop(replica_db);

    // The primary keeps committing while the replica is down.
    for v in 4..=6 {
        primary
            .execute(&format!("INSERT INTO t VALUES ({v})"))
            .unwrap();
    }

    // Restart: same epoch, intact local WAL — the primary must accept the
    // resume position and stream only the missing frames.
    let replica_db = Arc::new(open_replica(&rf));
    let replica = start_replica(&replica_db, &primary_addr);
    wait_until("resume catch-up", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    assert_eq!(
        replica.status().bootstraps(),
        0,
        "an intact replica resumes; re-bootstrapping would discard durable state"
    );

    replica.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// The crash matrix, replica side: kill -9 at every registered crash
// point while frames are applying; after reboot the replica converges.
// ---------------------------------------------------------------------

#[test]
fn replica_crash_at_every_point_reconverges_after_restart() {
    for &point in CRASH_POINTS {
        // Backup copies and archive rotations never run on a following
        // replica (nothing takes a backup here and replicas do not
        // archive), so these points could never fire; their crash
        // semantics are covered in `tests/backup.rs`.
        if point == CP_BACKUP_SEG_COPY || point == CP_ARCHIVE_ROTATE {
            continue;
        }
        let pf = FaultVfs::new();
        let primary = seed_primary(&pf);
        let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
        let primary_addr = p_handle.local_addr().to_string();

        let rf = FaultVfs::new();
        let replica_db = Arc::new(open_replica(&rf));
        // Arm before the replica ever connects: the crash lands inside
        // the bootstrap install (checkpoint.* / wal.truncate points) or
        // inside a streamed frame's redo append (wal.* points).
        rf.arm_crash(CrashSpec::first(point));
        let mut config = fast_replica_config(&primary_addr);
        // Aggressive local checkpoints so the post-restart phase also
        // exercises the replica's own compaction path.
        config.checkpoint_wal_bytes = 256;
        let replica = Replica::start(
            Arc::clone(&replica_db),
            fast_server_config(),
            config.clone(),
        )
        .expect("start replica");

        // Commit until the crash fires on the replica.
        let mut v = 100i64;
        wait_until(
            &format!("{point}: replica crash to fire"),
            Duration::from_secs(10),
            || {
                if rf.crashed() {
                    return true;
                }
                primary
                    .execute(&format!("INSERT INTO t VALUES ({v})"))
                    .unwrap();
                v += 1;
                false
            },
        );
        assert!(rf.hits(point) >= 1, "{point}: crash point never hit");

        // One more acknowledged commit guarantees a frame arrives after
        // the crash, forcing the apply loop to observe the dead VFS. A
        // crashed replica must refuse to continue, never ack-and-skip.
        primary
            .execute(&format!("INSERT INTO t VALUES ({v})"))
            .unwrap();
        wait_until(
            &format!("{point}: replica to stop serving"),
            Duration::from_secs(10),
            || replica.status().has_failed(),
        );
        replica.shutdown();
        drop(replica_db);

        // Reboot, recover, re-follow: whether it resumes or re-bootstraps
        // is the protocol's choice — converging exactly is not optional.
        rf.reboot();
        let replica_db = Arc::new(open_replica(&rf));
        let replica = Replica::start(Arc::clone(&replica_db), fast_server_config(), config)
            .expect("restart replica");
        wait_until(
            &format!("{point}: post-crash convergence"),
            Duration::from_secs(10),
            || converged(&primary, &replica_db),
        );
        assert!(
            !replica.status().has_failed(),
            "{point}: recovered replica must serve again"
        );

        replica.shutdown();
        p_handle.shutdown();
    }
}

// ---------------------------------------------------------------------
// Primary kill -9: the restart mints a fresh epoch, which must fence the
// replica into a re-bootstrap — never a silent resume over a possibly
// forked history.
// ---------------------------------------------------------------------

#[test]
fn primary_restart_fences_replica_into_rebootstrap() {
    let addr = reserved_addr();
    let pf = FaultVfs::new();
    let primary = seed_primary(&pf);
    let epoch_a = primary.durability().unwrap().epoch();
    let mut p_config = fast_server_config();
    p_config.addr = addr.clone();
    let p_handle = Server::start(p_config.clone(), Arc::clone(&primary)).unwrap();

    let rf = FaultVfs::new();
    let replica_db = Arc::new(open_replica(&rf));
    let replica = start_replica(&replica_db, &addr);
    wait_until("initial catch-up", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    assert_eq!(replica.status().bootstraps(), 1);

    // Kill -9 the primary mid-commit: the in-flight insert of 999 was
    // never acknowledged and must not survive anywhere.
    pf.arm_crash(CrashSpec::first(CP_WAL_APPEND));
    assert!(primary.execute("INSERT INTO t VALUES (999)").is_err());
    assert!(pf.crashed());
    p_handle.shutdown();
    drop(primary);

    // While the primary is down the replica retries quietly — downtime is
    // a network fault, not a local one.
    std::thread::sleep(Duration::from_millis(100));
    assert!(!replica.status().has_failed(), "downtime must not be fatal");

    // Restart the primary on the same address under a fresh epoch.
    pf.reboot();
    let primary = Arc::new(open_primary(&pf));
    let epoch_b = primary.durability().unwrap().epoch();
    assert_ne!(
        epoch_a, epoch_b,
        "a primary restart must mint a fresh epoch"
    );
    primary.execute("INSERT INTO t VALUES (1000)").unwrap();
    let p_handle = start_server_retrying(&p_config, &primary);

    // The epoch mismatch forces a snapshot re-bootstrap (the conservative
    // answer: the restart may have lost tail state the replica applied).
    wait_until("fenced re-bootstrap", Duration::from_secs(10), || {
        replica.status().bootstraps() >= 2
    });
    wait_until("post-failover convergence", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    let replica_rows = dump(&replica_db);
    assert!(
        !replica_rows.contains("999"),
        "lost commit resurrected: {replica_rows}"
    );
    assert!(
        replica_rows.contains("1000"),
        "new-epoch commit missing: {replica_rows}"
    );

    replica.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// The chaos soak (deterministic seed): kill -9 either side mid-stream,
// restart, repeat — the end state must be byte-identical.
// ---------------------------------------------------------------------

#[test]
fn chaos_soak_kill_both_sides_repeatedly_converges_byte_identical() {
    const WAL_POINTS: [&str; 4] = [
        CP_WAL_APPEND,
        CP_WAL_AFTER_WRITE,
        CP_WAL_PRE_FSYNC,
        CP_WAL_POST_FSYNC,
    ];
    let mut seed = 0x5EED_50AC_u64; // fixed: the whole schedule is replayable

    let addr = reserved_addr();
    let pf = FaultVfs::new();
    let mut primary = seed_primary(&pf);
    let mut p_config = fast_server_config();
    p_config.addr = addr.clone();
    let mut p_handle = Server::start(p_config.clone(), Arc::clone(&primary)).unwrap();

    let rf = FaultVfs::new();
    let mut replica_db = Arc::new(open_replica(&rf));
    let mut r_config = fast_replica_config(&addr);
    r_config.checkpoint_wal_bytes = 0; // restarts replay the full local WAL
    let mut replica = Replica::start(
        Arc::clone(&replica_db),
        fast_server_config(),
        r_config.clone(),
    )
    .unwrap();

    fn insert_batch(primary: &Database, next_val: &mut i64, n: usize) {
        for _ in 0..n {
            *next_val += 1;
            primary
                .execute(&format!("INSERT INTO t VALUES ({next_val})"))
                .unwrap();
        }
    }
    let mut next_val = 1000i64;

    for round in 0u64..6 {
        insert_batch(&primary, &mut next_val, 15);
        seed = splitmix64(seed ^ round);
        if round % 2 == 0 {
            // Kill -9 the replica at a seeded WAL point (page cache
            // survives a process kill, hence KeepUnsynced::All).
            let point = WAL_POINTS[(seed % 4) as usize];
            rf.arm_crash(CrashSpec::first_keeping(point, KeepUnsynced::All));
            wait_until("soak: replica crash", Duration::from_secs(10), || {
                if rf.crashed() {
                    return true;
                }
                insert_batch(&primary, &mut next_val, 1);
                false
            });
            insert_batch(&primary, &mut next_val, 1); // force a frame onto the dead VFS
            wait_until("soak: replica failure", Duration::from_secs(10), || {
                replica.status().has_failed()
            });
            replica.shutdown();
            drop(replica_db);
            rf.reboot();
            replica_db = Arc::new(open_replica(&rf));
            replica = Replica::start(
                Arc::clone(&replica_db),
                fast_server_config(),
                r_config.clone(),
            )
            .unwrap();
        } else {
            // Kill -9 the primary before the frame hits its WAL: the
            // failed commit was never acknowledged and must stay lost.
            pf.arm_crash(CrashSpec::first(CP_WAL_APPEND));
            next_val += 1;
            assert!(primary
                .execute(&format!("INSERT INTO t VALUES ({next_val})"))
                .is_err());
            p_handle.shutdown();
            drop(primary);
            pf.reboot();
            primary = Arc::new(open_primary(&pf));
            p_handle = start_server_retrying(&p_config, &primary);
        }
    }

    insert_batch(&primary, &mut next_val, 5);
    wait_until("soak: final convergence", Duration::from_secs(20), || {
        converged(&primary, &replica_db)
    });
    assert_eq!(
        dump(&primary),
        dump(&replica_db),
        "replica must converge byte-identically to the primary"
    );
    assert!(!replica.status().has_failed());

    replica.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// Flow control: a replica that stops acking is shed; primary commits
// never stall on it.
// ---------------------------------------------------------------------

#[test]
fn slow_replica_is_shed_while_primary_commits_proceed() {
    let pf = FaultVfs::new();
    let primary = seed_primary(&pf);
    let mut config = fast_server_config();
    config.repl_max_unacked_bytes = 256; // a handful of frames
    config.repl_ack_timeout = Duration::from_millis(100);
    let p_handle = Server::start(config, Arc::clone(&primary)).unwrap();

    // A hand-rolled replica that handshakes and then never acks.
    let mut sock = TcpStream::connect(p_handle.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wire::write_frame(
        &mut sock,
        &Frame::Replicate {
            version: PROTOCOL_VERSION,
            epoch: 0,
            last_lsn: 0,
        },
    )
    .unwrap();
    let offer = wire::read_frame(&mut sock).unwrap();
    assert!(
        matches!(offer, Frame::SnapshotOffer { .. }),
        "an epoch-0 replica always gets a snapshot, got {offer:?}"
    );

    // Commits on the primary must never wait for the stalled replica.
    let started = Instant::now();
    for v in 0..40 {
        primary
            .execute(&format!("INSERT INTO t VALUES ({})", 200 + v))
            .unwrap();
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "primary commits stalled behind a dead replica"
    );

    // The stream delivers some frames, then a typed shed notice.
    let shed_code = loop {
        match wire::read_frame(&mut sock) {
            Ok(Frame::WalFrame { .. }) => continue,
            Ok(Frame::Error { code, .. }) => break ErrorCode::from_u16(code),
            Ok(other) => panic!("unexpected frame while stalled: {other:?}"),
            Err(e) => panic!("shed must be announced with an Error frame, got {e}"),
        }
    };
    assert!(
        shed_code.is_retryable(),
        "shed must be retryable: {shed_code:?}"
    );
    wait_until("shed metric", Duration::from_secs(5), || {
        primary.metrics().counter("server.replicas_shed").get() >= 1
    });
    wait_until("replica gauge to drop", Duration::from_secs(5), || {
        primary.metrics().gauge("server.replicas_connected").get() == 0
    });

    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// Divergence: a stream that does not continue the replica's history is
// refused — the replica stops serving rather than forking silently.
// ---------------------------------------------------------------------

#[test]
fn diverged_stream_is_refused_and_the_replica_stops_serving() {
    // A fake primary that accepts the handshake and then ships a frame
    // from the future (an LSN gap = a history this replica never had).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let rf = FaultVfs::new();
    let replica_db = Arc::new(open_replica(&rf));
    let replica = start_replica(&replica_db, &addr);

    let (mut sock, _) = listener.accept().unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = wire::read_frame(&mut sock).unwrap();
    let Frame::Replicate {
        epoch, last_lsn, ..
    } = hello
    else {
        panic!("expected a Replicate handshake, got {hello:?}");
    };
    assert_eq!(epoch, 0, "a fresh replica has no epoch");
    assert_eq!(last_lsn, 0, "a fresh replica has no history");

    wire::write_frame(
        &mut sock,
        &Frame::ReplicateOk {
            epoch: 0xBAD,
            next_lsn: 1,
        },
    )
    .unwrap();
    let mut payload = Vec::new();
    payload.extend_from_slice(&99u64.to_le_bytes()); // lsn 99: a 98-commit gap
    payload.extend_from_slice(&0u32.to_le_bytes()); // zero ops
    wire::write_frame(
        &mut sock,
        &Frame::WalFrame {
            lsn: 99,
            crc: crc32(&payload),
            payload,
        },
    )
    .unwrap();

    // The replica must go fatal — and it must never have acked the frame.
    wait_until("refusal", Duration::from_secs(10), || {
        replica.status().has_failed()
    });
    assert_eq!(
        replica.status().last_applied_lsn(),
        0,
        "gap frame must not apply"
    );
    assert!(replica_db.metrics().counter("repl.fatal_errors").get() >= 1);

    // "Refuses to serve" is literal: the SQL side shuts down too.
    wait_until("serving side to stop", Duration::from_secs(10), || {
        HyliteClient::connect(replica.local_addr()).is_err()
    });

    replica.shutdown();
}

// ---------------------------------------------------------------------
// Promotion: a caught-up replica becomes a writable primary under a
// fresh epoch; without --promote the replica dir refuses to open
// writable.
// ---------------------------------------------------------------------

#[test]
fn promotion_turns_a_caught_up_replica_into_a_writable_primary() {
    let pf = FaultVfs::new();
    let primary = seed_primary(&pf);
    let old_epoch = primary.durability().unwrap().epoch();
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let primary_addr = p_handle.local_addr().to_string();

    let rf = FaultVfs::new();
    let replica_db = Arc::new(open_replica(&rf));
    let replica = start_replica(&replica_db, &primary_addr);
    wait_until("catch-up before failover", Duration::from_secs(10), || {
        converged(&primary, &replica_db)
    });
    let expected = dump(&primary);
    replica.shutdown();
    drop(replica_db);
    p_handle.shutdown(); // the old primary is confirmed dead

    // The fence: a replica dir will not open writable by accident.
    let err = match Database::open_with(
        Arc::new(rf.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        DurabilityOptions::default(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("a replica dir must refuse to open writable without --promote"),
    };
    assert!(err.to_string().contains("--promote"), "{err}");

    // Deliberate promotion: writable, fresh epoch, all replicated data.
    let promoted = Database::open_with(
        Arc::new(rf.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        DurabilityOptions {
            promote: true,
            ..DurabilityOptions::default()
        },
    )
    .unwrap();
    assert!(!promoted.is_replica());
    assert_ne!(
        promoted.durability().unwrap().epoch(),
        old_epoch,
        "promotion must mint its own epoch, fencing stale followers"
    );
    assert_eq!(
        dump(&promoted),
        expected,
        "promotion must not lose replicated rows"
    );
    promoted.execute("INSERT INTO t VALUES (4242)").unwrap();
    drop(promoted);

    // The promoted primary is an ordinary primary from here on: it
    // restarts without --promote and keeps its commits.
    let reopened = open_primary(&rf);
    assert!(
        dump(&reopened).contains("4242"),
        "promoted commit lost on restart"
    );
}

// ---------------------------------------------------------------------
// Satellite: per-statement panic isolation.
// ---------------------------------------------------------------------

#[test]
fn statement_panic_kills_only_its_own_connection() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let mut config = ServerConfig::ephemeral();
    config.panic_on_sql = Some("SELECT 666".into());
    let handle = Server::start(config, Arc::new(db)).unwrap();

    let mut victim = HyliteClient::connect(handle.local_addr()).unwrap();
    let mut bystander = HyliteClient::connect(handle.local_addr()).unwrap();

    let err = victim.query("SELECT 666").unwrap_err();
    assert!(matches!(err, HyError::Internal(_)), "{err}");
    assert!(err.to_string().contains("panicked"), "{err}");
    // Session state after a panic is unknown, so that connection dies...
    assert!(
        victim.query("SELECT 1").is_err(),
        "panicked session must close"
    );

    // ...but the server and every other connection are unharmed.
    let r = bystander.query("SELECT sum(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(1));
    assert_eq!(handle.metrics().counter("server.panics").get(), 1);

    // Still accepting fresh connections.
    let mut late = HyliteClient::connect(handle.local_addr()).unwrap();
    assert_eq!(
        late.query("SELECT 2").unwrap().scalar().unwrap(),
        Value::Int(2)
    );

    late.close().unwrap();
    bystander.close().unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Satellite: streamed queries retry only before the first chunk.
// ---------------------------------------------------------------------

#[test]
fn query_streamed_with_retry_retries_until_a_slot_frees() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
    }
    let config = ServerConfig {
        max_active_statements: 1,
        statement_queue_depth: 0,
        ..ServerConfig::ephemeral()
    };
    let handle = Server::start(config, Arc::new(db)).unwrap();
    let addr = handle.local_addr();

    // Occupy the only execution slot with a long ITERATE.
    let mut occupant = HyliteClient::connect(addr).unwrap();
    let cancel = occupant.cancel_handle();
    let occupant_thread = std::thread::spawn(move || {
        let _ = occupant.query(
            "SELECT * FROM ITERATE((SELECT 0 \"x\"), (SELECT x + 1 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 5000000))",
        );
    });

    let mut client = HyliteClient::connect(addr).unwrap();
    wait_until("slot to be occupied", Duration::from_secs(10), || {
        matches!(client.query("SELECT 1"), Err(HyError::Unavailable(_)))
    });

    // Free the slot shortly — the streamed query's early retries will
    // collide with the occupant, then succeed.
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        cancel.cancel().expect("cancel the occupant");
    });

    let policy = RetryPolicy {
        max_attempts: 100,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(50),
        deadline: Duration::from_secs(20),
    };
    let mut stream = client
        .query_streamed_with_retry("SELECT x FROM t ORDER BY x", &policy)
        .unwrap();
    let mut rows = 0usize;
    while let Some(chunk) = stream.next_chunk().unwrap() {
        rows += chunk.len();
    }
    drop(stream);
    assert_eq!(rows, 10);
    assert!(
        client.retries() >= 1,
        "the first attempts must have been shed"
    );

    canceller.join().unwrap();
    occupant_thread.join().unwrap();
    client.close().unwrap();
    handle.shutdown();
}
