//! Layer-3 demonstrations: whole analytics algorithms written in plain
//! SQL (+ ITERATE), per §4.2 — "some algorithms, such as the a-priori
//! algorithm for frequent itemset mining, work well in SQL".

use hylite::{Database, Value};

/// A-priori frequent-pair mining over a basket relation, entirely in SQL:
/// frequent 1-itemsets via GROUP BY/HAVING, candidate 2-itemsets via
/// self-join of frequent items, support counting via joins.
#[test]
fn apriori_frequent_pairs_in_sql() {
    let db = Database::new();
    db.execute("CREATE TABLE baskets (tx BIGINT, item VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO baskets VALUES \
         (1,'bread'),(1,'milk'),(1,'beer'), \
         (2,'bread'),(2,'milk'), \
         (3,'milk'),(3,'beer'), \
         (4,'bread'),(4,'milk'), \
         (5,'bread'),(5,'diapers')",
    )
    .unwrap();
    // min support = 3 for items, 2 for pairs.
    let r = db
        .execute(
            "WITH frequent AS (\
                SELECT item FROM baskets GROUP BY item HAVING count(*) >= 3), \
             pairs AS (\
                SELECT b1.item AS item_a, b2.item AS item_b, b1.tx AS tx \
                FROM baskets b1 \
                JOIN baskets b2 ON b1.tx = b2.tx AND b1.item < b2.item \
                JOIN frequent f1 ON f1.item = b1.item \
                JOIN frequent f2 ON f2.item = b2.item) \
             SELECT item_a, item_b, count(*) AS support \
             FROM pairs GROUP BY item_a, item_b HAVING count(*) >= 2 \
             ORDER BY support DESC, item_a",
        )
        .unwrap();
    assert_eq!(r.row_count(), 1, "only (bread, milk) is frequent");
    assert_eq!(r.value(0, 0).unwrap(), Value::from("bread"));
    assert_eq!(r.value(0, 1).unwrap(), Value::from("milk"));
    assert_eq!(r.value(0, 2).unwrap(), Value::Int(3));
}

/// Connected components by iterative min-label propagation — a whole
/// graph algorithm on the ITERATE construct: the (vertex, label)
/// relation is *replaced* every round.
#[test]
fn connected_components_via_iterate() {
    let db = Database::new();
    db.execute("CREATE TABLE g (a BIGINT, b BIGINT)").unwrap();
    // Two components: {1,2,3} and {10,11}; plus isolated-ish pair (20,21).
    db.execute("INSERT INTO g VALUES (1,2),(2,1),(2,3),(3,2),(10,11),(11,10),(20,21),(21,20)")
        .unwrap();
    let r = db
        .execute(
            "SELECT label, count(*) AS size FROM ITERATE(\
               (SELECT v.vertex AS vertex, v.vertex AS label, 0 AS i \
                FROM (SELECT a AS vertex FROM g UNION SELECT b FROM g) v), \
               (SELECT it.vertex, least(min(it.label), min(nl.nlabel)) AS label, min(it.i) + 1 \
                FROM iterate it \
                JOIN (SELECT e.b AS vertex, min(it2.label) AS nlabel \
                      FROM iterate it2 JOIN g e ON e.a = it2.vertex \
                      GROUP BY e.b) nl \
                  ON nl.vertex = it.vertex \
                GROUP BY it.vertex), \
               (SELECT i FROM iterate WHERE i >= 6)) \
             GROUP BY label ORDER BY label",
        )
        .unwrap();
    assert_eq!(r.row_count(), 3, "three components");
    assert_eq!(r.value(0, 0).unwrap(), Value::Int(1));
    assert_eq!(r.value(0, 1).unwrap(), Value::Int(3));
    assert_eq!(r.value(1, 0).unwrap(), Value::Int(10));
    assert_eq!(r.value(1, 1).unwrap(), Value::Int(2));
    assert_eq!(r.value(2, 0).unwrap(), Value::Int(20));
}

/// One-dimensional k-Means in pure SQL via ITERATE, validated against
/// the operator on the same data.
#[test]
fn kmeans_1d_sql_matches_operator() {
    let db = Database::new();
    db.execute("CREATE TABLE d1 (id BIGINT, x DOUBLE)").unwrap();
    db.execute("INSERT INTO d1 VALUES (1, 1.0), (2, 1.2), (3, 0.8), (4, 7.0), (5, 7.2), (6, 6.8)")
        .unwrap();
    let sql_centers = db
        .execute(
            "SELECT c FROM ITERATE(\
               (SELECT 0.0 AS c, 0 AS i UNION ALL SELECT 10.0, 0), \
               (SELECT avg(pick.x) AS c, min(pick.i) + 1 \
                FROM (SELECT p.id, p.x, p.c, p.i \
                      FROM (SELECT d.id, d.x, it.c, it.i, abs(d.x - it.c) AS dist \
                            FROM d1 d, iterate it) p \
                      JOIN (SELECT q.id AS id, min(q.dist) AS m \
                            FROM (SELECT d.id, abs(d.x - it.c) AS dist FROM d1 d, iterate it) q \
                            GROUP BY q.id) mm \
                        ON mm.id = p.id AND p.dist = mm.m) pick \
                GROUP BY pick.c), \
               (SELECT i FROM iterate WHERE i >= 5)) \
             ORDER BY c",
        )
        .unwrap();
    let op_centers = db
        .execute(
            "SELECT x FROM KMEANS((SELECT x FROM d1), \
             (SELECT 0.0 c UNION ALL SELECT 10.0), 5) ORDER BY x",
        )
        .unwrap();
    assert_eq!(sql_centers.row_count(), 2);
    for i in 0..2 {
        let a = sql_centers.value(i, 0).unwrap().as_float().unwrap();
        let b = op_centers.value(i, 0).unwrap().as_float().unwrap();
        assert!((a - b).abs() < 1e-9, "center {i}: SQL {a} vs operator {b}");
    }
}

/// Reachability (growing relation) belongs to recursive CTEs; fixed-size
/// iteration belongs to ITERATE — the paper's guidance, both in one test.
#[test]
fn right_construct_for_each_shape() {
    let db = Database::new();
    db.execute("CREATE TABLE e (s BIGINT, d BIGINT)").unwrap();
    db.execute("INSERT INTO e VALUES (1,2),(2,3),(3,4)")
        .unwrap();
    // Growing: transitive closure with UNION fixpoint.
    let reach = db
        .execute(
            "WITH RECURSIVE r (v) AS (SELECT 1 UNION SELECT e.d FROM r JOIN e ON e.s = r.v) \
             SELECT count(*) FROM r",
        )
        .unwrap();
    assert_eq!(reach.scalar().unwrap(), Value::Int(4));
    // Fixed-size: 3 rounds of value propagation.
    let prop = db
        .execute(
            "SELECT count(*) FROM ITERATE(\
               (SELECT s AS v, 0 AS i FROM e), \
               (SELECT v, i + 1 FROM iterate), \
               (SELECT i FROM iterate WHERE i >= 3))",
        )
        .unwrap();
    assert_eq!(
        prop.scalar().unwrap(),
        Value::Int(3),
        "relation size constant"
    );
}
