//! The per-statement resource governor, end to end: cooperative
//! cancellation, statement timeouts, and memory budgets each abort a
//! long-running statement with the right error variant — and the session
//! stays usable afterwards.

use std::time::Duration;

use hylite::{Database, HyError, Value};

/// A PageRank with ε = 0 so it always runs the full iteration count —
/// far too many iterations to finish before the governor steps in.
fn long_pagerank_sql() -> &'static str {
    "SELECT count(*) FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0, 1000000)"
}

fn setup_edges(db: &Database, n: usize) {
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
        .unwrap();
    // A ring plus chords: every vertex reachable, no dangling shortcuts.
    let mut values = Vec::with_capacity(n * 2);
    for i in 0..n as i64 {
        let next = (i + 1) % n as i64;
        let chord = (i * 7 + 3) % n as i64;
        values.push(format!("({i},{next})"));
        values.push(format!("({i},{chord})"));
    }
    db.execute(&format!("INSERT INTO edges VALUES {}", values.join(",")))
        .unwrap();
}

/// The session must answer simple queries normally after a governed abort.
fn assert_session_usable(db: &Database) {
    let r = db.execute("SELECT 1 + 1").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
}

#[test]
fn cancel_before_first_morsel_aborts_immediately() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    // Pre-cancel: the statement must die at its very first check point.
    db.cancel_handle().cancel();
    let err = db.execute("SELECT count(*) FROM t").unwrap_err();
    assert!(matches!(err, HyError::Cancelled(_)), "{err}");
    assert_eq!(err.stage(), "cancelled");
    // The cancel fired once; the session resumes normal service.
    assert_session_usable(&db);
}

#[test]
fn cancel_from_another_thread_stops_long_pagerank() {
    let db = std::sync::Arc::new(Database::new());
    setup_edges(&db, 2000);
    let handle = db.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        handle.cancel();
    });
    let started = std::time::Instant::now();
    let err = db.execute(long_pagerank_sql()).unwrap_err();
    canceller.join().unwrap();
    assert!(matches!(err, HyError::Cancelled(_)), "{err}");
    // Cooperative checks fire within one iteration/morsel — the query
    // must stop far before running its 2000 iterations to completion.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "cancellation took {:?}",
        started.elapsed()
    );
    assert_session_usable(&db);
}

#[test]
fn statement_timeout_aborts_iterate_mid_loop() {
    let db = Database::new();
    db.execute("SET statement_timeout_ms = 50").unwrap();
    // An ITERATE that would run 5M iterations without the deadline.
    let err = db
        .execute(
            "SELECT * FROM ITERATE((SELECT 0 \"x\"), (SELECT x + 1 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 5000000))",
        )
        .unwrap_err();
    assert!(matches!(err, HyError::Timeout(_)), "{err}");
    assert_eq!(err.stage(), "timeout");
    assert!(err.to_string().contains("50 ms"), "{err}");
    // 0 disables the deadline again; the same loop shape (shortened)
    // completes.
    db.execute("SET statement_timeout_ms = 0").unwrap();
    let r = db
        .execute(
            "SELECT * FROM ITERATE((SELECT 0 \"x\"), (SELECT x + 1 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 100))",
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(100));
}

#[test]
fn statement_timeout_aborts_long_pagerank() {
    let db = Database::new();
    setup_edges(&db, 2000);
    db.execute("SET statement_timeout_ms = 40").unwrap();
    let err = db.execute(long_pagerank_sql()).unwrap_err();
    assert!(matches!(err, HyError::Timeout(_)), "{err}");
    db.execute("SET statement_timeout_ms = 0").unwrap();
    assert_session_usable(&db);
}

#[test]
fn budget_exceeded_inside_parallel_aggregation() {
    let db = Database::new();
    // Build a wide working set FIRST (unbudgeted): ~128k distinct keys
    // via ITERATE doubling.
    db.execute("CREATE TABLE big (k BIGINT)").unwrap();
    db.execute(
        "INSERT INTO big SELECT * FROM ITERATE((SELECT 1 \"x\"), \
         (SELECT x * 2 FROM iterate UNION ALL SELECT x * 2 + 1 FROM iterate), \
         (SELECT x FROM iterate WHERE x >= 131072))",
    )
    .unwrap();
    let n = db
        .execute("SELECT count(*) FROM big")
        .unwrap()
        .scalar()
        .unwrap();
    assert_eq!(n, Value::Int(131072));
    // A 1 MiB budget cannot hold ~128k group states (~48+ bytes each).
    db.execute("SET memory_budget_mb = 1").unwrap();
    let err = db
        .execute("SELECT k, count(*) FROM big GROUP BY k")
        .unwrap_err();
    assert!(matches!(err, HyError::BudgetExceeded(_)), "{err}");
    assert_eq!(err.stage(), "budget");
    // Small statements still fit under the same budget, and lifting it
    // restores the big aggregation.
    assert_session_usable(&db);
    db.execute("SET memory_budget_mb = 0").unwrap();
    let r = db
        .execute("SELECT count(*) FROM (SELECT k, count(*) FROM big GROUP BY k) g")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(131072));
}

#[test]
fn budget_exceeded_aborts_pagerank() {
    let db = Database::new();
    setup_edges(&db, 50000);
    db.execute("SET memory_budget_mb = 1").unwrap();
    let err = db.execute(long_pagerank_sql()).unwrap_err();
    assert!(matches!(err, HyError::BudgetExceeded(_)), "{err}");
    db.execute("SET memory_budget_mb = 0").unwrap();
    assert_session_usable(&db);
}

#[test]
fn governed_aborts_are_observable_in_metrics() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.cancel_handle().cancel();
    db.execute("SELECT * FROM t").unwrap_err();
    let snapshot = db.metrics_snapshot();
    let cancelled = snapshot
        .counters
        .iter()
        .find(|(name, _)| name.as_str() == "query.cancelled")
        .map(|(_, v)| *v);
    assert_eq!(cancelled, Some(1), "counters: {:?}", snapshot.counters);
}

#[test]
fn set_statement_validation() {
    let db = Database::new();
    // Unknown knob: bind error, settings unchanged.
    let err = db.execute("SET not_a_setting = 1").unwrap_err();
    assert!(matches!(err, HyError::Bind(_)), "{err}");
    assert!(err.to_string().contains("unknown session setting"), "{err}");
    // Negative values rejected at bind time.
    let err = db.execute("SET statement_timeout_ms = -5").unwrap_err();
    assert!(matches!(err, HyError::Bind(_)), "{err}");
    // `SET x TO v` is accepted alongside `=`.
    db.execute("SET statement_timeout_ms TO 1000").unwrap();
    db.execute("SET statement_timeout_ms = 0").unwrap();
    assert_session_usable(&db);
}

#[test]
fn session_settings_are_independent_per_session() {
    let db = Database::new();
    let mut a = db.session();
    let mut b = db.session();
    a.execute("SET statement_timeout_ms = 77").unwrap();
    assert_eq!(a.settings().statement_timeout_ms, 77);
    assert_eq!(b.settings().statement_timeout_ms, 0, "b is untouched");
    b.execute("SET memory_budget_mb = 12").unwrap();
    assert_eq!(b.settings().memory_budget_mb, 12);
    assert_eq!(a.settings().memory_budget_mb, 0);
}
