//! Transactional behaviour: snapshot isolation for analytics (§3's
//! "fully transactional environment"), rollback, concurrent writers.

use std::sync::Arc;

use hylite::{Database, Value};

#[test]
fn analytics_query_sees_stable_snapshot() {
    // An analytical query over a table snapshot is unaffected by writes
    // that commit while it would be running: the snapshot is pinned.
    let db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (0.0, 0.0), (1.0, 1.0)")
        .unwrap();
    let table = db.catalog().get_table("pts").unwrap();
    let snapshot = table.read().committed_snapshot();
    // OLTP proceeds.
    db.execute("INSERT INTO pts VALUES (9.0, 9.0)").unwrap();
    db.execute("DELETE FROM pts WHERE x = 0.0").unwrap();
    // The pinned snapshot still sees the original two rows.
    assert_eq!(snapshot.live_rows(), 2);
    // A fresh query sees the new state.
    let r = db.execute("SELECT count(*) FROM pts").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
}

#[test]
fn open_transaction_invisible_to_other_sessions() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    db.execute("UPDATE t SET x = 100 WHERE x = 1").unwrap();
    db.execute("DELETE FROM t WHERE x = 2").unwrap();

    // The writing session sees its own changes (sum = 100 + 3).
    let own = db.execute("SELECT sum(x) FROM t").unwrap();
    assert_eq!(own.scalar().unwrap(), Value::Int(103));

    // Another session sees the pre-transaction state.
    let mut other = db.session();
    let theirs = other.execute("SELECT sum(x) FROM t").unwrap();
    assert_eq!(theirs.scalar().unwrap(), Value::Int(3));

    db.execute("COMMIT").unwrap();
    let after = other.execute("SELECT sum(x) FROM t").unwrap();
    assert_eq!(after.scalar().unwrap(), Value::Int(103));
}

#[test]
fn rollback_restores_all_touched_tables() {
    let db = Database::new();
    db.execute("CREATE TABLE a (x BIGINT)").unwrap();
    db.execute("CREATE TABLE b (x BIGINT)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("INSERT INTO b VALUES (10)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO a VALUES (2)").unwrap();
    db.execute("DELETE FROM b WHERE x = 10").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(
        db.execute("SELECT sum(x) FROM a")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        db.execute("SELECT sum(x) FROM b")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(10)
    );
}

#[test]
fn session_drop_rolls_back() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    {
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        // Dropped without COMMIT.
    }
    assert_eq!(
        db.execute("SELECT count(*) FROM t")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(0)
    );
}

#[test]
fn kmeans_during_open_transaction_uses_committed_data() {
    let db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (0.0), (1.0)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO pts VALUES (1000.0)").unwrap();
    // Another session's analytics ignore the uncommitted outlier.
    let mut other = db.session();
    let r = other
        .execute("SELECT size FROM KMEANS((SELECT x FROM pts), (SELECT 0.5 c), 5)")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
    // The writing session's analytics include it.
    let own = db
        .execute("SELECT size FROM KMEANS((SELECT x FROM pts), (SELECT 0.5 c), 5)")
        .unwrap();
    assert_eq!(own.scalar().unwrap(), Value::Int(3));
    db.execute("ROLLBACK").unwrap();
}

#[test]
fn concurrent_sessions_insert() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE log (worker BIGINT, seq BIGINT)")
        .unwrap();
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut session = db.session();
                for i in 0..50 {
                    session
                        .execute(&format!("INSERT INTO log VALUES ({w}, {i})"))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let r = db.execute("SELECT count(*), count(*) FROM log").unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::Int(200));
    let per_worker = db
        .execute("SELECT worker, count(*) FROM log GROUP BY worker ORDER BY worker")
        .unwrap();
    assert_eq!(per_worker.row_count(), 4);
    for i in 0..4 {
        assert_eq!(per_worker.value(i, 1).unwrap(), Value::Int(50));
    }
}

#[test]
fn reader_runs_while_writer_commits() {
    // A long chain of small transactions on one thread while another
    // continuously scans: counts must always be consistent multiples.
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut s = db.session();
            for i in 0..100 {
                s.execute("BEGIN").unwrap();
                s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                s.execute("COMMIT").unwrap();
            }
        })
    };
    let reader = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut s = db.session();
            for _ in 0..50 {
                let n = s
                    .execute("SELECT count(*) FROM t")
                    .unwrap()
                    .scalar()
                    .unwrap()
                    .as_int()
                    .unwrap();
                // Both rows of a transaction commit atomically.
                assert_eq!(n % 2, 0, "observed a torn transaction: {n}");
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert_eq!(
        db.execute("SELECT count(*) FROM t")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(200)
    );
}
