//! Online backup, WAL archiving, and point-in-time recovery, end to
//! end: a live server backed up over the wire while writers race the
//! cut, incremental chains driven through SQL `BACKUP TO`, archived-WAL
//! PITR to an exact target, and crash-points inside the backup and
//! archive paths ([`FaultVfs`]-driven) proving a half-written artifact
//! is never restorable and a torn archive span is never visible.
//!
//! The invariant under test: **a restored directory contains exactly
//! the acknowledged commits up to the requested point in time — a
//! consistent cut, never a hole — and starts a fresh timeline the old
//! fleet refuses to resume.**

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use hylite_client::{request_backup, HyliteClient};
use hylite_common::faultfs::{CrashSpec, FaultVfs, Vfs};
use hylite_common::wire::{self, Frame, PROTOCOL_VERSION};
use hylite_common::Value;
use hylite_core::{restore_backup, Database, DurabilityOptions};
use hylite_server::{Server, ServerConfig};
use hylite_storage::archive::{read_archived_frames, CP_ARCHIVE_ROTATE};
use hylite_storage::backup::CP_BACKUP_SEG_COPY;

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

fn open(fault: &FaultVfs) -> Database {
    open_at(fault, &data_dir(), DurabilityOptions::default())
}

fn open_at(fault: &FaultVfs, dir: &Path, options: DurabilityOptions) -> Database {
    Database::open_with(Arc::new(fault.clone()) as Arc<dyn Vfs>, dir, options)
        .expect("open durable database")
}

fn archived_options() -> DurabilityOptions {
    DurabilityOptions {
        archive_dir: Some(PathBuf::from("archive")),
        ..DurabilityOptions::default()
    }
}

/// Seed table `t` with x = 1, 2, 3 (three acknowledged autocommits).
fn seed(fault: &FaultVfs) -> Database {
    let db = open(fault);
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 1..=3 {
        db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
    }
    db
}

/// All values of `t.x` in ascending order.
fn values(db: &Database) -> Vec<i64> {
    let r = db.execute("SELECT x FROM t ORDER BY x").expect("dump t");
    (0..r.row_count())
        .map(|i| match r.value(i, 0).unwrap() {
            Value::Int(v) => v,
            other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

fn restore(
    fault: &FaultVfs,
    backup: &str,
    archive: Option<&str>,
    dest: &str,
    to_lsn: Option<u64>,
) -> hylite_core::RestoreSummary {
    let vfs = Arc::new(fault.clone()) as Arc<dyn Vfs>;
    restore_backup(
        &vfs,
        Path::new(backup),
        archive.map(Path::new),
        Path::new(dest),
        to_lsn,
    )
    .expect("restore backup")
}

// ---------------------------------------------------------------------
// The wire path: a live server is backed up while writers race the cut.
// ---------------------------------------------------------------------

/// `hylite-cli --backup` semantics over real TCP: the backup pins a
/// consistent cut while concurrent sessions keep committing, the
/// restored directory holds every pre-backup ack plus a subset of the
/// racing writes (no duplicates, no phantoms), and `hylite.backups`
/// reports the run.
#[test]
fn online_backup_over_the_wire_is_a_consistent_cut_under_concurrent_writes() {
    let fault = FaultVfs::new();
    let db = Arc::new(seed(&fault));
    db.checkpoint().unwrap(); // sealed segments for the copy phase
    let handle = Server::start(ServerConfig::ephemeral(), Arc::clone(&db)).unwrap();
    let addr = handle.local_addr().to_string();

    // Two sessions race the backup with disjoint value ranges.
    let writers: Vec<_> = [100i64, 200]
        .into_iter()
        .map(|base| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = HyliteClient::connect(&addr).expect("writer connect");
                for v in base..base + 20 {
                    client
                        .query(&format!("INSERT INTO t VALUES ({v})"))
                        .expect("racing insert");
                }
                client.close().expect("writer close");
            })
        })
        .collect();

    let report = request_backup(&addr, "backup", None, true).expect("wire backup");
    assert!(report.lsn >= 4, "backup cut before the seed: {report:?}");
    assert!(report.segments >= 1, "no segments copied: {report:?}");
    assert!(report.bytes > 0, "empty backup: {report:?}");
    for w in writers {
        w.join().unwrap();
    }

    // The system view reports the backup the server just took.
    let mut client = HyliteClient::connect(&addr).unwrap();
    let r = client
        .query("SELECT dest, backup_lsn, verified FROM hylite.backups")
        .unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::from("backup"));
    assert_eq!(r.value(0, 1).unwrap(), Value::Int(report.lsn as i64));
    assert_eq!(r.value(0, 2).unwrap(), Value::Bool(true));
    client.close().unwrap();
    handle.shutdown();

    let summary = restore(&fault, "backup", None, "restored", None);
    assert_eq!(summary.restored_lsn, report.lsn);
    let restored = open_at(&fault, Path::new("restored"), DurabilityOptions::default());
    let rows = values(&restored);

    // Consistent cut: every seed row present, every extra row comes from
    // a racing writer, and nothing appears twice.
    assert_eq!(&rows[..3], &[1, 2, 3], "seed rows missing: {rows:?}");
    let mut seen = std::collections::HashSet::new();
    for &v in &rows[3..] {
        assert!(
            (100..120).contains(&v) || (200..220).contains(&v),
            "phantom row {v} in the restored backup"
        );
        assert!(seen.insert(v), "row {v} restored twice");
    }
    // And the cut respects each session's commit order: a present value
    // implies every earlier value of the same session is present.
    for base in [100i64, 200] {
        let session: Vec<i64> = rows
            .iter()
            .copied()
            .filter(|v| (base..base + 20).contains(v))
            .collect();
        let want: Vec<i64> = (base..base + session.len() as i64).collect();
        assert_eq!(session, want, "hole in session {base}'s restored prefix");
    }
}

/// The restored node starts a fresh timeline: its epoch differs from
/// the source, and the old primary answers its handshake with a
/// snapshot re-bootstrap offer — never a WAL resume into the old
/// history.
#[test]
fn restored_node_starts_a_fresh_timeline_the_old_fleet_will_not_resume() {
    let fault = FaultVfs::new();
    let db = Arc::new(seed(&fault));
    let old_epoch = db.durability().unwrap().epoch();
    db.durability()
        .unwrap()
        .backup(Path::new("backup"), None, true)
        .unwrap();

    restore(&fault, "backup", None, "restored", None);
    let restored = open_at(&fault, Path::new("restored"), DurabilityOptions::default());
    let restored_d = restored.durability().unwrap();
    assert_ne!(
        restored_d.epoch(),
        old_epoch,
        "a restored node must mint a fresh epoch"
    );

    // Handshake the old fleet's primary as if the restored node tried to
    // rejoin: the epoch mismatch must fence it into a snapshot offer.
    let handle = Server::start(ServerConfig::ephemeral(), Arc::clone(&db)).unwrap();
    let mut sock = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wire::write_frame(
        &mut sock,
        &Frame::Replicate {
            version: PROTOCOL_VERSION,
            epoch: restored_d.epoch(),
            last_lsn: restored_d.next_lsn().saturating_sub(1),
        },
    )
    .unwrap();
    let offer = wire::read_frame(&mut sock).unwrap();
    assert!(
        matches!(offer, Frame::SnapshotOffer { .. }),
        "old primary must refuse to resume a restored timeline, got {offer:?}"
    );
    drop(sock);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Incremental chains through SQL.
// ---------------------------------------------------------------------

/// `BACKUP TO ... FROM ...` copies only segments the base chain does not
/// already hold, and a restore from the chain's tip replays the whole
/// history.
#[test]
fn sql_incremental_backup_copies_only_new_segments() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    db.checkpoint().unwrap();
    db.execute("BACKUP TO 'full' VERIFY").unwrap();
    let full_files = fault.list_dir(Path::new("full/segments")).unwrap().len();
    assert!(full_files >= 1, "full backup copied no segments");

    // New sealed data → the incremental copies exactly the new segments.
    db.execute("INSERT INTO t VALUES (10), (11)").unwrap();
    db.checkpoint().unwrap();
    db.execute("BACKUP TO 'inc' FROM 'full'").unwrap();
    let inc_files = fault.list_dir(Path::new("inc/segments")).unwrap().len();
    assert!(
        inc_files < full_files + 1,
        "incremental re-copied the base's segments: {inc_files} vs {full_files} in the base"
    );

    // Nothing new sealed → a further link copies nothing at all.
    db.execute("BACKUP TO 'inc2' FROM 'inc'").unwrap();
    assert_eq!(
        fault.list_dir(Path::new("inc2/segments")).unwrap().len(),
        0,
        "an up-to-date incremental must copy zero segments"
    );

    // The chain's tip restores the full history.
    restore(&fault, "inc2", None, "restored", None);
    let restored = open_at(&fault, Path::new("restored"), DurabilityOptions::default());
    assert_eq!(values(&restored), vec![1, 2, 3, 10, 11]);
}

// ---------------------------------------------------------------------
// Point-in-time recovery from backup + archived WAL.
// ---------------------------------------------------------------------

/// With continuous archiving on, a restore can stop at an LSN that the
/// live WAL has long since truncated: post-target traffic is cut away
/// exactly, and overshooting the archived history is a typed error.
#[test]
fn pitr_replays_archived_wal_to_the_exact_target() {
    let fault = FaultVfs::new();
    let db = open_at(&fault, &data_dir(), archived_options());
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 1..=3 {
        db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
    }
    db.checkpoint().unwrap();
    db.execute("BACKUP TO 'full'").unwrap();

    // Write past the backup, pin the target, then checkpoint so the
    // pinned frames survive only in the archive.
    db.execute("INSERT INTO t VALUES (10)").unwrap();
    db.execute("INSERT INTO t VALUES (11)").unwrap();
    let target = db.durability().unwrap().next_lsn() - 1;
    db.checkpoint().unwrap();
    db.execute("INSERT INTO t VALUES (99)").unwrap();
    let highest = db.durability().unwrap().next_lsn() - 1;
    db.checkpoint().unwrap();

    let summary = restore(&fault, "full", Some("archive"), "restored", Some(target));
    assert_eq!(summary.restored_lsn, target);
    let restored = open_at(&fault, Path::new("restored"), DurabilityOptions::default());
    assert_eq!(
        values(&restored),
        vec![1, 2, 3, 10, 11],
        "post-target traffic must be cut away"
    );

    // A target past the archived history is refused, not silently
    // rounded down.
    let vfs = Arc::new(fault.clone()) as Arc<dyn Vfs>;
    let err = restore_backup(
        &vfs,
        Path::new("full"),
        Some(Path::new("archive")),
        Path::new("restored2"),
        Some(highest + 7),
    )
    .unwrap_err();
    assert!(
        err.message().contains("contiguously"),
        "overshoot must name the reachable LSN: {err}"
    );
}

// ---------------------------------------------------------------------
// Crash points inside the new paths.
// ---------------------------------------------------------------------

/// A crash mid-copy leaves no `backup.hylite`, so the half-written
/// directory can never be restored — and the live database is
/// untouched.
#[test]
fn crash_during_segment_copy_leaves_no_restorable_artifact() {
    let fault = FaultVfs::new();
    let db = seed(&fault);
    db.checkpoint().unwrap();

    fault.arm_crash(CrashSpec::first(CP_BACKUP_SEG_COPY));
    let err = db
        .durability()
        .unwrap()
        .backup(Path::new("backup"), None, false);
    assert!(err.is_err(), "backup must fail at the crash point");
    assert!(fault.crashed());
    drop(db);

    fault.reboot();
    assert!(
        !fault.exists(Path::new("backup/backup.hylite")),
        "an interrupted backup must not look completed"
    );
    let vfs = Arc::new(fault.clone()) as Arc<dyn Vfs>;
    let err =
        restore_backup(&vfs, Path::new("backup"), None, Path::new("restored"), None).unwrap_err();
    assert!(
        err.message().contains("not a completed backup"),
        "restore must refuse the torn artifact: {err}"
    );

    // The live database recovered untouched and can still be backed up.
    let db = open(&fault);
    assert_eq!(values(&db), vec![1, 2, 3]);
    db.execute("BACKUP TO 'backup2' VERIFY").unwrap();
    restore(&fault, "backup2", None, "restored", None);
    let restored = open_at(&fault, Path::new("restored"), DurabilityOptions::default());
    assert_eq!(values(&restored), vec![1, 2, 3]);
}

/// A crash mid-rotation never publishes a torn span: after reboot the
/// archive reads cleanly, and the next checkpoint re-archives the frames
/// the crash interrupted (the WAL was not truncated).
#[test]
fn crash_during_archive_rotation_hides_the_torn_span() {
    let fault = FaultVfs::new();
    let db = open_at(&fault, &data_dir(), archived_options());
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    fault.arm_crash(CrashSpec::first(CP_ARCHIVE_ROTATE));
    let err = db.checkpoint();
    assert!(err.is_err(), "checkpoint must fail at the crash point");
    assert!(fault.crashed());
    drop(db);

    fault.reboot();
    let archive = Path::new("archive");
    let frames = read_archived_frames(&fault, archive).expect("no torn span may be visible");
    assert!(
        frames.is_empty(),
        "the interrupted rotation must not have published: {:?}",
        frames.keys()
    );

    // Recovery replays the untruncated WAL; the next checkpoint archives
    // everything the crash interrupted plus the new commit.
    let db = open_at(&fault, &data_dir(), archived_options());
    assert_eq!(values(&db), vec![1]);
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    let last = db.durability().unwrap().next_lsn() - 1;
    db.checkpoint().unwrap();
    let frames = read_archived_frames(&fault, archive).unwrap();
    let lsns: Vec<u64> = frames.keys().copied().collect();
    assert_eq!(
        lsns,
        (1..=last).collect::<Vec<u64>>(),
        "the archive must cover the whole history contiguously"
    );
}
