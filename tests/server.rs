//! The network server, end to end over real TCP: handshake, streamed
//! results identical to the embedded API, snapshot isolation across
//! connections, out-of-band cancellation, admission control, governor
//! defaults, stable wire error codes, and graceful shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite::{Database, ErrorCode, HyError, Server, ServerConfig, ServerHandle, Value};
use hylite_client::HyliteClient;

const CHUNK_ROWS: usize = hylite::common::CHUNK_ROWS;

fn start(db: Database, config: ServerConfig) -> ServerHandle {
    Server::start(config, Arc::new(db)).expect("server start")
}

fn start_default(db: Database) -> ServerHandle {
    start(db, ServerConfig::ephemeral())
}

/// An ITERATE that counts to five million — far longer than any test
/// waits, so only a cancel/timeout/drain can end it.
fn long_iterate_sql() -> &'static str {
    "SELECT * FROM ITERATE((SELECT 0 \"x\"), (SELECT x + 1 FROM iterate), \
     (SELECT x FROM iterate WHERE x >= 5000000))"
}

fn setup_edges(db: &Database, n: usize) {
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
        .unwrap();
    let mut values = Vec::with_capacity(n * 2);
    for i in 0..n as i64 {
        values.push(format!("({i},{})", (i + 1) % n as i64));
        values.push(format!("({i},{})", (i * 7 + 3) % n as i64));
    }
    db.execute(&format!("INSERT INTO edges VALUES {}", values.join(",")))
        .unwrap();
}

#[test]
fn handshake_and_simple_query() {
    let handle = start_default(Database::new());
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();
    assert!(client.session_id() > 0);
    let r = client.query("SELECT 1 + 1").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
    client.close().unwrap();
    handle.shutdown();
}

/// Results crossing the wire in multiple streamed chunks must equal the
/// embedded API's result byte for byte — including NULLs, floats, and
/// strings, whose encodings exercise every codec path.
#[test]
fn streamed_results_match_embedded() {
    let db = Database::new();
    db.execute("CREATE TABLE wide (id BIGINT, f DOUBLE, s VARCHAR, flag BOOLEAN)")
        .unwrap();
    let n = CHUNK_ROWS * 2 + 500; // forces at least three DataChunk frames
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        if i % 7 == 0 {
            values.push(format!("({i}, NULL, NULL, NULL)"));
        } else {
            values.push(format!("({i}, {}.5, 'row-{i}', {})", i, i % 2 == 0));
        }
    }
    for batch in values.chunks(4096) {
        db.execute(&format!("INSERT INTO wide VALUES {}", batch.join(",")))
            .unwrap();
    }
    let sql = "SELECT * FROM wide w WHERE w.id % 3 = 0";
    let embedded = db.execute(sql).unwrap().to_chunk().unwrap();

    let handle = start_default(db);
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();

    // Count the chunks as they stream to prove the result really crossed
    // the wire incrementally.
    let mut stream = client.query_streamed(sql).unwrap();
    let mut chunks = Vec::new();
    while let Some(chunk) = stream.next_chunk().unwrap() {
        assert!(chunk.len() <= CHUNK_ROWS, "server must re-slice to chunks");
        chunks.push(chunk);
    }
    let total: u64 = stream.summary().unwrap().total_rows;
    let schema = stream.schema().clone();
    drop(stream);
    assert!(chunks.len() > 1, "expected a multi-chunk stream");
    assert_eq!(total as usize, embedded.len());

    let remote = hylite::Chunk::concat(&schema.types(), &chunks).unwrap();
    assert_eq!(remote, embedded, "wire result differs from embedded result");
    client.close().unwrap();
    handle.shutdown();
}

/// Each connection is its own engine session: uncommitted writes are
/// visible only to their own connection, commits become visible to
/// others, and dropping a connection mid-transaction rolls back.
#[test]
fn transaction_isolation_across_connections() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let handle = start_default(db);

    let count = |c: &mut HyliteClient| c.query("SELECT count(*) FROM t").unwrap().scalar().unwrap();
    let mut a = HyliteClient::connect(handle.local_addr()).unwrap();
    let mut b = HyliteClient::connect(handle.local_addr()).unwrap();
    a.query("BEGIN").unwrap();
    a.query("INSERT INTO t VALUES (3)").unwrap();
    assert_eq!(
        count(&mut a),
        Value::Int(3),
        "own uncommitted write visible"
    );
    assert_eq!(
        count(&mut b),
        Value::Int(2),
        "uncommitted write must be invisible to other connections"
    );
    a.query("COMMIT").unwrap();
    assert_eq!(count(&mut b), Value::Int(3), "commit becomes visible");

    // A dropped connection rolls its open transaction back.
    b.query("BEGIN").unwrap();
    b.query("INSERT INTO t VALUES (4)").unwrap();
    assert_eq!(count(&mut b), Value::Int(4));
    b.close().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if count(&mut a) == Value::Int(3) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect must roll back the open transaction"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    a.close().unwrap();
    handle.shutdown();
}

/// A second connection cancels the ITERATE running on the first; the
/// statement aborts promptly with `Cancelled` (retryable, code 3000) and
/// the session stays usable.
#[test]
fn over_the_wire_cancel_stops_running_iterate() {
    let handle = start_default(Database::new());
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();
    let cancel = client.cancel_handle();

    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        cancel.cancel().expect("cancel delivery")
    });
    let started = Instant::now();
    let err = client.query(long_iterate_sql()).unwrap_err();
    let elapsed = started.elapsed();
    assert!(watchdog.join().unwrap(), "server must find the session");
    assert!(matches!(err, HyError::Cancelled(_)), "{err}");
    assert_eq!(client.last_error_code(), Some(ErrorCode::Cancelled));
    assert!(ErrorCode::Cancelled.is_retryable());
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation took {elapsed:?}"
    );

    // Same connection keeps working after the abort.
    let r = client.query("SELECT 40 + 2").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(42));
    client.close().unwrap();
    handle.shutdown();
}

/// Cancelling with a wrong secret must not kill anyone's statement.
#[test]
fn cancel_requires_the_right_secret() {
    let handle = start_default(Database::new());
    let client = HyliteClient::connect(handle.local_addr()).unwrap();
    let good = client.cancel_handle();
    // A handle for a session that does not exist.
    let other = HyliteClient::connect(handle.local_addr()).unwrap();
    let stale = other.cancel_handle();
    other.close().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the server unregister it
    assert!(!stale.cancel().unwrap(), "dead session: not delivered");
    assert!(good.cancel().unwrap(), "live session: delivered");
    handle.shutdown();
}

/// Startup frames beyond `max_connections` are rejected with the typed
/// `Overloaded` error; closing a connection frees the slot.
#[test]
fn connection_cap_rejects_and_recovers() {
    let db = Database::new();
    let handle = start(
        db,
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::ephemeral()
        },
    );
    let a = HyliteClient::connect(handle.local_addr()).unwrap();
    let b = HyliteClient::connect(handle.local_addr()).unwrap();
    let err = HyliteClient::connect(handle.local_addr()).unwrap_err();
    assert!(matches!(err, HyError::Unavailable(_)), "{err}");
    assert!(err.message().contains("connection cap"), "{err}");

    a.close().unwrap();
    // The slot frees asynchronously as the connection thread unwinds.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut again = None;
    while Instant::now() < deadline {
        match HyliteClient::connect(handle.local_addr()) {
            Ok(c) => {
                again = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut again = again.expect("slot must free after close");
    assert_eq!(
        again.query("SELECT 1").unwrap().scalar().unwrap(),
        Value::Int(1)
    );
    again.close().unwrap();
    b.close().unwrap();
    let metrics = handle.metrics().snapshot();
    assert!(
        metrics.counter("server.connections_rejected") >= 1,
        "{:?}",
        metrics.counters
    );
    handle.shutdown();
}

/// With one execution slot and no queue, a concurrent statement is shed
/// immediately with `Overloaded`; with a queue it waits its turn.
#[test]
fn admission_backpressure_and_shedding() {
    let handle = start(
        Database::new(),
        ServerConfig {
            max_active_statements: 1,
            statement_queue_depth: 0,
            ..ServerConfig::ephemeral()
        },
    );
    let mut a = HyliteClient::connect(handle.local_addr()).unwrap();
    let cancel = a.cancel_handle();
    let runner = std::thread::spawn(move || {
        let err = a.query(long_iterate_sql()).unwrap_err();
        assert!(matches!(err, HyError::Cancelled(_)), "{err}");
        a
    });

    // Wait until the statement actually holds the execution slot.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let active = *handle
            .metrics()
            .snapshot()
            .gauges
            .get("server.active_statements")
            .unwrap_or(&0);
        if active >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "statement never became active");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut b = HyliteClient::connect(handle.local_addr()).unwrap();
    let err = b.query("SELECT 1").unwrap_err();
    assert!(matches!(err, HyError::Unavailable(_)), "{err}");
    assert_eq!(b.last_error_code(), Some(ErrorCode::Overloaded));
    assert!(ErrorCode::Overloaded.is_retryable());

    cancel.cancel().unwrap();
    let mut a = runner.join().unwrap();
    // The cancelled statement's slot frees on its own server thread;
    // wait for the gauge before asserting recovery.
    let deadline = Instant::now() + Duration::from_secs(5);
    while *handle
        .metrics()
        .snapshot()
        .gauges
        .get("server.active_statements")
        .unwrap_or(&0)
        > 0
    {
        assert!(Instant::now() < deadline, "slot never freed after cancel");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Slot free again: the same connection now gets through.
    assert_eq!(
        b.query("SELECT 2").unwrap().scalar().unwrap(),
        Value::Int(2)
    );
    assert_eq!(
        a.query("SELECT 3").unwrap().scalar().unwrap(),
        Value::Int(3)
    );
    let metrics = handle.metrics().snapshot();
    assert!(metrics.counter("server.stmt_rejected_queue_full") >= 1);
    a.close().unwrap();
    b.close().unwrap();
    handle.shutdown();
}

/// Server-level governor defaults apply to fresh sessions; a client `SET`
/// overrides them.
#[test]
fn server_governor_defaults_and_set_override() {
    let db = Database::new();
    setup_edges(&db, 64);
    let handle = start(
        db,
        ServerConfig {
            statement_timeout_ms: 150,
            ..ServerConfig::ephemeral()
        },
    );
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();
    let long_pagerank =
        "SELECT count(*) FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0, 1000000)";
    let err = client.query(long_pagerank).unwrap_err();
    assert!(matches!(err, HyError::Timeout(_)), "{err}");
    assert_eq!(client.last_error_code(), Some(ErrorCode::Timeout));
    assert!(ErrorCode::Timeout.is_retryable());

    // Override the default: the same statement with few iterations now
    // has unlimited time and succeeds.
    client.query("SET statement_timeout_ms = 0").unwrap();
    let r = client
        .query("SELECT count(*) FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0, 3)")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(64));
    client.close().unwrap();
    handle.shutdown();
}

/// Every error family keeps its stable numeric code across the wire.
#[test]
fn wire_error_codes_are_stable_and_typed() {
    let handle = start_default(Database::new());
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();

    let err = client.query("SELEC 1").unwrap_err();
    assert!(matches!(err, HyError::Parse(_)), "{err}");
    assert_eq!(client.last_error_code(), Some(ErrorCode::Parse));
    assert_eq!(ErrorCode::Parse.as_u16(), 1000);
    assert!(!ErrorCode::Parse.is_retryable(), "semantic, not transient");

    let err = client.query("SELECT * FROM no_such_table").unwrap_err();
    let code = client.last_error_code().unwrap();
    assert!(
        matches!(code, ErrorCode::Bind | ErrorCode::Catalog),
        "unknown table should be a semantic code, got {code:?} ({err})"
    );
    assert!(!code.is_retryable());

    // The session survives every semantic error.
    assert_eq!(
        client.query("SELECT 7").unwrap().scalar().unwrap(),
        Value::Int(7)
    );
    client.close().unwrap();
    handle.shutdown();
}

/// Graceful shutdown lets an in-flight statement finish (drain), then the
/// server refuses new connections and stops.
#[test]
fn graceful_shutdown_drains_in_flight_statement() {
    let db = Database::new();
    setup_edges(&db, 64);
    let handle = start(
        db,
        ServerConfig {
            drain_timeout: Duration::from_secs(30),
            ..ServerConfig::ephemeral()
        },
    );
    let addr = handle.local_addr();
    let metrics = Arc::clone(handle.metrics());
    let mut client = HyliteClient::connect(addr).unwrap();
    // Enough iterations that the statement is still running when the poll
    // below observes it, even in release builds.
    let runner = std::thread::spawn(move || {
        client.query(
            "SELECT count(*) FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0, 100000)",
        )
    });
    // Wait for the statement to be on the engine before draining.
    let deadline = Instant::now() + Duration::from_secs(5);
    while *metrics
        .snapshot()
        .gauges
        .get("server.active_statements")
        .unwrap_or(&0)
        < 1
    {
        assert!(Instant::now() < deadline, "statement never became active");
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.shutdown(); // blocks until drained

    let result = runner.join().unwrap().expect("drained statement completes");
    assert_eq!(result.scalar().unwrap(), Value::Int(64));
    assert_eq!(
        metrics
            .snapshot()
            .counter("server.shutdown_cancelled_statements"),
        0,
        "nothing should have been cancelled within the drain window"
    );
    // The listener is gone: new connections fail outright.
    assert!(HyliteClient::connect(addr).is_err());
}

/// When the drain deadline passes, stragglers are cancelled instead of
/// holding the shutdown hostage.
#[test]
fn shutdown_cancels_stragglers_after_deadline() {
    let handle = start(
        Database::new(),
        ServerConfig {
            drain_timeout: Duration::from_millis(100),
            ..ServerConfig::ephemeral()
        },
    );
    let metrics = Arc::clone(handle.metrics());
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();
    let runner = std::thread::spawn(move || client.query(long_iterate_sql()).unwrap_err());
    let deadline = Instant::now() + Duration::from_secs(5);
    while *metrics
        .snapshot()
        .gauges
        .get("server.active_statements")
        .unwrap_or(&0)
        < 1
    {
        assert!(Instant::now() < deadline, "statement never became active");
        std::thread::sleep(Duration::from_millis(2));
    }
    let started = Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must not hang on a runaway statement"
    );
    let err = runner.join().unwrap();
    assert!(matches!(err, HyError::Cancelled(_)), "{err}");
    assert!(
        metrics
            .snapshot()
            .counter("server.shutdown_cancelled_statements")
            >= 1
    );
}

/// New Startup frames during a drain are refused with `ShuttingDown`.
#[test]
fn draining_server_refuses_new_sessions() {
    let handle = start(
        Database::new(),
        ServerConfig {
            drain_timeout: Duration::from_millis(200),
            ..ServerConfig::ephemeral()
        },
    );
    let addr = handle.local_addr();
    let mut client = HyliteClient::connect(addr).unwrap();
    let runner = std::thread::spawn(move || client.query(long_iterate_sql()).unwrap_err());
    let shutdown_thread = std::thread::spawn(move || handle.shutdown());
    // During the drain window, a new connection is either refused at the
    // socket (listener closed) or with the typed ShuttingDown error.
    std::thread::sleep(Duration::from_millis(50));
    match HyliteClient::connect(addr) {
        Err(HyError::Unavailable(_)) | Err(HyError::Protocol(_)) => {}
        Err(other) => panic!("unexpected rejection: {other}"),
        Ok(_) => panic!("draining server accepted a new session"),
    }
    shutdown_thread.join().unwrap();
    let err = runner.join().unwrap();
    assert!(matches!(err, HyError::Cancelled(_)), "{err}");
}

/// The ISSUE's scale floor: 32 concurrent wire connections with a mixed
/// SQL + k-Means/PageRank stream, every result correct, zero errors.
#[test]
fn thirty_two_concurrent_clients_mixed_workload() {
    let report = hylite_bench::concurrent::run(hylite_bench::concurrent::ConcurrentConfig {
        clients: 32,
        statements_per_client: 5,
        tuples: 2_000,
        dims: 2,
        clusters: 2,
        edges: 512,
        max_active: 8,
    })
    .expect("storm");
    assert_eq!(report.completed, 32 * 5, "errors: {}", report.errors);
    assert_eq!(report.errors, 0);
}
