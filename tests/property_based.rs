//! Randomized property tests over the full SQL pipeline and the
//! analytics operators, checking invariants against naive reference
//! computations.
//!
//! Inputs are drawn from a seeded [`StdRng`], so every run replays the
//! same cases deterministically (the offline stand-in for proptest).

use hylite::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run `body` over `cases` deterministic random cases.
fn for_cases(seed: u64, cases: usize, mut body: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// A random `(a BIGINT, b DOUBLE)` row set of size 0..120.
fn small_rows(rng: &mut StdRng) -> Vec<(i64, f64)> {
    let n = rng.gen_range(0usize..120);
    (0..n)
        .map(|_| (rng.gen_range(-50i64..50), rng.gen_range(-100.0f64..100.0)))
        .collect()
}

/// Build a database with table `t(a BIGINT, b DOUBLE)` holding `rows`.
fn db_with(rows: &[(i64, f64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)").unwrap();
    if !rows.is_empty() {
        let values: Vec<String> = rows.iter().map(|(a, b)| format!("({a}, {b})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
            .unwrap();
    }
    db
}

#[test]
fn filter_matches_reference() {
    for_cases(0xF117, 48, |rng| {
        let rows = small_rows(rng);
        let threshold = rng.gen_range(-50i64..50);
        let db = db_with(&rows);
        let r = db
            .execute(&format!("SELECT count(*) FROM t WHERE a > {threshold}"))
            .unwrap();
        let expect = rows.iter().filter(|(a, _)| *a > threshold).count() as i64;
        assert_eq!(r.scalar().unwrap(), Value::Int(expect));
    });
}

#[test]
fn aggregates_match_reference() {
    for_cases(0xA66, 48, |rng| {
        let rows = small_rows(rng);
        let db = db_with(&rows);
        let r = db
            .execute("SELECT count(*), sum(a), avg(b) FROM t")
            .unwrap();
        let row = &r.to_rows()[0];
        assert_eq!(row.values()[0].clone(), Value::Int(rows.len() as i64));
        if rows.is_empty() {
            assert!(row.values()[1].is_null());
            assert!(row.values()[2].is_null());
        } else {
            let sum: i64 = rows.iter().map(|(a, _)| a).sum();
            assert_eq!(row.values()[1].clone(), Value::Int(sum));
            let avg: f64 = rows.iter().map(|(_, b)| b).sum::<f64>() / rows.len() as f64;
            let got = row.float(2).unwrap();
            assert!((got - avg).abs() < 1e-6 * avg.abs().max(1.0));
        }
    });
}

#[test]
fn group_by_partitions_input() {
    for_cases(0x6B, 48, |rng| {
        let rows = small_rows(rng);
        let db = db_with(&rows);
        let r = db
            .execute("SELECT a % 5, count(*) FROM t GROUP BY a % 5")
            .unwrap();
        let total: i64 = r.to_rows().iter().map(|row| row.int(1).unwrap()).sum();
        assert_eq!(total, rows.len() as i64, "group sizes sum to input size");
    });
}

#[test]
fn order_by_sorts() {
    for_cases(0x50F7, 48, |rng| {
        let rows = small_rows(rng);
        let db = db_with(&rows);
        let r = db.execute("SELECT a FROM t ORDER BY a").unwrap();
        let got: Vec<i64> = r.to_rows().iter().map(|row| row.int(0).unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    });
}

#[test]
fn limit_offset_window() {
    for_cases(0x11517, 48, |rng| {
        let rows = small_rows(rng);
        let limit = rng.gen_range(0usize..20);
        let offset = rng.gen_range(0usize..20);
        let db = db_with(&rows);
        let r = db
            .execute(&format!(
                "SELECT a FROM t ORDER BY a LIMIT {limit} OFFSET {offset}"
            ))
            .unwrap();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        let expect: Vec<i64> = expect.into_iter().skip(offset).take(limit).collect();
        let got: Vec<i64> = r.to_rows().iter().map(|row| row.int(0).unwrap()).collect();
        assert_eq!(got, expect);
    });
}

#[test]
fn distinct_is_set_semantics() {
    for_cases(0xD157, 48, |rng| {
        let rows = small_rows(rng);
        let db = db_with(&rows);
        let r = db.execute("SELECT DISTINCT a FROM t").unwrap();
        let got: std::collections::BTreeSet<i64> =
            r.to_rows().iter().map(|row| row.int(0).unwrap()).collect();
        let expect: std::collections::BTreeSet<i64> = rows.iter().map(|(a, _)| *a).collect();
        assert_eq!(got.len(), r.row_count(), "no duplicates");
        assert_eq!(got, expect);
    });
}

#[test]
fn join_matches_reference() {
    for_cases(0x101, 48, |rng| {
        let left: Vec<i64> = (0..rng.gen_range(0usize..40))
            .map(|_| rng.gen_range(-10i64..10))
            .collect();
        let right: Vec<i64> = (0..rng.gen_range(0usize..40))
            .map(|_| rng.gen_range(-10i64..10))
            .collect();
        let db = Database::new();
        db.execute("CREATE TABLE l (k BIGINT)").unwrap();
        db.execute("CREATE TABLE r (k BIGINT)").unwrap();
        if !left.is_empty() {
            let v: Vec<String> = left.iter().map(|k| format!("({k})")).collect();
            db.execute(&format!("INSERT INTO l VALUES {}", v.join(",")))
                .unwrap();
        }
        if !right.is_empty() {
            let v: Vec<String> = right.iter().map(|k| format!("({k})")).collect();
            db.execute(&format!("INSERT INTO r VALUES {}", v.join(",")))
                .unwrap();
        }
        let res = db
            .execute("SELECT count(*) FROM l JOIN r ON l.k = r.k")
            .unwrap();
        let expect: i64 = left
            .iter()
            .map(|a| right.iter().filter(|b| *b == a).count() as i64)
            .sum();
        assert_eq!(res.scalar().unwrap(), Value::Int(expect));
    });
}

#[test]
fn union_all_concatenates() {
    for_cases(0x0A11, 48, |rng| {
        let rows = small_rows(rng);
        let db = db_with(&rows);
        let r = db
            .execute("SELECT a FROM t UNION ALL SELECT a FROM t")
            .unwrap();
        assert_eq!(r.row_count(), rows.len() * 2);
    });
}

#[test]
fn iterate_equals_manual_loop() {
    for_cases(0x17E7, 48, |rng| {
        let start = rng.gen_range(-20i64..20);
        let step = rng.gen_range(1i64..7);
        let bound = rng.gen_range(0i64..100);
        let db = Database::new();
        let r = db
            .execute(&format!(
                "SELECT * FROM ITERATE ((SELECT {start} AS x), \
                 (SELECT x + {step} FROM iterate), \
                 (SELECT x FROM iterate WHERE x >= {bound}))"
            ))
            .unwrap();
        let mut x = start;
        while x < bound {
            x += step;
        }
        assert_eq!(r.scalar().unwrap(), Value::Int(x));
    });
}

#[test]
fn kmeans_invariants() {
    for_cases(0x63A5, 24, |rng| {
        let n = rng.gen_range(4usize..80);
        let xs: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(-100.0f64..100.0),
                    rng.gen_range(-100.0f64..100.0),
                )
            })
            .collect();
        let k = rng.gen_range(1usize..4);
        let db = Database::new();
        db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
        let v: Vec<String> = xs.iter().map(|(x, y)| format!("({x}, {y})")).collect();
        db.execute(&format!("INSERT INTO p VALUES {}", v.join(",")))
            .unwrap();
        let r = db
            .execute(&format!(
                "SELECT * FROM KMEANS((SELECT x, y FROM p), \
                 (SELECT x, y FROM p LIMIT {k}), 20)"
            ))
            .unwrap();
        // k centers; sizes sum to n.
        assert_eq!(r.row_count(), k);
        let sizes: i64 = (0..k)
            .map(|i| r.value(i, 3).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(sizes, xs.len() as i64);
        // Assignment invariant: every point's nearest center (L2) is the
        // one KMEANS_ASSIGN reports.
        let centers: Vec<(f64, f64)> = (0..k)
            .map(|i| {
                (
                    r.value(i, 1).unwrap().as_float().unwrap(),
                    r.value(i, 2).unwrap().as_float().unwrap(),
                )
            })
            .collect();
        let centers_sql: Vec<String> = centers
            .iter()
            .map(|(x, y)| format!("SELECT {x} AS x, {y} AS y"))
            .collect();
        let assign = db
            .execute(&format!(
                "SELECT * FROM KMEANS_ASSIGN((SELECT x, y FROM p), ({}))",
                centers_sql.join(" UNION ALL ")
            ))
            .unwrap();
        for row in assign.to_rows() {
            let (px, py) = (row.float(0).unwrap(), row.float(1).unwrap());
            let got = row.int(2).unwrap() as usize;
            let d2 = |(cx, cy): (f64, f64)| (px - cx).powi(2) + (py - cy).powi(2);
            let best = centers.iter().map(|&c| d2(c)).fold(f64::INFINITY, f64::min);
            assert!(
                d2(centers[got]) <= best + 1e-9,
                "({px},{py}) assigned to non-nearest center"
            );
        }
    });
}

#[test]
fn pagerank_sums_to_one() {
    for_cases(0x9A6E, 24, |rng| {
        let m = rng.gen_range(1usize..120);
        let edges: Vec<(i64, i64)> = (0..m)
            .map(|_| (rng.gen_range(0i64..25), rng.gen_range(0i64..25)))
            .collect();
        let db = Database::new();
        db.execute("CREATE TABLE e (s BIGINT, d BIGINT)").unwrap();
        let v: Vec<String> = edges.iter().map(|(s, d)| format!("({s}, {d})")).collect();
        db.execute(&format!("INSERT INTO e VALUES {}", v.join(",")))
            .unwrap();
        let r = db
            .execute("SELECT sum(pr.rank) FROM PAGERANK((SELECT s, d FROM e), 0.85, 0.0, 20) pr")
            .unwrap();
        let total = r.scalar().unwrap().as_float().unwrap();
        assert!((total - 1.0).abs() < 1e-6, "rank sum {total}");
    });
}

#[test]
fn update_then_sum_consistent() {
    for_cases(0x5C3D, 48, |rng| {
        let rows = small_rows(rng);
        let delta = rng.gen_range(-5i64..5);
        let db = db_with(&rows);
        db.execute(&format!("UPDATE t SET a = a + {delta}"))
            .unwrap();
        let r = db.execute("SELECT sum(a) FROM t").unwrap();
        if rows.is_empty() {
            assert!(r.scalar().unwrap().is_null());
        } else {
            let expect: i64 = rows.iter().map(|(a, _)| a + delta).sum();
            assert_eq!(r.scalar().unwrap(), Value::Int(expect));
        }
    });
}
