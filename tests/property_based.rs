//! Property-based tests over the full SQL pipeline and the analytics
//! operators, checking invariants against naive reference computations.

use hylite::{Database, Value};
use proptest::prelude::*;

/// Build a database with table `t(a BIGINT, b DOUBLE)` holding `rows`.
fn db_with(rows: &[(i64, f64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)").unwrap();
    if !rows.is_empty() {
        let values: Vec<String> = rows.iter().map(|(a, b)| format!("({a}, {b})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    }
    db
}

fn small_rows() -> impl Strategy<Value = Vec<(i64, f64)>> {
    proptest::collection::vec((-50i64..50, -100.0f64..100.0), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_matches_reference(rows in small_rows(), threshold in -50i64..50) {
        let db = db_with(&rows);
        let r = db
            .execute(&format!("SELECT count(*) FROM t WHERE a > {threshold}"))
            .unwrap();
        let expect = rows.iter().filter(|(a, _)| *a > threshold).count() as i64;
        prop_assert_eq!(r.scalar().unwrap(), Value::Int(expect));
    }

    #[test]
    fn aggregates_match_reference(rows in small_rows()) {
        let db = db_with(&rows);
        let r = db.execute("SELECT count(*), sum(a), avg(b) FROM t").unwrap();
        let row = &r.to_rows()[0];
        prop_assert_eq!(row.values()[0].clone(), Value::Int(rows.len() as i64));
        if rows.is_empty() {
            prop_assert!(row.values()[1].is_null());
            prop_assert!(row.values()[2].is_null());
        } else {
            let sum: i64 = rows.iter().map(|(a, _)| a).sum();
            prop_assert_eq!(row.values()[1].clone(), Value::Int(sum));
            let avg: f64 = rows.iter().map(|(_, b)| b).sum::<f64>() / rows.len() as f64;
            let got = row.float(2).unwrap();
            prop_assert!((got - avg).abs() < 1e-6 * avg.abs().max(1.0));
        }
    }

    #[test]
    fn group_by_partitions_input(rows in small_rows()) {
        let db = db_with(&rows);
        let r = db
            .execute("SELECT a % 5, count(*) FROM t GROUP BY a % 5")
            .unwrap();
        let total: i64 = r.to_rows().iter().map(|row| row.int(1).unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64, "group sizes sum to input size");
    }

    #[test]
    fn order_by_sorts(rows in small_rows()) {
        let db = db_with(&rows);
        let r = db.execute("SELECT a FROM t ORDER BY a").unwrap();
        let got: Vec<i64> = r.to_rows().iter().map(|row| row.int(0).unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn limit_offset_window(rows in small_rows(), limit in 0usize..20, offset in 0usize..20) {
        let db = db_with(&rows);
        let r = db
            .execute(&format!("SELECT a FROM t ORDER BY a LIMIT {limit} OFFSET {offset}"))
            .unwrap();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        let expect: Vec<i64> = expect.into_iter().skip(offset).take(limit).collect();
        let got: Vec<i64> = r.to_rows().iter().map(|row| row.int(0).unwrap()).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn distinct_is_set_semantics(rows in small_rows()) {
        let db = db_with(&rows);
        let r = db.execute("SELECT DISTINCT a FROM t").unwrap();
        let got: std::collections::BTreeSet<i64> =
            r.to_rows().iter().map(|row| row.int(0).unwrap()).collect();
        let expect: std::collections::BTreeSet<i64> = rows.iter().map(|(a, _)| *a).collect();
        prop_assert_eq!(got.len(), r.row_count(), "no duplicates");
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn join_matches_reference(
        left in proptest::collection::vec(-10i64..10, 0..40),
        right in proptest::collection::vec(-10i64..10, 0..40),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE l (k BIGINT)").unwrap();
        db.execute("CREATE TABLE r (k BIGINT)").unwrap();
        if !left.is_empty() {
            let v: Vec<String> = left.iter().map(|k| format!("({k})")).collect();
            db.execute(&format!("INSERT INTO l VALUES {}", v.join(","))).unwrap();
        }
        if !right.is_empty() {
            let v: Vec<String> = right.iter().map(|k| format!("({k})")).collect();
            db.execute(&format!("INSERT INTO r VALUES {}", v.join(","))).unwrap();
        }
        let res = db
            .execute("SELECT count(*) FROM l JOIN r ON l.k = r.k")
            .unwrap();
        let expect: i64 = left
            .iter()
            .map(|a| right.iter().filter(|b| *b == a).count() as i64)
            .sum();
        prop_assert_eq!(res.scalar().unwrap(), Value::Int(expect));
    }

    #[test]
    fn union_all_concatenates(rows in small_rows()) {
        let db = db_with(&rows);
        let r = db
            .execute("SELECT a FROM t UNION ALL SELECT a FROM t")
            .unwrap();
        prop_assert_eq!(r.row_count(), rows.len() * 2);
    }

    #[test]
    fn iterate_equals_manual_loop(start in -20i64..20, step in 1i64..7, bound in 0i64..100) {
        let db = Database::new();
        let r = db
            .execute(&format!(
                "SELECT * FROM ITERATE ((SELECT {start} AS x), \
                 (SELECT x + {step} FROM iterate), \
                 (SELECT x FROM iterate WHERE x >= {bound}))"
            ))
            .unwrap();
        let mut x = start;
        while x < bound {
            x += step;
        }
        prop_assert_eq!(r.scalar().unwrap(), Value::Int(x));
    }

    #[test]
    fn kmeans_invariants(
        xs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 4..80),
        k in 1usize..4,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
        let v: Vec<String> = xs.iter().map(|(x, y)| format!("({x}, {y})")).collect();
        db.execute(&format!("INSERT INTO p VALUES {}", v.join(","))).unwrap();
        let r = db
            .execute(&format!(
                "SELECT * FROM KMEANS((SELECT x, y FROM p), \
                 (SELECT x, y FROM p LIMIT {k}), 20)"
            ))
            .unwrap();
        // k centers; sizes sum to n.
        prop_assert_eq!(r.row_count(), k);
        let sizes: i64 = (0..k).map(|i| r.value(i, 3).unwrap().as_int().unwrap()).sum();
        prop_assert_eq!(sizes, xs.len() as i64);
        // Assignment invariant: every point's nearest center (L2) is the
        // one KMEANS_ASSIGN reports.
        let centers: Vec<(f64, f64)> = (0..k)
            .map(|i| {
                (
                    r.value(i, 1).unwrap().as_float().unwrap(),
                    r.value(i, 2).unwrap().as_float().unwrap(),
                )
            })
            .collect();
        let centers_sql: Vec<String> = centers
            .iter()
            .map(|(x, y)| format!("SELECT {x} AS x, {y} AS y"))
            .collect();
        let assign = db
            .execute(&format!(
                "SELECT * FROM KMEANS_ASSIGN((SELECT x, y FROM p), ({}))",
                centers_sql.join(" UNION ALL ")
            ))
            .unwrap();
        for row in assign.to_rows() {
            let (px, py) = (row.float(0).unwrap(), row.float(1).unwrap());
            let got = row.int(2).unwrap() as usize;
            let d2 = |(cx, cy): (f64, f64)| (px - cx).powi(2) + (py - cy).powi(2);
            let best = centers
                .iter()
                .map(|&c| d2(c))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                d2(centers[got]) <= best + 1e-9,
                "({px},{py}) assigned to non-nearest center"
            );
        }
    }

    #[test]
    fn pagerank_sums_to_one(
        edges in proptest::collection::vec((0i64..25, 0i64..25), 1..120),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE e (s BIGINT, d BIGINT)").unwrap();
        let v: Vec<String> = edges.iter().map(|(s, d)| format!("({s}, {d})")).collect();
        db.execute(&format!("INSERT INTO e VALUES {}", v.join(","))).unwrap();
        let r = db
            .execute("SELECT sum(pr.rank) FROM PAGERANK((SELECT s, d FROM e), 0.85, 0.0, 20) pr")
            .unwrap();
        let total = r.scalar().unwrap().as_float().unwrap();
        prop_assert!((total - 1.0).abs() < 1e-6, "rank sum {total}");
    }

    #[test]
    fn update_then_sum_consistent(rows in small_rows(), delta in -5i64..5) {
        let db = db_with(&rows);
        db.execute(&format!("UPDATE t SET a = a + {delta}")).unwrap();
        let r = db.execute("SELECT sum(a) FROM t").unwrap();
        if rows.is_empty() {
            prop_assert!(r.scalar().unwrap().is_null());
        } else {
            let expect: i64 = rows.iter().map(|(a, _)| a + delta).sum();
            prop_assert_eq!(r.scalar().unwrap(), Value::Int(expect));
        }
    }
}
