//! Every SQL listing and core claim from the paper, end to end.

use hylite::{Database, Value};

/// Listing 1 (§5.1): the ITERATE syntax, verbatim modulo whitespace.
#[test]
fn listing_1_iterate() {
    let db = Database::new();
    let r = db
        .execute(
            "SELECT * FROM ITERATE ((SELECT 7 \"x\"), (SELECT x+7 FROM iterate), \
             (SELECT x FROM iterate WHERE x >= 100));",
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(105));
}

/// Listing 2 (§6): PAGERANK over an edges relation with pre-processing.
#[test]
fn listing_2_pagerank() {
    let db = Database::new();
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT, weight DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 1, 1.0), (1, 3, 2.0)")
        .unwrap();
    let r = db
        .execute("SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0001);")
        .unwrap();
    assert_eq!(r.row_count(), 3);
    let total: f64 = (0..3)
        .map(|i| r.value(i, 1).unwrap().as_float().unwrap())
        .sum();
    assert!((total - 1.0).abs() < 1e-6);
}

/// Listing 3 (§7): the k-Means operator with a λ distance expression —
/// including the paper's surrounding DDL, adapted to the supported types.
#[test]
fn listing_3_kmeans_with_lambda() {
    let db = Database::new();
    db.execute("CREATE TABLE data (x FLOAT, y INTEGER, z FLOAT, desc2 VARCHAR(500))")
        .unwrap();
    db.execute("CREATE TABLE center (x FLOAT, y INTEGER, z FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO data VALUES (0.1, 0, 9.0, 'a'), (0.2, 1, 8.0, 'b'), \
         (5.1, 10, 1.0, 'c'), (5.3, 11, 2.0, 'd')",
    )
    .unwrap();
    db.execute("INSERT INTO center VALUES (1.0, 1, 0.0), (4.0, 9, 0.0)")
        .unwrap();
    // The sub-queries project the attributes of interest; the distance
    // function is specified as a λ-expression; termination after 3 rounds.
    let r = db
        .execute(
            "SELECT * FROM KMEANS( \
               (SELECT x, y FROM data), \
               (SELECT x, y FROM center), \
               λ(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, \
               3);",
        )
        .unwrap();
    assert_eq!(r.row_count(), 2, "k = 2 centers come back");
    let sizes: Vec<i64> = (0..2)
        .map(|i| r.value(i, 3).unwrap().as_int().unwrap())
        .collect();
    assert_eq!(sizes.iter().sum::<i64>(), 4, "every tuple assigned");
}

/// §5.1: ITERATE's working set stays at 2·n tuples while the recursive
/// CTE's grows as n·i — measured, not asserted by construction.
#[test]
fn non_appending_memory_claim() {
    let db = Database::new();
    db.execute("CREATE TABLE base (v BIGINT)").unwrap();
    let rows: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO base VALUES {}", rows.join(",")))
        .unwrap();

    let iters = 50;
    let it = db
        .execute(&format!(
            "SELECT count(*) FROM ITERATE ((SELECT v, 0 AS i FROM base), \
             (SELECT v + 1, i + 1 FROM iterate), \
             (SELECT i FROM iterate WHERE i >= {iters}))"
        ))
        .unwrap();
    assert_eq!(it.scalar().unwrap(), Value::Int(200));
    assert!(it.stats.peak_working_rows <= 400, "2·n bound");
    assert_eq!(it.stats.iterations, iters);

    let cte = db
        .execute(&format!(
            "WITH RECURSIVE r (v, i) AS (SELECT v, 0 FROM base \
             UNION ALL SELECT v + 1, i + 1 FROM r WHERE i < {iters}) \
             SELECT count(*) FROM r"
        ))
        .unwrap();
    assert_eq!(cte.scalar().unwrap(), Value::Int(200 * (iters as i64 + 1)));
    assert!(
        cte.stats.peak_working_rows >= 200 * iters,
        "appending semantics accumulate n·i tuples (got {})",
        cte.stats.peak_working_rows
    );
}

/// §5.2: selections must not be pushed through analytical operators —
/// verified on the optimized plan via EXPLAIN.
#[test]
fn no_selection_pushdown_through_analytics() {
    let db = Database::new();
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2), (2, 1)")
        .unwrap();
    let r = db
        .execute(
            "EXPLAIN SELECT * FROM (SELECT * FROM PAGERANK(\
             (SELECT src, dest FROM edges), 0.85, 0.0) ) pr WHERE pr.rank > 0.1",
        )
        .unwrap();
    let plan = r.to_table_string();
    let filter_pos = plan.find("Filter").expect("filter survives");
    let pr_pos = plan.find("PageRank").expect("operator in plan");
    assert!(
        filter_pos < pr_pos,
        "the filter must stay above the PageRank operator:\n{plan}"
    );
}

/// §5.2 contrast: selections ARE pushed into scans through relational
/// operators.
#[test]
fn selection_pushdown_into_scan() {
    let db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
    let r = db
        .execute("EXPLAIN SELECT x.a FROM (SELECT a, b FROM t) x WHERE x.b > 1")
        .unwrap();
    let plan = r.to_table_string();
    assert!(
        plan.contains("TableScan table=t") && plan.contains("filter="),
        "predicate should reach the scan:\n{plan}"
    );
    assert!(
        !plan.contains("\n| Filter"),
        "no standalone filter:\n{plan}"
    );
}

/// §4.3/§6: analytics operators compose with relational operators in one
/// query plan — operator output feeding joins, aggregation and ordering.
#[test]
fn seamless_composition() {
    let db = Database::new();
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
        .unwrap();
    db.execute("CREATE TABLE labels (id BIGINT, name VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1,2),(2,1),(3,1),(1,3)")
        .unwrap();
    db.execute("INSERT INTO labels VALUES (1,'hub'),(2,'a'),(3,'b')")
        .unwrap();
    let r = db
        .execute(
            "SELECT l.name, pr.rank FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0) pr \
             JOIN labels l ON l.id = pr.vertex \
             WHERE pr.rank >= 0.2 ORDER BY pr.rank DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::from("hub"));
}

/// §7: the default lambda (squared L2) and k-Medians (L1) genuinely
/// change operator semantics.
#[test]
fn lambda_changes_semantics() {
    let db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    // Point (0,0) with centers (5,5) and (0,9):
    // L2²: 50 vs 81 → center 0; L1: 10 vs 9 → center 1.
    db.execute("INSERT INTO pts VALUES (0.0, 0.0)").unwrap();
    db.execute("CREATE TABLE ctr (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO ctr VALUES (5.0, 5.0), (0.0, 9.0)")
        .unwrap();
    let l2 = db
        .execute(
            "SELECT cluster_id FROM KMEANS_ASSIGN((SELECT x, y FROM pts), (SELECT x, y FROM ctr))",
        )
        .unwrap();
    assert_eq!(l2.scalar().unwrap(), Value::Int(0));
    let l1 = db
        .execute(
            "SELECT cluster_id FROM KMEANS_ASSIGN((SELECT x, y FROM pts), (SELECT x, y FROM ctr), \
             LAMBDA(a, b) abs(a.x - b.x) + abs(a.y - b.y))",
        )
        .unwrap();
    assert_eq!(l1.scalar().unwrap(), Value::Int(1));
}

/// §6.3: PageRank re-labels sparse vertex ids internally and reverse-maps
/// them on output.
#[test]
fn pagerank_reverse_mapping() {
    let db = Database::new();
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1000000, -5), (-5, 99999999), (99999999, 1000000)")
        .unwrap();
    let r = db
        .execute(
            "SELECT vertex FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0) ORDER BY vertex",
        )
        .unwrap();
    let ids: Vec<i64> = (0..3)
        .map(|i| r.value(i, 0).unwrap().as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![-5, 1_000_000, 99_999_999]);
}

/// §6.2: the training operator's model matches the paper's formulas on a
/// hand-computable dataset.
#[test]
fn naive_bayes_paper_formulas() {
    let db = Database::new();
    db.execute("CREATE TABLE t (f DOUBLE, label BIGINT)")
        .unwrap();
    // Class 0: {2, 4} → mean 3, sample stddev sqrt(2); class 1: {10}.
    db.execute("INSERT INTO t VALUES (2.0, 0), (4.0, 0), (10.0, 1)")
        .unwrap();
    let r = db
        .execute(
            "SELECT class, prior, mean, stddev \
             FROM NAIVE_BAYES_TRAIN((SELECT f, label FROM t), label) ORDER BY class",
        )
        .unwrap();
    // PR(c) = (|c|+1)/(|D|+|C|): class 0 → 3/5, class 1 → 2/5.
    assert!((r.value(0, 1).unwrap().as_float().unwrap() - 0.6).abs() < 1e-12);
    assert!((r.value(1, 1).unwrap().as_float().unwrap() - 0.4).abs() < 1e-12);
    assert!((r.value(0, 2).unwrap().as_float().unwrap() - 3.0).abs() < 1e-12);
    assert!((r.value(0, 3).unwrap().as_float().unwrap() - 2f64.sqrt()).abs() < 1e-12);
}

/// §4.3 extension: a third edge column turns PAGERANK into its weighted
/// variant — rank flows proportionally to edge weight.
#[test]
fn weighted_pagerank_extension() {
    let db = Database::new();
    db.execute("CREATE TABLE we (src BIGINT, dest BIGINT, w DOUBLE)")
        .unwrap();
    // Vertex 0 sends 90% of its rank to 1, 10% to 2.
    db.execute("INSERT INTO we VALUES (0, 1, 9.0), (0, 2, 1.0), (1, 0, 1.0), (2, 0, 1.0)")
        .unwrap();
    let weighted = db
        .execute(
            "SELECT vertex, rank FROM PAGERANK((SELECT src, dest, w FROM we), 0.85, 0.0, 60) \
             ORDER BY vertex",
        )
        .unwrap();
    let r1 = weighted.value(1, 1).unwrap().as_float().unwrap();
    let r2 = weighted.value(2, 1).unwrap().as_float().unwrap();
    assert!(r1 > 2.0 * r2, "heavy edge dominates: {r1} vs {r2}");
    // The unweighted query on the same edges treats them equally.
    let plain = db
        .execute(
            "SELECT vertex, rank FROM PAGERANK((SELECT src, dest FROM we), 0.85, 0.0, 60) \
             ORDER BY vertex",
        )
        .unwrap();
    let p1 = plain.value(1, 1).unwrap().as_float().unwrap();
    let p2 = plain.value(2, 1).unwrap().as_float().unwrap();
    assert!((p1 - p2).abs() < 1e-9, "unweighted splits evenly");
}
