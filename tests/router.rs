//! The replica-fleet query router, end to end over real TCP: session
//! consistency under injected replication lag, rotation health when a
//! replica dies mid-stream, and router-driven promotion when the primary
//! goes away.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_client::{
    request_promote, request_repoint, Consistency, HyliteClient, HyliteRouter, RetryPolicy, Route,
    RouterConfig,
};
use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_common::Value;
use hylite_core::{Database, DurabilityOptions, ReplRole};
use hylite_server::{Replica, ReplicaConfig, ReplicaHandle, Server, ServerConfig};

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

fn open_primary(fault: &FaultVfs) -> Arc<Database> {
    Arc::new(
        Database::open_with(
            Arc::new(fault.clone()) as Arc<dyn Vfs>,
            &data_dir(),
            DurabilityOptions::default(),
        )
        .expect("open primary database"),
    )
}

fn open_replica_db() -> Arc<Database> {
    Arc::new(
        Database::open_with(
            Arc::new(FaultVfs::new()) as Arc<dyn Vfs>,
            &data_dir(),
            DurabilityOptions {
                role: ReplRole::Replica,
                ..DurabilityOptions::default()
            },
        )
        .expect("open replica database"),
    )
}

/// Replication ships new WAL frames within a millisecond.
fn fast_server_config() -> ServerConfig {
    ServerConfig {
        repl_poll_interval: Duration::from_millis(1),
        drain_timeout: Duration::from_millis(500),
        ..ServerConfig::ephemeral()
    }
}

/// Injected lag: the primary only polls for new WAL frames to ship every
/// ten minutes, so anything committed after a replica attaches stays
/// invisible on it for the whole test.
fn lagging_server_config() -> ServerConfig {
    ServerConfig {
        repl_poll_interval: Duration::from_secs(600),
        drain_timeout: Duration::from_millis(500),
        ..ServerConfig::ephemeral()
    }
}

fn fast_replica_config(primary_addr: impl Into<String>) -> ReplicaConfig {
    let mut config = ReplicaConfig::new(primary_addr);
    config.retry = RetryPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    config
}

fn start_replica(server_config: ServerConfig, primary_addr: &str) -> ReplicaHandle {
    Replica::start(
        open_replica_db(),
        server_config,
        fast_replica_config(primary_addr),
    )
    .expect("start replica")
}

/// A router that gives up on a dead node within milliseconds instead of
/// the default 30-second deadline.
fn fast_router_config(primary_addr: &str) -> RouterConfig {
    RouterConfig::new(primary_addr)
        .retry(RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(2),
        })
        .probe_interval(Duration::from_millis(1))
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// Poll a node until a `SELECT 1` on it reports an applied LSN at or
/// past `target` (the LSN piggybacked on every CommandComplete).
fn wait_caught_up(addr: std::net::SocketAddr, target: u64) {
    wait_until(
        &format!("{addr} to reach lsn {target}"),
        Duration::from_secs(20),
        || {
            let Ok(mut c) = HyliteClient::connect(addr) else {
                return false;
            };
            let caught_up = c.query("SELECT 1").map(|r| r.lsn >= target);
            let _ = c.close();
            caught_up.unwrap_or(false)
        },
    );
}

fn as_int(v: Value) -> i64 {
    match v {
        Value::Int(i) => i,
        other => panic!("expected Int, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Session consistency: read-your-own-writes under injected lag.
// ---------------------------------------------------------------------

#[test]
fn read_your_writes_survives_injected_replica_lag() {
    let primary = open_primary(&FaultVfs::new());
    primary.execute("CREATE TABLE t (x BIGINT)").unwrap();
    let p_handle = Server::start(lagging_server_config(), Arc::clone(&primary)).unwrap();
    let p_addr = p_handle.local_addr().to_string();
    let replica = start_replica(lagging_server_config(), &p_addr);

    // The replica bootstraps from a snapshot, so the (pre-attach) empty
    // table is visible; wait until it serves.
    wait_until("replica to serve", Duration::from_secs(20), || {
        let Ok(mut c) = HyliteClient::connect(replica.local_addr()) else {
            return false;
        };
        let ok = c.query("SELECT count(*) FROM t").is_ok();
        let _ = c.close();
        ok
    });

    let mut router = HyliteRouter::connect(
        fast_router_config(&p_addr)
            .replica(replica.local_addr().to_string())
            .consistency(Consistency::Session),
    )
    .unwrap();

    // Write, then read *immediately*. The replica cannot have applied
    // the write (the primary ships new frames every ten minutes), so
    // session consistency must route the read to the primary — and the
    // row must be visible.
    router.query("INSERT INTO t VALUES (42)").unwrap();
    assert!(router.last_write_lsn() > 0, "write recorded a token");
    let r = router.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(as_int(r.value(0, 0).unwrap()), 1, "read your own write");
    match router.last_route().unwrap() {
        Route::Primary(addr) => assert_eq!(addr, &p_addr),
        other => panic!("lagging replica served a session read: {other:?}"),
    }
    let stats = *router.stats();
    assert!(stats.probes >= 1, "freshness was probed: {stats:?}");
    assert!(stats.primary_fallbacks >= 1, "fallback counted: {stats:?}");

    // The same read through an any-replica router is allowed to be
    // stale — and deterministically is, given the injected lag.
    let mut loose = HyliteRouter::connect(
        fast_router_config(&p_addr)
            .replica(replica.local_addr().to_string())
            .consistency(Consistency::AnyReplica),
    )
    .unwrap();
    let r = loose.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(
        as_int(r.value(0, 0).unwrap()),
        0,
        "any-replica mode trades freshness for scale-out"
    );
    assert!(
        matches!(loose.last_route().unwrap(), Route::Replica(_)),
        "served by the lagging replica"
    );

    loose.close();
    router.close();
    replica.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// Rotation health: a replica dying mid-rotation costs one ejection, not
// an error surfaced to the caller.
// ---------------------------------------------------------------------

#[test]
fn reads_survive_replica_death_via_ejection_and_retry() {
    let primary = open_primary(&FaultVfs::new());
    primary.execute("CREATE TABLE t (x BIGINT)").unwrap();
    primary.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let p_addr = p_handle.local_addr().to_string();
    let doomed = start_replica(fast_server_config(), &p_addr);
    let healthy = start_replica(fast_server_config(), &p_addr);

    let mut probe = HyliteClient::connect(p_handle.local_addr()).unwrap();
    let target = probe.query("SELECT 1").unwrap().lsn;
    probe.close().unwrap();
    wait_caught_up(doomed.local_addr(), target);
    wait_caught_up(healthy.local_addr(), target);

    let healthy_addr = healthy.local_addr().to_string();
    let mut router = HyliteRouter::connect(
        fast_router_config(&p_addr)
            .replica(doomed.local_addr().to_string())
            .replica(healthy_addr.clone())
            .consistency(Consistency::Session),
    )
    .unwrap();

    // Warm the rotation: both replicas serve.
    for _ in 0..4 {
        router.query("SELECT count(*) FROM t").unwrap();
    }
    assert_eq!(router.stats().reads_replica, 4);

    // Kill one replica; every subsequent read must still succeed — the
    // router ejects the dead node and retries on the healthy one.
    doomed.shutdown();
    let mut healthy_served = 0;
    for _ in 0..6 {
        let r = router.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(as_int(r.value(0, 0).unwrap()), 2);
        if router.last_route() == Some(&Route::Replica(healthy_addr.clone())) {
            healthy_served += 1;
        }
    }
    let stats = *router.stats();
    assert!(stats.ejections >= 1, "dead replica was ejected: {stats:?}");
    assert!(
        healthy_served >= 3,
        "healthy replica picked up the rotation ({healthy_served} of 6): {stats:?}"
    );
    assert_eq!(stats.failovers, 0, "the primary never went away");

    router.close();
    healthy.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// Failover: the router drives promotion + re-pointing when the primary
// dies, and the session keeps reading its own writes afterwards.
// ---------------------------------------------------------------------

#[test]
fn router_promotes_a_replica_when_the_primary_dies() {
    let primary = open_primary(&FaultVfs::new());
    primary.execute("CREATE TABLE t (x BIGINT)").unwrap();
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let p_addr = p_handle.local_addr().to_string();
    let replica_a = start_replica(fast_server_config(), &p_addr);
    let replica_b = start_replica(fast_server_config(), &p_addr);
    let fleet: Vec<String> = vec![
        replica_a.local_addr().to_string(),
        replica_b.local_addr().to_string(),
    ];

    let mut router = HyliteRouter::connect(
        fast_router_config(&p_addr)
            .replicas(fleet.clone())
            .consistency(Consistency::Session),
    )
    .unwrap();
    router.query("INSERT INTO t VALUES (1)").unwrap();
    router.query("INSERT INTO t VALUES (2)").unwrap();
    let token = router.last_write_lsn();
    wait_caught_up(replica_a.local_addr(), token);
    wait_caught_up(replica_b.local_addr(), token);

    // Kill the primary. The next write must succeed anyway: the router
    // promotes the most caught-up replica and re-points the other.
    p_handle.shutdown();
    router.query("INSERT INTO t VALUES (3)").unwrap();

    assert_eq!(router.stats().failovers, 1);
    let new_primary = router.primary_addr().to_string();
    assert!(
        fleet.contains(&new_primary),
        "promoted one of the replicas, got {new_primary}"
    );
    let survivors: Vec<String> = router
        .replica_addrs()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(survivors.len(), 1, "the other replica stays a replica");
    assert_ne!(survivors[0], new_primary);

    // Read-your-writes still holds across the failover: all three rows.
    let r = router.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(as_int(r.value(0, 0).unwrap()), 3);

    // The promoted node reports itself as a primary now; once the
    // re-pointed replica re-attaches (epoch fencing forces it through a
    // fresh bootstrap), the new primary streams to it and the survivor
    // converges on the post-failover history.
    let survivor_addr: std::net::SocketAddr = survivors[0].parse().unwrap();
    wait_until(
        "survivor to follow the new primary",
        Duration::from_secs(20),
        || {
            let Ok(mut c) = HyliteClient::connect(survivor_addr) else {
                return false;
            };
            let converged = c
                .query("SELECT count(*) FROM t")
                .map(|r| as_int(r.value(0, 0).unwrap()) == 3);
            let _ = c.close();
            converged.unwrap_or(false)
        },
    );
    let mut c = HyliteClient::connect(new_primary.as_str()).unwrap();
    let r = c
        .query("SELECT r.role, r.state FROM hylite.replication r")
        .unwrap();
    assert!(r.row_count() >= 1);
    assert_eq!(r.value(0, 0).unwrap(), Value::from("primary"));
    c.close().unwrap();

    router.close();
    replica_a.shutdown();
    replica_b.shutdown();
}

// ---------------------------------------------------------------------
// Routing rules observable at the wire level.
// ---------------------------------------------------------------------

#[test]
fn transactions_pin_to_the_primary_and_round_robin_spreads_reads() {
    let primary = open_primary(&FaultVfs::new());
    primary.execute("CREATE TABLE t (x BIGINT)").unwrap();
    primary.execute("INSERT INTO t VALUES (7)").unwrap();
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let p_addr = p_handle.local_addr().to_string();
    let replica_a = start_replica(fast_server_config(), &p_addr);
    let replica_b = start_replica(fast_server_config(), &p_addr);

    let mut probe = HyliteClient::connect(p_handle.local_addr()).unwrap();
    let target = probe.query("SELECT 1").unwrap().lsn;
    probe.close().unwrap();
    wait_caught_up(replica_a.local_addr(), target);
    wait_caught_up(replica_b.local_addr(), target);

    let mut router = HyliteRouter::connect(
        fast_router_config(&p_addr)
            .replica(replica_a.local_addr().to_string())
            .replica(replica_b.local_addr().to_string())
            .consistency(Consistency::AnyReplica),
    )
    .unwrap();

    // Round robin: four reads touch both replicas.
    let mut served = std::collections::BTreeSet::new();
    for _ in 0..4 {
        router.query("SELECT count(*) FROM t").unwrap();
        if let Some(Route::Replica(addr)) = router.last_route() {
            served.insert(addr.clone());
        }
    }
    assert_eq!(router.stats().reads_replica, 4);
    assert_eq!(served.len(), 2, "both replicas served: {served:?}");

    // Inside BEGIN..COMMIT even pure reads pin to the primary.
    router.query("BEGIN").unwrap();
    router.query("INSERT INTO t VALUES (8)").unwrap();
    let r = router.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(as_int(r.value(0, 0).unwrap()), 2);
    assert!(
        matches!(router.last_route().unwrap(), Route::Primary(_)),
        "in-transaction read stayed on the primary"
    );
    router.query("COMMIT").unwrap();
    assert!(router.last_write_lsn() > 0, "COMMIT advanced the token");

    // System views are node-local, so the router sends them to the
    // primary even though they parse as plain reads.
    router
        .query("SELECT count(*) FROM hylite.replication")
        .unwrap();
    assert!(matches!(router.last_route().unwrap(), Route::Primary(_)));

    router.close();
    replica_a.shutdown();
    replica_b.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// Admin frames: promote is idempotent on a primary, guarded elsewhere.
// ---------------------------------------------------------------------

#[test]
fn promote_and_repoint_guardrails() {
    // A durable primary: Promote is an idempotent no-op answering its
    // current epoch; Repoint is refused (it is not a replica).
    let primary = open_primary(&FaultVfs::new());
    let p_handle = Server::start(fast_server_config(), Arc::clone(&primary)).unwrap();
    let addr = p_handle.local_addr().to_string();
    let (epoch, _lsn) = request_promote(addr.as_str()).unwrap();
    assert_ne!(epoch, 0);
    let (epoch2, _) = request_promote(addr.as_str()).unwrap();
    assert_eq!(epoch, epoch2, "promoting a primary mints no new epoch");
    let err = request_repoint(addr.as_str(), "127.0.0.1:1").unwrap_err();
    assert!(
        err.to_string().contains("not"),
        "repoint refused on a primary: {err}"
    );
    p_handle.shutdown();

    // A non-durable server cannot be promoted at all.
    let ephemeral = Arc::new(Database::new());
    let e_handle = Server::start(fast_server_config(), ephemeral).unwrap();
    let err = request_promote(e_handle.local_addr()).unwrap_err();
    assert!(
        err.to_string().contains("durable"),
        "promotion requires durability: {err}"
    );
    e_handle.shutdown();
}

// ---------------------------------------------------------------------
// The standalone pin: `hylite.replication` on a server with no
// replication configured says so instead of returning an empty table.
// ---------------------------------------------------------------------

#[test]
fn standalone_server_reports_no_replication_configured() {
    let db = Arc::new(Database::new());
    let handle = Server::start(ServerConfig::ephemeral(), db).unwrap();
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();
    let r = client
        .query("SELECT r.role, r.peer, r.state FROM hylite.replication r")
        .unwrap();
    assert_eq!(r.row_count(), 1);
    assert_eq!(r.value(0, 0).unwrap(), Value::from("standalone"));
    assert_eq!(r.value(0, 1).unwrap(), Value::Null);
    assert_eq!(
        r.value(0, 2).unwrap(),
        Value::from("no replication configured")
    );
    client.close().unwrap();
    handle.shutdown();
}
