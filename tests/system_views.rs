//! The observability plane end to end: `hylite.*` system views queried
//! over the wire, slow-query capture, trace-id propagation, replication
//! lag as SQL, and the Prometheus exposition endpoint.
//!
//! The view schemas asserted here are a **stable interface** (documented
//! in `docs/OBSERVABILITY.md`): renaming or reordering a column is a
//! breaking change and must fail these tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_client::HyliteClient;
use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_common::Value;
use hylite_core::{Database, DurabilityOptions, ReplRole};
use hylite_server::{Replica, ReplicaConfig, Server, ServerConfig};

fn start_memory_server(db: Database) -> hylite_server::ServerHandle {
    Server::start(ServerConfig::ephemeral(), Arc::new(db)).expect("start server")
}

fn column_names(result: &hylite_client::RemoteResult) -> Vec<String> {
    result
        .schema
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect()
}

fn as_int(v: Value) -> i64 {
    match v {
        Value::Int(i) => i,
        other => panic!("expected Int, got {other:?}"),
    }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

// ---------------------------------------------------------------------
// Schema stability: the column names and order of every view are pinned.
// ---------------------------------------------------------------------

#[test]
fn system_view_schemas_are_stable_over_the_wire() {
    let handle = start_memory_server(Database::new());
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();

    let expected: &[(&str, &[&str])] = &[
        (
            "hylite.metrics",
            &[
                "kind", "name", "value", "count", "sum", "min", "p50", "p95", "p99", "max",
            ],
        ),
        ("hylite.connections", &["session_id", "peer", "state"]),
        (
            "hylite.replication",
            &[
                "role",
                "peer",
                "state",
                "epoch",
                "sent_lsn",
                "acked_lsn",
                "lag_frames",
                "lag_bytes",
                "bootstraps",
                "staleness_seconds",
                "node_state",
                "reconnects",
                "rebootstraps",
            ],
        ),
        (
            "hylite.wal",
            &["role", "epoch", "next_lsn", "durable_bytes", "sync_mode"],
        ),
        (
            "hylite.sessions",
            &[
                "session_id",
                "statements",
                "errors",
                "in_transaction",
                "last_trace_id",
                "age_seconds",
            ],
        ),
        (
            "hylite.slow_queries",
            &[
                "trace_id",
                "session_id",
                "sql",
                "wall_us",
                "rows",
                "verdict",
                "plan",
            ],
        ),
    ];
    for (view, columns) in expected {
        let r = client.query(&format!("SELECT * FROM {view}")).unwrap();
        assert_eq!(
            column_names(&r),
            columns.to_vec(),
            "schema of {view} is a stable interface"
        );
    }

    // The views are plain relations to the planner: projection, filters,
    // and aggregates compose with them.
    let r = client
        .query("SELECT count(*) FROM hylite.metrics m WHERE m.kind = 'counter'")
        .unwrap();
    assert!(as_int(r.scalar().unwrap()) > 0, "counters exist");

    client.close().unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Connections and sessions: wire sessions appear while connected and
// vanish when they disconnect; the wire session id IS the engine id.
// ---------------------------------------------------------------------

#[test]
fn connections_and_sessions_views_track_wire_sessions() {
    let handle = start_memory_server(Database::new());
    let mut a = HyliteClient::connect(handle.local_addr()).unwrap();
    let b = HyliteClient::connect(handle.local_addr()).unwrap();
    let (id_a, id_b) = (a.session_id(), b.session_id());
    assert_ne!(id_a, id_b);

    let conn_ids = |client: &mut HyliteClient| -> Vec<i64> {
        let r = client
            .query("SELECT c.session_id FROM hylite.connections c")
            .unwrap();
        (0..r.row_count())
            .map(|i| as_int(r.value(i, 0).unwrap()))
            .collect()
    };
    let ids = conn_ids(&mut a);
    assert!(ids.contains(&(id_a as i64)), "{ids:?}");
    assert!(ids.contains(&(id_b as i64)), "{ids:?}");

    // The sessions view shows the same ids with per-session counters.
    let r = a
        .query(&format!(
            "SELECT s.statements FROM hylite.sessions s WHERE s.session_id = {id_b}"
        ))
        .unwrap();
    assert_eq!(r.row_count(), 1, "session {id_b} visible");

    // Disconnect b: its connection row is gone (its session stat follows
    // once the session drops).
    b.close().unwrap();
    wait_until("connection row to vanish", Duration::from_secs(5), || {
        !conn_ids(&mut a).contains(&(id_b as i64))
    });

    client_close(a);
    handle.shutdown();
}

fn client_close(c: HyliteClient) {
    let _ = c.close();
}

// ---------------------------------------------------------------------
// Slow-query log: capture over the wire, ring eviction via SET.
// ---------------------------------------------------------------------

#[test]
fn slow_query_ring_captures_and_evicts_over_the_wire() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    let handle = start_memory_server(db);
    let mut client = HyliteClient::connect(handle.local_addr()).unwrap();

    client.query("SET slow_query_ms = 1").unwrap();
    client.query("SET slow_query_log_size = 2").unwrap();

    // Three distinguishable slow statements (an ITERATE to 20k is far
    // beyond 1ms); the ring holds two, so the first must be evicted.
    for marker in [777001, 777002, 777003] {
        client
            .query(&format!(
                "SELECT count(*) FROM ITERATE((SELECT 0 \"x\"), (SELECT x + 1 FROM iterate), \
                 (SELECT x FROM iterate WHERE x >= 20000)) WHERE 1 = {marker} - {}",
                marker - 1
            ))
            .unwrap();
    }

    let r = client
        .query("SELECT q.sql, q.verdict, q.trace_id FROM hylite.slow_queries q")
        .unwrap();
    assert_eq!(r.row_count(), 2, "ring capacity 2 evicts the oldest");
    let sqls: Vec<String> = (0..2)
        .map(|i| match r.value(i, 0).unwrap() {
            Value::Str(s) => s,
            other => panic!("sql column must be text, got {other:?}"),
        })
        .collect();
    assert!(sqls[0].contains("777002"), "{sqls:?}");
    assert!(sqls[1].contains("777003"), "{sqls:?}");
    for i in 0..2 {
        assert_eq!(r.value(i, 1).unwrap(), Value::from("ok"));
        let trace = as_int(r.value(i, 2).unwrap()) as u64;
        assert_eq!(
            trace >> 20,
            client.session_id(),
            "trace ids embed the issuing session"
        );
    }

    client.close().unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Trace ids: EXPLAIN ANALYZE prints the same id the sessions view holds.
// ---------------------------------------------------------------------

#[test]
fn trace_ids_propagate_from_explain_analyze_to_the_sessions_view() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let handle = start_memory_server(db);
    let mut subject = HyliteClient::connect(handle.local_addr()).unwrap();
    let mut observer = HyliteClient::connect(handle.local_addr()).unwrap();

    let text = subject
        .query("EXPLAIN ANALYZE SELECT sum(x) FROM t")
        .unwrap()
        .to_table_string();
    let trace: u64 = text
        .split("trace=")
        .nth(1)
        .and_then(|rest| {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        })
        .unwrap_or_else(|| panic!("no trace id in: {text}"));
    assert_eq!(
        trace >> 20,
        subject.session_id(),
        "trace ids embed the session id"
    );

    // Asked from a *different* session (a same-session query would mint
    // its own trace first), the sessions view reports exactly that id.
    let r = observer
        .query(&format!(
            "SELECT s.last_trace_id FROM hylite.sessions s WHERE s.session_id = {}",
            subject.session_id()
        ))
        .unwrap();
    assert_eq!(as_int(r.scalar().unwrap()) as u64, trace);

    // The next statement on the subject session advances its trace.
    subject.query("SELECT 1").unwrap();
    let r = observer
        .query(&format!(
            "SELECT s.last_trace_id FROM hylite.sessions s WHERE s.session_id = {}",
            subject.session_id()
        ))
        .unwrap();
    assert_eq!(as_int(r.scalar().unwrap()) as u64, trace + 1);

    subject.close().unwrap();
    observer.close().unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Replication observability, end to end: a live primary/replica pair
// reports progress through plain SQL on both sides, and the lag
// converges to zero.
// ---------------------------------------------------------------------

#[test]
fn replication_view_reports_acked_lsn_and_lag_converges_to_zero() {
    let data_dir = PathBuf::from("data");
    let pf = FaultVfs::new();
    let primary = Arc::new(
        Database::open_with(
            Arc::new(pf.clone()) as Arc<dyn Vfs>,
            &data_dir,
            DurabilityOptions::default(),
        )
        .unwrap(),
    );
    primary.execute("CREATE TABLE t (x BIGINT)").unwrap();
    for v in 1..=5 {
        primary
            .execute(&format!("INSERT INTO t VALUES ({v})"))
            .unwrap();
    }
    let p_config = ServerConfig {
        repl_poll_interval: Duration::from_millis(1),
        ..ServerConfig::ephemeral()
    };
    let p_handle = Server::start(p_config.clone(), Arc::clone(&primary)).unwrap();
    let primary_addr = p_handle.local_addr().to_string();

    // Before any replica attaches, the primary's replication view
    // reports one self-describing "standalone" row instead of an empty
    // (and easily misread) table.
    let mut p_client = HyliteClient::connect(p_handle.local_addr()).unwrap();
    let r = p_client
        .query("SELECT r.role, r.state FROM hylite.replication r")
        .unwrap();
    assert_eq!(r.row_count(), 1);
    assert_eq!(r.value(0, 0).unwrap(), Value::from("standalone"));
    assert_eq!(
        r.value(0, 1).unwrap(),
        Value::from("no replication configured")
    );

    let rf = FaultVfs::new();
    let replica_db = Arc::new(
        Database::open_with(
            Arc::new(rf.clone()) as Arc<dyn Vfs>,
            &data_dir,
            DurabilityOptions {
                role: ReplRole::Replica,
                ..DurabilityOptions::default()
            },
        )
        .unwrap(),
    );
    let replica = Replica::start(
        Arc::clone(&replica_db),
        p_config,
        ReplicaConfig::new(&primary_addr),
    )
    .unwrap();

    // The acceptance criterion: on the live primary, the view reports a
    // nonzero acked LSN and the lag converges to 0.
    let mut last = (0i64, i64::MAX);
    wait_until("lag to converge to zero", Duration::from_secs(10), || {
        let r = p_client
            .query(
                "SELECT r.acked_lsn, r.lag_frames, r.state FROM hylite.replication r \
                 WHERE r.role = 'primary'",
            )
            .unwrap();
        if r.row_count() != 1 {
            return false;
        }
        last = (
            as_int(r.value(0, 0).unwrap()),
            as_int(r.value(0, 1).unwrap()),
        );
        assert_eq!(r.value(0, 2).unwrap(), Value::from("streaming"));
        last.0 > 0 && last.1 == 0
    });
    assert!(last.0 > 0, "acked lsn stayed zero: {last:?}");

    // New commits drive the acked LSN forward, and it converges again.
    let acked_before = last.0;
    for v in 6..=10 {
        primary
            .execute(&format!("INSERT INTO t VALUES ({v})"))
            .unwrap();
    }
    wait_until("new commits to be acked", Duration::from_secs(10), || {
        let r = p_client
            .query(
                "SELECT r.acked_lsn, r.lag_frames FROM hylite.replication r \
                 WHERE r.role = 'primary'",
            )
            .unwrap();
        r.row_count() == 1
            && as_int(r.value(0, 0).unwrap()) >= acked_before + 5
            && as_int(r.value(0, 1).unwrap()) == 0
    });

    // The same progress is visible as gauges on the primary.
    assert_eq!(primary.metrics().gauge("repl.lag_bytes").get(), 0);

    // A read-only replica session can query every system view; its
    // replication self-row reports the apply progress.
    let mut r_client = HyliteClient::connect(replica.local_addr()).unwrap();
    let r = r_client
        .query(
            "SELECT r.role, r.state, r.acked_lsn, r.staleness_seconds \
             FROM hylite.replication r",
        )
        .unwrap();
    assert_eq!(r.row_count(), 1, "the replica reports exactly itself");
    assert_eq!(r.value(0, 0).unwrap(), Value::from("replica"));
    assert_eq!(r.value(0, 1).unwrap(), Value::from("streaming"));
    assert!(as_int(r.value(0, 2).unwrap()) > 0, "applied lsn visible");
    assert!(
        matches!(r.value(0, 3).unwrap(), Value::Int(_)),
        "staleness known once frames applied"
    );
    let r = r_client.query("SELECT w.role FROM hylite.wal w").unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::from("replica"));
    assert!(
        as_int(
            r_client
                .query("SELECT count(*) FROM hylite.metrics")
                .unwrap()
                .scalar()
                .unwrap()
        ) > 0,
        "metrics view readable on a read-only session"
    );

    r_client.close().unwrap();
    p_client.close().unwrap();
    replica.shutdown();
    p_handle.shutdown();
}

// ---------------------------------------------------------------------
// The Prometheus endpoint: text format 0.0.4, lag gauges always present.
// ---------------------------------------------------------------------

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("SELECT sum(x) FROM t").unwrap();
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::ephemeral()
    };
    let handle = Server::start(config, Arc::new(db)).unwrap();
    let addr = handle.metrics_addr().expect("metrics listener bound");

    let http_get = |path: &str| -> String {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(format!("GET {path} HTTP/1.0\r\nHost: hylite\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        sock.read_to_string(&mut response).unwrap();
        response
    };

    let response = http_get("/metrics");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    // Spot-check the format: TYPE lines, mangled counter names, and the
    // replication gauges that must be present even with no replica.
    assert!(
        body.contains("# TYPE hylite_query_executed counter"),
        "{body}"
    );
    assert!(body.contains("hylite_query_executed 3"), "{body}");
    assert!(
        body.contains("# TYPE hylite_repl_lag_bytes gauge"),
        "{body}"
    );
    assert!(body.contains("hylite_repl_lag_bytes 0"), "{body}");
    assert!(body.contains("quantile=\"0.99\""), "{body}");
    // Every line is either a comment or `name[{labels}] value`.
    for line in body.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2,
            "malformed exposition line: {line:?}"
        );
    }

    // Unknown paths 404; the scrape endpoint is GET-only.
    assert!(http_get("/nope").starts_with("HTTP/1.0 404"), "404 path");

    handle.shutdown();
}
