//! Broad SQL-surface coverage through the full pipeline.

use hylite::{Database, Value};

fn db_with_people() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE people (id BIGINT, name VARCHAR, age BIGINT, city VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES \
         (1, 'ada', 36, 'london'), (2, 'grace', 85, 'arlington'), \
         (3, 'alan', 41, 'london'), (4, 'edsger', 72, NULL), \
         (5, 'barbara', 73, 'boston')",
    )
    .unwrap();
    db
}

#[test]
fn where_order_limit_offset() {
    let db = db_with_people();
    let r = db
        .execute("SELECT name FROM people WHERE age > 40 ORDER BY age DESC LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(r.row_count(), 2);
    assert_eq!(r.value(0, 0).unwrap(), Value::from("barbara"));
    assert_eq!(r.value(1, 0).unwrap(), Value::from("edsger"));
}

#[test]
fn null_semantics() {
    let db = db_with_people();
    // NULL city filtered out by = comparison (3VL).
    let r = db
        .execute("SELECT count(*) FROM people WHERE city = city")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(4));
    let r = db
        .execute("SELECT name FROM people WHERE city IS NULL")
        .unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::from("edsger"));
    // count(col) skips NULLs; count(*) does not.
    let r = db
        .execute("SELECT count(*), count(city) FROM people")
        .unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::Int(5));
    assert_eq!(r.value(0, 1).unwrap(), Value::Int(4));
    // coalesce fallback.
    let r = db
        .execute("SELECT coalesce(city, 'unknown') FROM people WHERE id = 4")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::from("unknown"));
}

#[test]
fn like_between_in_case() {
    let db = db_with_people();
    let r = db
        .execute("SELECT count(*) FROM people WHERE name LIKE 'a%'")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
    let r = db
        .execute("SELECT count(*) FROM people WHERE age BETWEEN 40 AND 80")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(3));
    let r = db
        .execute("SELECT count(*) FROM people WHERE id IN (1, 3, 9)")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
    let r = db
        .execute("SELECT sum(CASE WHEN age >= 65 THEN 1 ELSE 0 END) AS seniors FROM people")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(3));
}

#[test]
fn distinct_union_except_behavior() {
    let db = db_with_people();
    let r = db
        .execute("SELECT DISTINCT city FROM people WHERE city IS NOT NULL ORDER BY city")
        .unwrap();
    assert_eq!(r.row_count(), 3);
    let r = db
        .execute("SELECT 1 UNION SELECT 1 UNION SELECT 2")
        .unwrap();
    assert_eq!(r.row_count(), 2);
    let r = db
        .execute("SELECT 1 UNION ALL SELECT 1 UNION ALL SELECT 2")
        .unwrap();
    assert_eq!(r.row_count(), 3);
}

#[test]
fn scalar_functions_in_projection() {
    let db = db_with_people();
    let r = db
        .execute(
            "SELECT upper(name), length(name), sqrt(CAST(age AS DOUBLE)), age % 10 \
             FROM people WHERE id = 1",
        )
        .unwrap();
    let row = &r.to_rows()[0];
    assert_eq!(row.values()[0], Value::from("ADA"));
    assert_eq!(row.values()[1], Value::Int(3));
    assert_eq!(row.values()[2], Value::Float(6.0));
    assert_eq!(row.values()[3], Value::Int(6));
}

#[test]
fn group_by_expression_and_order_by_aggregate() {
    let db = db_with_people();
    let r = db
        .execute(
            "SELECT age / 10 AS decade, count(*) AS n FROM people \
             GROUP BY age / 10 ORDER BY count(*) DESC, decade",
        )
        .unwrap();
    assert_eq!(r.value(0, 1).unwrap(), Value::Int(2), "70s twice");
}

#[test]
fn self_and_three_way_joins() {
    let db = db_with_people();
    // Pairs of people in the same city.
    let r = db
        .execute(
            "SELECT a.name, b.name FROM people a JOIN people b \
             ON a.city = b.city AND a.id < b.id",
        )
        .unwrap();
    assert_eq!(r.row_count(), 1, "only ada & alan share a city");
    db.execute("CREATE TABLE cities (name VARCHAR, country VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO cities VALUES ('london', 'uk'), ('boston', 'us')")
        .unwrap();
    let r = db
        .execute(
            "SELECT p.name, c.country FROM people p \
             JOIN cities c ON p.city = c.name ORDER BY p.name",
        )
        .unwrap();
    assert_eq!(r.row_count(), 3);
}

#[test]
fn ctes_and_nested_subqueries() {
    let db = db_with_people();
    let r = db
        .execute(
            "WITH seniors AS (SELECT * FROM people WHERE age > 70), \
                  s2 AS (SELECT city FROM seniors WHERE city IS NOT NULL) \
             SELECT count(*) FROM s2",
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(2));
    let r = db
        .execute("SELECT avg(x.age) FROM (SELECT age FROM (SELECT * FROM people) inner2) x")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Float(61.4));
}

#[test]
fn update_delete_roundtrip() {
    let db = db_with_people();
    db.execute("UPDATE people SET city = 'cambridge' WHERE city IS NULL")
        .unwrap();
    let r = db
        .execute("SELECT count(*) FROM people WHERE city IS NULL")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(0));
    let affected = db.execute("DELETE FROM people WHERE age < 50").unwrap();
    assert_eq!(affected.rows_affected, 2);
    let r = db.execute("SELECT count(*) FROM people").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(3));
    // Insert after delete reuses the table cleanly.
    db.execute("INSERT INTO people VALUES (6, 'donald', 86, 'stanford')")
        .unwrap();
    let r = db.execute("SELECT max(age) FROM people").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(86));
}

#[test]
fn error_messages_carry_stage() {
    let db = db_with_people();
    let err = db.execute("SELECT nope FROM people").unwrap_err();
    assert_eq!(err.stage(), "bind");
    let err = db.execute("SELECT * FROM people WHERE").unwrap_err();
    assert_eq!(err.stage(), "parse");
    let err = db.execute("SELECT age + name FROM people").unwrap_err();
    assert_eq!(err.stage(), "type");
    let err = db.execute("SELECT 1 / 0").unwrap_err();
    assert_eq!(err.stage(), "execution");
}

#[test]
fn aggregates_stddev_variance() {
    let db = Database::new();
    db.execute("CREATE TABLE v (x DOUBLE)").unwrap();
    db.execute("INSERT INTO v VALUES (2),(4),(4),(4),(5),(5),(7),(9)")
        .unwrap();
    let r = db.execute("SELECT stddev(x), var_samp(x) FROM v").unwrap();
    let sd = r.value(0, 0).unwrap().as_float().unwrap();
    let var = r.value(0, 1).unwrap().as_float().unwrap();
    assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    assert!((var - 32.0 / 7.0).abs() < 1e-12);
}

#[test]
fn recursive_cte_transitive_closure() {
    let db = Database::new();
    db.execute("CREATE TABLE edge (src BIGINT, dst BIGINT)")
        .unwrap();
    db.execute("INSERT INTO edge VALUES (1,2),(2,3),(3,4),(4,2)")
        .unwrap();
    // Reachability from 1 with UNION (dedup fixpoint despite the cycle).
    let r = db
        .execute(
            "WITH RECURSIVE reach (v) AS (\
               SELECT 1 \
               UNION \
               SELECT e.dst FROM reach r JOIN edge e ON e.src = r.v) \
             SELECT count(*) FROM reach",
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(4));
}

#[test]
fn insert_select_between_tables() {
    let db = db_with_people();
    db.execute("CREATE TABLE elders (name VARCHAR, age BIGINT)")
        .unwrap();
    db.execute("INSERT INTO elders SELECT name, age FROM people WHERE age > 70")
        .unwrap();
    let r = db.execute("SELECT count(*) FROM elders").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(3));
}

#[test]
fn wide_row_and_many_chunks() {
    let db = Database::new();
    db.execute("CREATE TABLE wide (a BIGINT, b DOUBLE, c VARCHAR, d BOOLEAN, e BIGINT)")
        .unwrap();
    let rows: Vec<String> = (0..5000)
        .map(|i| format!("({i}, {}.5, 'r{i}', {}, {})", i, i % 2 == 0, i * 2))
        .collect();
    db.execute(&format!("INSERT INTO wide VALUES {}", rows.join(",")))
        .unwrap();
    let r = db
        .execute("SELECT count(*), sum(e), min(b), max(c) FROM wide WHERE d")
        .unwrap();
    let row = &r.to_rows()[0];
    assert_eq!(row.values()[0], Value::Int(2500));
    assert_eq!(row.values()[3], Value::from("r998"), "string max");
}
