//! Adversarial wire-protocol decoding: every mutation of a valid frame —
//! truncation, oversized length prefixes, bit flips, random garbage —
//! must come back as a typed `HyError` (almost always `Protocol`), never
//! a panic, never an allocation explosion.
//!
//! This is a deterministic fuzz harness, not a statistical one: the
//! mutation schedule derives from a fixed seed, so a failure reproduces
//! exactly.

use hylite_common::wire::{self, Frame, MAX_FRAME_BYTES, PROTOCOL_VERSION};
use hylite_common::{Chunk, ColumnVector, DataType, Field, Schema, Value};

/// SplitMix64 — the same tiny deterministic generator the engine uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One representative frame per wire message shape, covering every column
/// type the chunk codec speaks.
fn corpus() -> Vec<Frame> {
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Float64),
        Field::new("c", DataType::Varchar),
        Field::new("d", DataType::Bool),
    ]);
    let chunk = Chunk::new(vec![
        ColumnVector::from_i64(vec![1, -2, i64::MAX]),
        ColumnVector::from_f64(vec![0.5, f64::NAN, -1e300]),
        ColumnVector::from_values(
            DataType::Varchar,
            &[Value::from("x"), Value::Null, Value::from("déjà vu")],
        )
        .unwrap(),
        ColumnVector::from_values(
            DataType::Bool,
            &[Value::Bool(true), Value::Bool(false), Value::Null],
        )
        .unwrap(),
    ]);
    vec![
        Frame::Startup {
            version: PROTOCOL_VERSION,
        },
        Frame::StartupOk {
            version: PROTOCOL_VERSION,
            session_id: 42,
            secret: 0xDEAD_BEEF,
        },
        Frame::Query {
            sql: "SELECT * FROM t WHERE x > 'quoted''string'".into(),
        },
        Frame::ResultSchema { schema },
        Frame::DataChunk { chunk },
        Frame::CommandComplete {
            rows_affected: 3,
            total_rows: 3,
            lsn: 17,
        },
        Frame::Error {
            code: 7,
            message: "boom".into(),
        },
        Frame::Cancel {
            session_id: 9,
            secret: 1,
        },
        Frame::CancelAck { delivered: true },
        Frame::Shutdown,
        Frame::Terminate,
        Frame::Replicate {
            version: PROTOCOL_VERSION,
            epoch: 0xFEED_F00D_DEAD_BEEF,
            last_lsn: 41,
        },
        Frame::ReplicateOk {
            epoch: 0xFEED_F00D_DEAD_BEEF,
            next_lsn: 42,
        },
        Frame::SnapshotOffer {
            epoch: 1,
            base_lsn: 7,
            data: vec![0x48, 0x59, 0x43, 0x4B, 0x00, 0xFF, 0x7F],
        },
        Frame::WalFrame {
            lsn: 9,
            crc: 0xC0FF_EE00,
            payload: vec![9, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0],
        },
        Frame::ReplicaAck { lsn: u64::MAX },
        Frame::Promote,
        Frame::PromoteOk {
            epoch: 0xFEED_FACE,
            lsn: 41,
        },
        Frame::Repoint {
            primary_addr: "10.0.0.7:5433".into(),
        },
        Frame::Backup {
            dir: "/backups/nightly".into(),
            base: Some("/backups/weekly".into()),
            verify: true,
        },
        Frame::Backup {
            dir: "b".into(),
            base: None,
            verify: false,
        },
        Frame::BackupOk {
            lsn: u64::MAX,
            segments: 12,
            bytes: 0xDEAD_BEEF,
        },
    ]
}

/// Feed arbitrary bytes to the frame reader; the only acceptable
/// outcomes are a decoded frame or a typed error.
fn must_not_panic(bytes: &[u8]) {
    let mut cursor = bytes;
    let _ = wire::read_frame(&mut cursor);
}

#[test]
fn every_truncation_of_every_frame_errors_cleanly() {
    for frame in corpus() {
        let bytes = wire::encode_frame(&frame);
        // Every proper prefix, including the empty one.
        for cut in 0..bytes.len() {
            must_not_panic(&bytes[..cut]);
        }
        // Truncate the *body* but keep the original length prefix: the
        // reader must report the short read, not block or panic.
        if bytes.len() > 6 {
            let mut long_prefix = bytes.clone();
            long_prefix.truncate(bytes.len() - 1);
            must_not_panic(&long_prefix);
        }
    }
}

#[test]
fn every_single_bit_flip_errors_cleanly_or_decodes() {
    for frame in corpus() {
        let bytes = wire::encode_frame(&frame);
        for byte_idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte_idx] ^= 1 << bit;
                // A flip may still decode (e.g. inside a string); it must
                // never panic or over-allocate.
                must_not_panic(&mutated);
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // Claim a body of MAX_FRAME_BYTES + 1 — the reader must refuse based
    // on the prefix alone instead of trying to allocate it.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    let mut cursor = &bytes[..];
    let err = wire::read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.stage(), "protocol", "{err}");

    // u32::MAX likewise.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    let mut cursor = &bytes[..];
    assert!(wire::read_frame(&mut cursor).is_err());
}

#[test]
fn random_garbage_never_panics() {
    let mut seed = 0x5EED_CAFE_u64;
    for round in 0..2000 {
        seed = splitmix64(seed ^ round);
        let len = (seed % 512) as usize;
        let mut bytes = Vec::with_capacity(len);
        let mut s = seed;
        for _ in 0..len {
            s = splitmix64(s);
            bytes.push(s as u8);
        }
        must_not_panic(&bytes);
    }
}

#[test]
fn spliced_frames_resynchronize_or_error() {
    // Concatenate two valid frames, then mutate the boundary: the reader
    // consumes the first; whatever happens to the second must be clean.
    let a = wire::encode_frame(&Frame::Query {
        sql: "SELECT 1".into(),
    });
    let b = wire::encode_frame(&Frame::Terminate);
    let mut spliced = a.clone();
    spliced.extend_from_slice(&b);
    let mut cursor = &spliced[..];
    assert!(wire::read_frame(&mut cursor).is_ok());
    assert!(wire::read_frame(&mut cursor).is_ok());

    // Corrupt the second frame's tag.
    let mut corrupted = a.clone();
    let mut b2 = b.clone();
    let tag_at = 4; // after the u32 length prefix
    b2[tag_at] = 0xEE;
    corrupted.extend_from_slice(&b2);
    let mut cursor = &corrupted[..];
    assert!(wire::read_frame(&mut cursor).is_ok());
    let err = wire::read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.stage(), "protocol", "{err}");
}

#[test]
fn mutated_chunks_preserve_row_count_claims_or_error() {
    // A DataChunk whose declared row count disagrees with its columns
    // must error, not mis-index.
    let chunk = Chunk::new(vec![ColumnVector::from_i64(vec![1, 2, 3])]);
    let frame = Frame::DataChunk { chunk };
    let bytes = wire::encode_frame(&frame);
    // Walk every byte with an additive mutation (different from the
    // bit-flip test's XOR) — decode must stay panic-free.
    for idx in 4..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[idx] = mutated[idx].wrapping_add(0x55);
        must_not_panic(&mutated);
    }
}

#[test]
fn replication_frames_with_lying_inner_lengths_error_cleanly() {
    // SnapshotOffer and WalFrame carry their own inner byte-length
    // fields; a length claiming more than the body holds must error,
    // never over-read or over-allocate.
    let offer = wire::encode_frame(&Frame::SnapshotOffer {
        epoch: 1,
        base_lsn: 7,
        data: vec![1, 2, 3, 4],
    });
    // Layout: [frame len u32][tag u8][epoch u64][base_lsn u64][data len u32]...
    let mut lying = offer.clone();
    lying[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut cursor = &lying[..];
    assert!(wire::read_frame(&mut cursor).is_err());

    let wal = wire::encode_frame(&Frame::WalFrame {
        lsn: 9,
        crc: 0xC0FF_EE00,
        payload: vec![1, 2, 3, 4],
    });
    // Layout: [frame len u32][tag u8][lsn u64][crc u32][payload len u32]...
    let mut lying = wal.clone();
    lying[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut cursor = &lying[..];
    assert!(wire::read_frame(&mut cursor).is_err());

    // A Replicate frame with a corrupted magic must be rejected (it
    // guards the replication handshake against misrouted frames).
    let mut replicate = wire::encode_frame(&Frame::Replicate {
        version: PROTOCOL_VERSION,
        epoch: 1,
        last_lsn: 0,
    });
    replicate[5] ^= 0xFF; // first magic byte, after [len u32][tag u8]
    let mut cursor = &replicate[..];
    let err = wire::read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.stage(), "protocol", "{err}");
}

#[test]
fn valid_corpus_roundtrips_unchanged() {
    // Sanity: the corpus itself is decodable — otherwise the mutation
    // tests above would be vacuous.
    for frame in corpus() {
        let bytes = wire::encode_frame(&frame);
        let mut cursor = &bytes[..];
        let decoded = wire::read_frame(&mut cursor).unwrap();
        // NaN breaks PartialEq for the float column; compare the debug
        // rendering instead, which is stable for the corpus.
        assert_eq!(format!("{decoded:?}"), format!("{frame:?}"));
    }
}

#[test]
fn admin_frames_reject_magic_corruption_before_any_state_change() {
    // Promote (tag 17) and Repoint (tag 19) are the PR-8 admin verbs —
    // the frames that flip a replica writable or redirect a fleet. Both
    // carry the startup magic as a guard against misrouted frames; every
    // corruption of that magic must come back as a typed protocol error
    // from the *decoder*, so no connection or replica state machine ever
    // sees the frame.
    // Layout: [len u32][tag u8][magic u32]...
    for frame in [
        Frame::Promote,
        Frame::Repoint {
            primary_addr: "10.0.0.7:5433".into(),
        },
        Frame::Backup {
            dir: "/backups/nightly".into(),
            base: None,
            verify: false,
        },
    ] {
        let bytes = wire::encode_frame(&frame);
        for magic_byte in 5..9 {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[magic_byte] ^= 1 << bit;
                let mut cursor = &mutated[..];
                let err = wire::read_frame(&mut cursor).unwrap_err();
                assert_eq!(err.stage(), "protocol", "{err}");
                assert!(err.to_string().contains("magic"), "{err}");
            }
        }
    }

    // PromoteOk (tag 18) has no magic — it is only ever parsed as the
    // answer to a Promote the client itself sent. Its mutations must
    // still decode or error cleanly; a truncated epoch must error.
    let ok = wire::encode_frame(&Frame::PromoteOk {
        epoch: 0xFEED_FACE,
        lsn: 41,
    });
    for cut in 0..ok.len() {
        must_not_panic(&ok[..cut]);
    }

    // Trailing garbage after a well-formed admin frame is a framing
    // violation, not ignorable padding.
    for frame in [
        Frame::Promote,
        Frame::PromoteOk { epoch: 1, lsn: 2 },
        Frame::Repoint {
            primary_addr: "p:1".into(),
        },
        Frame::Backup {
            dir: "b".into(),
            base: Some("a".into()),
            verify: true,
        },
        Frame::BackupOk {
            lsn: 3,
            segments: 2,
            bytes: 1,
        },
    ] {
        let mut bytes = wire::encode_frame(&frame);
        bytes.push(0x00);
        let len = (bytes.len() - 4) as u32;
        bytes[0..4].copy_from_slice(&len.to_le_bytes());
        let mut cursor = &bytes[..];
        let err = wire::read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.stage(), "protocol", "{err}");
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
